//! Sort, top-N and output-sort execution.
//!
//! Two flavors share one comparator: the row interpreter sorts materialized
//! rows; the vectorized executor sorts *selection vectors* over column
//! batches ([`full_sort_indices`], [`top_n_indices`]) and defers row
//! materialization to the consumer. Both use the same key comparison and the
//! same (stable sort / bounded-buffer) algorithms so tie-breaking — and
//! therefore output order — is identical across executors.

use super::guard::ExecGuard;
use super::{ExecError, Row, WorkCounters, GUARD_CHECK_ROWS};
use crate::eval::{eval, Schema};
use crate::storage::col_store::ColumnData;
use qpe_sql::binder::BoundExpr;
use qpe_sql::value::Value;
use std::cmp::Ordering;

/// Compares two rows on pre-computed key values.
fn cmp_keys(a: &[Value], b: &[Value], descs: &[bool]) -> Ordering {
    for ((x, y), desc) in a.iter().zip(b.iter()).zip(descs.iter()) {
        let o = x.total_cmp(y);
        let o = if *desc { o.reverse() } else { o };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// The deterministic n·log2(n) comparison charge shared by both executors —
/// counted asymptotically rather than by instrumenting the comparator, so
/// work does not depend on sort-implementation internals.
pub(crate) fn charge_sort_comparisons(counters: &mut WorkCounters, n: u64) {
    counters.sort_comparisons += n * (64 - n.max(1).leading_zeros() as u64).max(1);
}

/// Full sort on expression keys (TP's only ORDER BY strategy without an
/// index; also AP's when no LIMIT bounds the sort).
pub fn full_sort(
    counters: &mut WorkCounters,
    input: Vec<Row>,
    schema: &Schema,
    keys: &[(BoundExpr, bool)],
    guard: &ExecGuard,
) -> Result<Vec<Row>, ExecError> {
    let descs: Vec<bool> = keys.iter().map(|(_, d)| *d).collect();
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(input.len());
    for (i, row) in input.into_iter().enumerate() {
        if i % GUARD_CHECK_ROWS == 0 {
            guard.check()?;
        }
        let kv: Vec<Value> = keys
            .iter()
            .map(|(k, _)| eval(k, schema, &row))
            .collect::<Result<_, _>>()?;
        keyed.push((kv, row));
    }
    charge_sort_comparisons(counters, keyed.len() as u64);
    keyed.sort_by(|(ka, _), (kb, _)| cmp_keys(ka, kb, &descs));
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

/// Vectorized full sort: stable-sorts the selection by pre-computed key
/// columns (dense, aligned with the selection). Returns the permuted
/// selection; rows are never materialized here.
pub fn full_sort_indices(
    counters: &mut WorkCounters,
    key_cols: &[ColumnData],
    descs: &[bool],
    sel: Vec<u32>,
    guard: &ExecGuard,
) -> Vec<u32> {
    let n = sel.len();
    charge_sort_comparisons(counters, n as u64);
    // Key tuples per dense position; the stable sort then reproduces the row
    // interpreter's permutation exactly (same comparator, same input order).
    let mut keyed: Vec<(Vec<Value>, u32)> = Vec::with_capacity(n);
    for (j, phys) in sel.into_iter().enumerate() {
        if j % GUARD_CHECK_ROWS == 0 && guard.poll() {
            // Abandon on trip; the caller's next check discards this.
            return Vec::new();
        }
        keyed.push((key_cols.iter().map(|c| c.get(j)).collect(), phys));
    }
    keyed.sort_by(|(ka, _), (kb, _)| cmp_keys(ka, kb, descs));
    keyed.into_iter().map(|(_, phys)| phys).collect()
}

/// Morsel-parallel variant of [`full_sort_indices`]: contiguous chunks of
/// the selection are stable-sorted on worker threads, then merged with ties
/// taken from the lower chunk. A stable sort's output permutation is
/// *unique* (equal keys keep input order), and lower chunks hold lower
/// input positions, so the merged result is bit-identical to the serial
/// stable sort — same rows, same tie order, same counters (the comparison
/// charge is asymptotic in `n`, not implementation-dependent).
pub fn full_sort_indices_par(
    counters: &mut WorkCounters,
    cfg: &super::parallel::ExecConfig,
    key_cols: &[ColumnData],
    descs: &[bool],
    sel: Vec<u32>,
) -> Vec<u32> {
    let n = sel.len();
    let guard = cfg.guard();
    if !cfg.parallel_for(n) {
        return full_sort_indices(counters, key_cols, descs, sel, guard);
    }
    charge_sort_comparisons(counters, n as u64);
    // Contiguous equal chunks, one per worker (keys are keyed by *dense*
    // position j, which is what ties break on).
    let chunks = cfg.threads.min(n.div_ceil(cfg.morsel_rows)).max(1);
    let step = n.div_ceil(chunks);
    let sorted_chunks = super::parallel::run_tasks(cfg.threads, chunks, |c| {
        if guard.poll() {
            // Abandon the chunk on trip; the executor's next check discards
            // the truncated merge below.
            return Vec::new();
        }
        let lo = c * step;
        let hi = ((c + 1) * step).min(n);
        let mut keyed: Vec<(Vec<Value>, u32)> = (lo..hi)
            .map(|j| (key_cols.iter().map(|k| k.get(j)).collect(), sel[j]))
            .collect();
        keyed.sort_by(|(ka, _), (kb, _)| cmp_keys(ka, kb, descs));
        keyed
    });
    // k-way stable merge: scan chunks in order, strictly-less replaces —
    // so ties go to the lowest (earliest-input) chunk. Merge however many
    // entries the chunks actually hold — fewer than `n` only when the guard
    // tripped mid-sort.
    let total: usize = sorted_chunks.iter().map(|c| c.len()).sum();
    let mut cursors = vec![0usize; sorted_chunks.len()];
    let mut out = Vec::with_capacity(total);
    for i in 0..total {
        if i % GUARD_CHECK_ROWS == 0 && guard.poll() {
            return out;
        }
        let mut best: Option<usize> = None;
        for (c, chunk) in sorted_chunks.iter().enumerate() {
            if cursors[c] >= chunk.len() {
                continue;
            }
            best = match best {
                None => Some(c),
                Some(b) => {
                    let kb = &sorted_chunks[b][cursors[b]].0;
                    let kc = &chunk[cursors[c]].0;
                    if cmp_keys(kc, kb, descs) == Ordering::Less {
                        Some(c)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let b = best.expect("n elements remain across chunks");
        out.push(sorted_chunks[b][cursors[b]].1);
        cursors[b] += 1;
    }
    out
}

/// Bounded top-N selection (AP's dedicated operator): keeps the best
/// `limit + offset` rows, then drops the first `offset`.
pub fn top_n(
    counters: &mut WorkCounters,
    input: Vec<Row>,
    schema: &Schema,
    keys: &[(BoundExpr, bool)],
    limit: u64,
    offset: u64,
    guard: &ExecGuard,
) -> Result<Vec<Row>, ExecError> {
    let need = (limit + offset) as usize;
    if need == 0 {
        return Ok(Vec::new());
    }
    let descs: Vec<bool> = keys.iter().map(|(_, d)| *d).collect();
    // Simple bounded selection: maintain a sorted buffer of at most `need`
    // rows. Each push charges one heap operation.
    let mut buf: Vec<(Vec<Value>, Row)> = Vec::with_capacity(need + 1);
    for (i, row) in input.into_iter().enumerate() {
        if i % GUARD_CHECK_ROWS == 0 {
            guard.check()?;
        }
        counters.topn_pushes += 1;
        let kv: Vec<Value> = keys
            .iter()
            .map(|(k, _)| eval(k, schema, &row))
            .collect::<Result<_, _>>()?;
        if buf.len() < need {
            let pos = buf
                .binary_search_by(|(k, _)| cmp_keys(k, &kv, &descs))
                .unwrap_or_else(|p| p);
            buf.insert(pos, (kv, row));
        } else if cmp_keys(&kv, &buf[need - 1].0, &descs) == Ordering::Less {
            let pos = buf
                .binary_search_by(|(k, _)| cmp_keys(k, &kv, &descs))
                .unwrap_or_else(|p| p);
            buf.insert(pos, (kv, row));
            buf.pop();
        }
    }
    Ok(buf
        .into_iter()
        .skip(offset as usize)
        .map(|(_, r)| r)
        .collect())
}

/// Vectorized top-N: identical bounded-buffer algorithm as [`top_n`], driven
/// by pre-computed key columns over a selection. Only the winning
/// `limit + offset` entries ever hold key tuples; rows are materialized
/// later by the consumer from the returned selection.
pub fn top_n_indices(
    counters: &mut WorkCounters,
    key_cols: &[ColumnData],
    descs: &[bool],
    sel: Vec<u32>,
    limit: u64,
    offset: u64,
    guard: &ExecGuard,
) -> Vec<u32> {
    let need = (limit + offset) as usize;
    if need == 0 {
        return Vec::new();
    }
    let mut buf: Vec<(Vec<Value>, u32)> = Vec::with_capacity(need + 1);
    for (j, phys) in sel.into_iter().enumerate() {
        if j % GUARD_CHECK_ROWS == 0 && guard.poll() {
            // Abandon on trip; the caller's next check discards this.
            return Vec::new();
        }
        counters.topn_pushes += 1;
        let kv: Vec<Value> = key_cols.iter().map(|c| c.get(j)).collect();
        if buf.len() < need {
            let pos = buf
                .binary_search_by(|(k, _)| cmp_keys(k, &kv, descs))
                .unwrap_or_else(|p| p);
            buf.insert(pos, (kv, phys));
        } else if cmp_keys(&kv, &buf[need - 1].0, descs) == Ordering::Less {
            let pos = buf
                .binary_search_by(|(k, _)| cmp_keys(k, &kv, descs))
                .unwrap_or_else(|p| p);
            buf.insert(pos, (kv, phys));
            buf.pop();
        }
    }
    buf.into_iter()
        .skip(offset as usize)
        .map(|(_, phys)| phys)
        .collect()
}

/// Positional sort over already-projected output rows (ORDER BY on
/// aggregated projections).
pub fn output_sort(
    counters: &mut WorkCounters,
    mut input: Vec<Row>,
    keys: &[(usize, bool)],
    guard: &ExecGuard,
) -> Result<Vec<Row>, ExecError> {
    guard.check()?;
    charge_sort_comparisons(counters, input.len() as u64);
    input.sort_by(|a, b| {
        for &(pos, desc) in keys {
            let o = a[pos].total_cmp(&b[pos]);
            let o = if desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_keys_respects_direction() {
        let a = vec![Value::Int(1), Value::Int(9)];
        let b = vec![Value::Int(1), Value::Int(3)];
        assert_eq!(cmp_keys(&a, &b, &[false, false]), Ordering::Greater);
        assert_eq!(cmp_keys(&a, &b, &[false, true]), Ordering::Less);
        assert_eq!(cmp_keys(&a, &a, &[false, false]), Ordering::Equal);
    }

    #[test]
    fn index_sort_matches_row_sort_on_ties() {
        // Duplicate keys: the stable index sort must reproduce the row
        // sort's tie order (input order).
        let keys = ColumnData::Int(vec![3, 1, 3, 1, 2]);
        let mut c = WorkCounters::default();
        let sel: Vec<u32> = (0..5).collect();
        let sorted = full_sort_indices(&mut c, &[keys], &[false], sel, ExecGuard::unlimited());
        assert_eq!(sorted, vec![1, 3, 4, 0, 2]);
        assert!(c.sort_comparisons > 0);
    }

    #[test]
    fn top_n_indices_keeps_best_and_applies_offset() {
        let keys = ColumnData::Int(vec![5, 2, 9, 1, 7, 3]);
        let mut c = WorkCounters::default();
        let sel: Vec<u32> = (0..6).collect();
        let top =
            top_n_indices(&mut c, &[keys], &[false], sel, 2, 1, ExecGuard::unlimited());
        // ascending: 1 (idx 3), 2 (idx 1), 3 (idx 5) → offset 1 drops idx 3
        assert_eq!(top, vec![1, 5]);
        assert_eq!(c.topn_pushes, 6);
    }
}
