//! Morsel-driven parallel execution for the AP batch executor.
//!
//! The vectorized executor's kernels (filter masks, hash-join pair finding,
//! gathers, expression evaluation, grouped folds, sorts) all iterate a dense
//! range of selected rows. This module splits that range into fixed-size
//! **morsels** and runs them on a [`std::thread::scope`]d worker pool, with
//! every parallel strategy chosen so the output is **bit-identical** to the
//! serial batch executor (and therefore to the row interpreter):
//!
//! * **order-preserving kernels** (filter, gather, expression eval,
//!   projection): each morsel computes its slice independently; slices are
//!   reassembled in morsel order, which *is* the serial iteration order;
//! * **hash joins**: the build side is partitioned by key hash — each
//!   worker owns one partition and inserts build rows in build order, so
//!   every key's match list equals the serial one; probe morsels then emit
//!   pairs in probe order and concatenate in morsel order;
//! * **grouped aggregation**: groups (not rows) are partitioned by key
//!   hash, so each group's state is folded by exactly one worker over the
//!   *global* dense order — even float sums accumulate in the serial
//!   association order (scalar aggregation, which has a single group, keeps
//!   its fold serial and parallelizes only the column evaluation feeding
//!   it);
//! * **sorts**: contiguous chunks are stable-sorted in parallel and merged
//!   with ties taken from the lower chunk — a stable sort's output
//!   permutation is unique, so this equals the serial stable sort;
//! * **top-N**: the bounded buffer stays on the critical path (its order
//!   among tied keys depends on insertion dynamics, which no parallel
//!   decomposition can reproduce exactly), but the sort-key columns feeding
//!   it evaluate morsel-parallel — matching the latency model, which prices
//!   `topn_pushes` as serial work.
//!
//! [`WorkCounters`](super::WorkCounters) are charged from input sizes by
//! the same formulas as the serial executor, so counters — and therefore
//! simulated latencies, router labels and explanations — are identical by
//! construction. `threads == 1`, or any input of at most one morsel, takes
//! the exact serial code path.
//!
//! Morsel boundaries additionally respect storage boundaries: a dense scan
//! over a chunked (base + delta) column view cuts at the segment split, a
//! zone-map-pruned scan's selection cuts at every position where it jumps
//! a pruned block gap or crosses into the delta, and a dense scan over a
//! frame-of-reference column aligns its morsel step down to the FOR block
//! size — so no morsel straddles two storage regions or a packed block.
//! Morsel *sizing* is zone-map-aware too (`zone_aware_step`): a selective
//! pruned scan sizes its morsels from the surviving row count, not the raw
//! table length, so thread fan-out sees post-pruning work.

use super::guard::ExecGuard;
use crate::eval::{eval_batch, eval_predicate_mask, BatchView, EvalError};
use crate::eval::Schema;
use crate::storage::col_store::{ColRef, ColumnData};
use qpe_sql::binder::BoundExpr;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// Rows per morsel when nothing overrides it.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Smallest morsel [`zone_aware_step`] will shrink to: below this, per-task
/// dispatch overhead outweighs the extra fan-out.
pub(crate) const MIN_MORSEL_ROWS: usize = 512;

/// Morsels per worker [`zone_aware_step`] aims for — enough slack that the
/// work-stealing counter can rebalance when morsel costs are skewed.
const MORSELS_PER_WORKER: usize = 4;

/// Zone-map-aware morsel sizing. The configured step is sized for raw
/// full-table scans; a selective zone-pruned scan can leave so few
/// surviving rows that fixed-size chunks collapse into one or two morsels
/// and idle most workers. Shrink the step until the *surviving* row count
/// `n` spreads to [`MORSELS_PER_WORKER`] morsels per worker (floored at
/// [`MIN_MORSEL_ROWS`] to amortize dispatch overhead), then align it down
/// to `align` (a frame-of-reference block size) so no morsel straddles a
/// packed block. Sizing only changes the parallel decomposition — results
/// and counters are invariant under any morsel split.
pub(crate) fn zone_aware_step(
    configured: usize,
    n: usize,
    threads: usize,
    align: Option<usize>,
) -> usize {
    let mut step = configured.max(1);
    if threads > 1 {
        let spread = n.div_ceil(threads * MORSELS_PER_WORKER);
        step = step.min(spread.max(MIN_MORSEL_ROWS));
    }
    if let Some(a) = align.filter(|&a| a > 0) {
        step = (step / a).max(1) * a;
    }
    step
}

/// Parallelism knob for the AP batch executor.
///
/// `threads == 1` is the exact serial executor. With more threads, any
/// kernel whose input exceeds one morsel fans out over a scoped worker
/// pool; results are deterministic either way (see the module docs).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads for AP batch kernels (1 ⇒ serial).
    pub threads: usize,
    /// Rows per morsel; also the minimum input size before any kernel
    /// bothers to go parallel.
    pub morsel_rows: usize,
    /// Statement governor consulted at every morsel boundary (`None` ⇒
    /// ungoverned). Carried here so the guard reaches every kernel the
    /// config already reaches; excluded from equality — two configs that
    /// decompose work identically are equal regardless of governance.
    pub guard: Option<ExecGuard>,
}

/// Equality ignores the guard: it governs *when a statement stops*, never
/// how work is decomposed, so configs compare on decomposition alone.
impl PartialEq for ExecConfig {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads && self.morsel_rows == other.morsel_rows
    }
}

impl Eq for ExecConfig {}

impl ExecConfig {
    /// The exact serial executor.
    pub fn serial() -> Self {
        ExecConfig { threads: 1, morsel_rows: DEFAULT_MORSEL_ROWS, guard: None }
    }

    /// `threads` workers with the default morsel size.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig { threads: threads.max(1), morsel_rows: DEFAULT_MORSEL_ROWS, guard: None }
    }

    /// This config with a statement guard attached.
    pub fn with_guard(&self, guard: ExecGuard) -> Self {
        ExecConfig { guard: Some(guard), ..self.clone() }
    }

    /// The effective guard: the attached one, or the shared no-limit guard.
    #[inline]
    pub(crate) fn guard(&self) -> &ExecGuard {
        self.guard.as_ref().unwrap_or_else(|| ExecGuard::unlimited())
    }

    /// The thread count explicitly requested via `QPE_AP_THREADS`, if any.
    /// Callers that must stay host-independent (the latency simulation)
    /// distinguish an explicit request from the available-cores default.
    pub fn env_requested_threads() -> Option<usize> {
        std::env::var("QPE_AP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|t| t.max(1))
    }

    /// Reads `QPE_AP_THREADS` / `QPE_MORSEL_ROWS` from the environment,
    /// defaulting to the machine's available cores and
    /// [`DEFAULT_MORSEL_ROWS`].
    pub fn from_env() -> Self {
        let threads = Self::env_requested_threads()
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
            .max(1);
        let morsel_rows = std::env::var("QPE_MORSEL_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&m| m > 0)
            .unwrap_or(DEFAULT_MORSEL_ROWS);
        ExecConfig { threads, morsel_rows, guard: None }
    }

    /// The process-wide default ([`ExecConfig::from_env`], read once).
    pub fn global() -> &'static ExecConfig {
        static GLOBAL: OnceLock<ExecConfig> = OnceLock::new();
        GLOBAL.get_or_init(ExecConfig::from_env)
    }

    /// True when a kernel over `n` rows should fan out: more than one
    /// worker configured and more than one morsel of input.
    pub(crate) fn parallel_for(&self, n: usize) -> bool {
        self.threads > 1 && n > self.morsel_rows
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

// ---------------------------------------------------------------------------
// Morsel splitting and the scoped worker pool
// ---------------------------------------------------------------------------

/// Splits the dense range `0..n` into morsels of at most `morsel_rows`,
/// additionally cutting at every position in `cuts` (ascending dense
/// positions of storage discontinuities: the base→delta segment split and
/// the gaps a zone-map-pruned scan's selection jumps across) so no morsel
/// straddles a segment or block boundary.
pub(crate) fn morsel_ranges(
    n: usize,
    morsel_rows: usize,
    cuts: &[usize],
) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    let mut out = Vec::with_capacity(n / step + 2 + cuts.len());
    let mut chunk = |mut lo: usize, hi: usize| {
        while lo < hi {
            let end = (lo + step).min(hi);
            out.push(lo..end);
            lo = end;
        }
    };
    let mut lo = 0usize;
    for &c in cuts {
        if c > lo && c < n {
            chunk(lo, c);
            lo = c;
        }
    }
    chunk(lo, n);
    out
}

/// Runs `n_tasks` closures on up to `threads` scoped workers (work is pulled
/// from a shared atomic counter, so long tasks don't serialize behind a
/// static assignment) and returns the results **in task order** regardless
/// of completion order.
pub(crate) fn run_tasks<T, F>(threads: usize, n_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let workers = threads.min(n_tasks);
    if workers <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("every task slot filled"))
            .collect()
    })
}

/// Folds per-morsel `Result`s into one, surfacing the error of the earliest
/// failing morsel (matching where the serial pass would have stopped).
fn first_err<T>(results: Vec<Result<T, EvalError>>) -> Result<Vec<T>, EvalError> {
    results.into_iter().collect()
}

/// Builds the identity selection for a dense sub-range — the sub-view
/// handed to a morsel worker when the parent batch has no selection vector.
fn ident_sel(range: &Range<usize>) -> Vec<u32> {
    (range.start as u32..range.end as u32).collect()
}

/// A morsel's view of `(cols, sel, rows)`: the parent selection sliced to
/// the range, or an identity selection over it.
fn sub_view<'v>(
    cols: &'v [Option<ColRef<'v>>],
    sel: Option<&'v [u32]>,
    rows: usize,
    range: &Range<usize>,
    ident: &'v mut Vec<u32>,
) -> BatchView<'v> {
    match sel {
        Some(s) => BatchView { cols, sel: Some(&s[range.clone()]), rows },
        None => {
            *ident = ident_sel(range);
            BatchView { cols, sel: Some(ident), rows }
        }
    }
}

// ---------------------------------------------------------------------------
// Order-preserving kernels: filter, eval, gather, projection
// ---------------------------------------------------------------------------

/// Parallel filter: evaluates the predicate mask per morsel and emits the
/// surviving physical indices, concatenated in morsel (= serial) order.
/// `step` is the batch's effective morsel size (already zone-map-aware and
/// FOR-block-aligned by the caller); `cuts` its storage discontinuities.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_filter_sel(
    cfg: &ExecConfig,
    predicate: &BoundExpr,
    schema: &Schema,
    cols: &[Option<ColRef<'_>>],
    sel: Option<&[u32]>,
    rows: usize,
    step: usize,
    cuts: &[usize],
) -> Result<Vec<u32>, EvalError> {
    let n = sel.map(|s| s.len()).unwrap_or(rows);
    let ranges = morsel_ranges(n, step, cuts);
    let guard = cfg.guard();
    let pieces = run_tasks(cfg.threads, ranges.len(), |i| {
        if guard.poll() {
            // Tripped: abandon the morsel. The executor's next guard check
            // discards the truncated result and surfaces the cause.
            return Ok(Vec::new());
        }
        let range = &ranges[i];
        let mut ident = Vec::new();
        let view = sub_view(cols, sel, rows, range, &mut ident);
        let mut mask = Vec::new();
        eval_predicate_mask(predicate, schema, &view, &mut mask)?;
        let mut out = Vec::with_capacity(mask.len());
        for (j, keep) in mask.iter().enumerate() {
            if *keep {
                out.push(view.phys(j) as u32);
            }
        }
        Ok(out)
    });
    let pieces = first_err(pieces)?;
    let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
    for p in pieces {
        out.extend_from_slice(&p);
    }
    Ok(out)
}

/// Parallel [`eval_batch`]: evaluates the expression per morsel and splices
/// the dense result columns back together in morsel order. Values are
/// identical to the serial evaluation; the storage representation is too,
/// except in the pathological case where a morsel-local type demotion would
/// differ — and representation is invisible to every consumer (cells are
/// read back as [`qpe_sql::value::Value`]s).
pub(crate) fn par_eval_batch(
    cfg: &ExecConfig,
    expr: &BoundExpr,
    schema: &Schema,
    cols: &[Option<ColRef<'_>>],
    sel: Option<&[u32]>,
    rows: usize,
) -> Result<ColumnData, EvalError> {
    let n = sel.map(|s| s.len()).unwrap_or(rows);
    if !cfg.parallel_for(n) {
        let view = BatchView { cols, sel, rows };
        return eval_batch(expr, schema, &view);
    }
    let ranges = morsel_ranges(n, cfg.morsel_rows, &[]);
    let guard = cfg.guard();
    let pieces = run_tasks(cfg.threads, ranges.len(), |i| {
        if guard.poll() {
            // Tripped: evaluate over zero rows — a cheap, type-correct
            // placeholder the caller discards at its next guard check.
            let view = BatchView { cols, sel: Some(&[]), rows };
            return eval_batch(expr, schema, &view);
        }
        let range = &ranges[i];
        let mut ident = Vec::new();
        let view = sub_view(cols, sel, rows, range, &mut ident);
        eval_batch(expr, schema, &view)
    });
    let mut iter = first_err(pieces)?.into_iter();
    let mut acc = iter.next().expect("at least one morsel");
    for piece in iter {
        acc.append(piece);
    }
    Ok(acc)
}

/// Parallel [`ColRef::gather_rows`]: gathers index morsels independently
/// and splices the typed pieces in order.
pub(crate) fn par_gather(cfg: &ExecConfig, col: ColRef<'_>, idxs: &[u32]) -> ColumnData {
    if !cfg.parallel_for(idxs.len()) {
        return col.gather_rows(idxs);
    }
    let ranges = morsel_ranges(idxs.len(), cfg.morsel_rows, &[]);
    let guard = cfg.guard();
    let pieces = run_tasks(cfg.threads, ranges.len(), |i| {
        if guard.poll() {
            return col.gather_rows(&[]);
        }
        col.gather_rows(&idxs[ranges[i].clone()])
    });
    let mut iter = pieces.into_iter();
    let mut acc = iter.next().expect("at least one morsel");
    for piece in iter {
        acc.append(piece);
    }
    acc
}

/// Parallel row materialization from dense output columns (projection /
/// root fallback): each morsel builds its row slice, reassembled in order.
pub(crate) fn par_build_rows(
    cfg: &ExecConfig,
    out_cols: &[ColumnData],
    n: usize,
) -> Vec<super::Row> {
    let build = |range: Range<usize>| {
        let mut rows = Vec::with_capacity(range.len());
        for j in range {
            rows.push(out_cols.iter().map(|c| c.get(j)).collect());
        }
        rows
    };
    if !cfg.parallel_for(n) {
        return build(0..n);
    }
    let ranges = morsel_ranges(n, cfg.morsel_rows, &[]);
    let guard = cfg.guard();
    let pieces = run_tasks(cfg.threads, ranges.len(), |i| {
        if guard.poll() {
            return Vec::new();
        }
        build(ranges[i].clone())
    });
    let mut out = Vec::with_capacity(n);
    for p in pieces {
        out.extend(p);
    }
    out
}

// ---------------------------------------------------------------------------
// Hash-join partitioning
// ---------------------------------------------------------------------------

/// Deterministic partition id for a hashable key (the std `DefaultHasher`
/// is keyed with fixed constants, so partitioning is stable across runs —
/// though correctness only needs per-key consistency within one run: the
/// join's output order never depends on which partition a key landed in).
pub(crate) fn partition_of<K: Hash + ?Sized>(key: &K, n_parts: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n_parts as u64) as usize
}

/// Builds the join hash table partitioned by key hash, in two passes so no
/// worker re-materializes another partition's keys: pass 1 computes each
/// build row's partition id morsel-parallel; pass 2 has worker `p` insert
/// only its own rows, in build order — so each key's match list is exactly
/// the serial build's list.
pub(crate) fn par_hash_build<K, KF>(
    cfg: &ExecConfig,
    build_len: usize,
    key_at: KF,
) -> Vec<HashMap<K, Vec<u32>>>
where
    K: Hash + Eq + Send,
    KF: Fn(usize) -> (K, u32) + Sync,
{
    let n_parts = cfg.threads.clamp(1, 255);
    let ranges = morsel_ranges(build_len, cfg.morsel_rows, &[]);
    let guard = cfg.guard();
    let pieces = run_tasks(cfg.threads, ranges.len(), |i| {
        if guard.poll() {
            return Vec::new();
        }
        ranges[i]
            .clone()
            .map(|j| partition_of(&key_at(j).0, n_parts) as u8)
            .collect::<Vec<u8>>()
    });
    let mut parts: Vec<u8> = Vec::with_capacity(build_len);
    for p in pieces {
        parts.extend(p);
    }
    run_tasks(cfg.threads, n_parts, |p| {
        let mut table: HashMap<K, Vec<u32>> = HashMap::new();
        if guard.poll() {
            return table;
        }
        for (j, &part) in parts.iter().enumerate() {
            if part == p as u8 {
                let (key, phys) = key_at(j);
                table.entry(key).or_default().push(phys);
            }
        }
        table
    })
}

/// Probes the partitioned tables morsel-by-morsel, emitting
/// `(probe physical, build physical)` pairs in probe order within each
/// morsel and concatenating morsels in order — the serial pair order.
/// `key_at` returns `None` for NULL-bearing keys, which never match.
pub(crate) fn par_hash_probe<K, KF>(
    cfg: &ExecConfig,
    probe_len: usize,
    tables: &[HashMap<K, Vec<u32>>],
    key_at: KF,
) -> (Vec<u32>, Vec<u32>)
where
    K: Hash + Eq + Send + Sync,
    KF: Fn(usize) -> Option<(K, u32)> + Sync,
{
    let n_parts = tables.len().max(1);
    let ranges = morsel_ranges(probe_len, cfg.morsel_rows, &[]);
    let guard = cfg.guard();
    let pieces = run_tasks(cfg.threads, ranges.len(), |i| {
        let mut probe_idx = Vec::new();
        let mut build_idx = Vec::new();
        if guard.poll() {
            return (probe_idx, build_idx);
        }
        for j in ranges[i].clone() {
            let Some((key, phys)) = key_at(j) else {
                continue;
            };
            if let Some(matches) = tables[partition_of(&key, n_parts)].get(&key) {
                for &b in matches {
                    probe_idx.push(phys);
                    build_idx.push(b);
                }
            }
        }
        (probe_idx, build_idx)
    });
    let total: usize = pieces.iter().map(|(p, _)| p.len()).sum();
    let mut probe_idx = Vec::with_capacity(total);
    let mut build_idx = Vec::with_capacity(total);
    for (p, b) in pieces {
        probe_idx.extend_from_slice(&p);
        build_idx.extend_from_slice(&b);
    }
    (probe_idx, build_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_range_and_respect_split() {
        let r = morsel_ranges(10, 4, &[]);
        assert_eq!(r, vec![0..4, 4..8, 8..10]);
        // A chunk boundary at 6 cuts the second morsel.
        let r = morsel_ranges(10, 4, &[6]);
        assert_eq!(r, vec![0..4, 4..6, 6..10]);
        // Multiple cuts (pruned-block gaps) all land on morsel boundaries.
        let r = morsel_ranges(10, 4, &[2, 6]);
        assert_eq!(r, vec![0..2, 2..6, 6..10]);
        // Degenerate cuts are ignored.
        assert_eq!(morsel_ranges(10, 4, &[0]), morsel_ranges(10, 4, &[]));
        assert_eq!(morsel_ranges(10, 4, &[10]), morsel_ranges(10, 4, &[]));
        assert!(morsel_ranges(0, 4, &[]).is_empty());
    }

    #[test]
    fn zone_aware_step_spreads_and_aligns() {
        // Plenty of rows: the configured step stands.
        assert_eq!(zone_aware_step(4096, 1_000_000, 8, None), 4096);
        // Few survivors: shrink so 4 workers each see ~4 morsels …
        assert_eq!(zone_aware_step(4096, 16_000, 4, None), 1000);
        // … but never below the overhead floor.
        assert_eq!(zone_aware_step(4096, 5_000, 8, None), MIN_MORSEL_ROWS);
        // FOR alignment rounds down to whole blocks, never to zero.
        assert_eq!(zone_aware_step(4096, 1_000_000, 8, Some(1024)), 4096);
        assert_eq!(zone_aware_step(3000, 1_000_000, 8, Some(1024)), 2048);
        assert_eq!(zone_aware_step(4096, 5_000, 8, Some(1024)), 1024);
        // Serial config: sizing is moot, step passes through (aligned).
        assert_eq!(zone_aware_step(4096, 100, 1, None), 4096);
    }

    #[test]
    fn run_tasks_returns_results_in_task_order() {
        for threads in [1, 2, 4] {
            let out = run_tasks(threads, 13, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn partition_is_deterministic() {
        for key in 0i64..100 {
            assert_eq!(partition_of(&key, 4), partition_of(&key, 4));
            assert!(partition_of(&key, 4) < 4);
        }
    }

    #[test]
    fn config_parallel_gate() {
        let cfg = ExecConfig { threads: 4, morsel_rows: 100, ..ExecConfig::serial() };
        assert!(cfg.parallel_for(101));
        assert!(!cfg.parallel_for(100));
        assert!(!ExecConfig::serial().parallel_for(1_000_000));
    }
}
