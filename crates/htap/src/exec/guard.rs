//! Statement lifecycle governance: cancellation, deadlines, memory budgets.
//!
//! Every statement executes under an [`ExecGuard`] — a small shared token
//! carrying three cooperative limits:
//!
//! - a **cancellation flag**, settable from any thread via [`CancelHandle`];
//! - a **deadline** derived from a per-statement or per-system timeout;
//! - a **memory budget** charged (approximately) as operators materialize
//!   rows, batches, hash tables and sort buffers.
//!
//! The guard is *cooperative*: executors poll it at block/morsel granularity
//! (operator entry, every morsel a parallel worker pulls, every ~1k rows of
//! a scalar loop). A poll is a pair of relaxed atomic loads on the happy
//! path; when a deadline is set, the clock is only consulted on every 32nd
//! poll (the first included, so a zero deadline trips before any work).
//! Governed execution thereby stays within a ~2% overhead budget of
//! ungoverned execution (measured by the `governed_ap_scan` bench case).
//!
//! Once any limit trips, the guard latches the *first* violation (cancel
//! beats timeout beats memory if they race) and every subsequent poll
//! reports it. Parallel morsel workers that observe a tripped guard abandon
//! their remaining work and return cheap shape-valid placeholders; the
//! executor's next checkpoint converts the latched state into a structured
//! [`GovernError`], which the engine surfaces as
//! `HtapError::{Cancelled, Timeout, MemoryBudget}`. Work counters are only
//! reported for statements that complete, so governance never perturbs the
//! counter-identity invariant the three executors are proven under.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Approximate bytes charged against the memory budget per materialized
/// cell (one value in one row). The accounting is deliberately coarse — it
/// exists to bound runaway materialization, not to be an allocator.
pub const BYTES_PER_CELL: u64 = 16;

/// Declarative limits for one statement (or a system/session default).
/// `None` means unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatementLimits {
    /// Wall-clock budget for the statement, measured from guard creation.
    pub timeout: Option<Duration>,
    /// Approximate materialization budget in bytes (see [`BYTES_PER_CELL`]).
    pub memory_budget: Option<u64>,
}

impl StatementLimits {
    /// No limits at all (the default).
    pub fn unlimited() -> StatementLimits {
        StatementLimits::default()
    }

    /// True when no limit is set — guard checks reduce to the cancel flag.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.memory_budget.is_none()
    }
}

/// Why a governed statement was stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GovernError {
    /// The statement's cancel flag was raised (via [`CancelHandle`]).
    Cancelled,
    /// The statement exceeded its wall-clock budget.
    Timeout {
        /// The configured budget that was exceeded.
        limit: Duration,
    },
    /// The statement tried to materialize past its memory budget.
    MemoryBudget {
        /// The configured budget in (approximate) bytes.
        budget_bytes: u64,
        /// The approximate total the statement had charged when it tripped.
        attempted_bytes: u64,
    },
}

impl fmt::Display for GovernError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GovernError::Cancelled => write!(f, "statement cancelled"),
            GovernError::Timeout { limit } => {
                write!(f, "statement timed out (limit {limit:?})")
            }
            GovernError::MemoryBudget { budget_bytes, attempted_bytes } => write!(
                f,
                "statement exceeded its memory budget ({attempted_bytes} of {budget_bytes} \
                 approx bytes)"
            ),
        }
    }
}

impl std::error::Error for GovernError {}

const TRIP_NONE: u8 = 0;
const TRIP_CANCELLED: u8 = 1;
const TRIP_TIMEOUT: u8 = 2;
const TRIP_MEMORY: u8 = 3;

#[derive(Debug)]
struct GuardState {
    /// Shared with every [`CancelHandle`]; raised from any thread.
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
    /// Kept for error reporting alongside `deadline`.
    timeout: Option<Duration>,
    budget: Option<u64>,
    used: AtomicU64,
    /// Recorded at memory-trip time for the error message.
    attempted: AtomicU64,
    /// Poll counter used to amortize deadline clock reads (see [`ExecGuard::poll`]).
    poll_tick: AtomicU64,
    /// Latched first violation (`TRIP_*`); 0 = still healthy.
    tripped: AtomicU8,
}

impl GuardState {
    /// Latch `kind` if nothing tripped yet; the first violation wins.
    fn trip(&self, kind: u8) {
        let _ = self
            .tripped
            .compare_exchange(TRIP_NONE, kind, Ordering::SeqCst, Ordering::SeqCst);
    }
}

/// The per-statement governance token. Cheap to clone (one `Arc`).
#[derive(Debug, Clone)]
pub struct ExecGuard {
    state: Arc<GuardState>,
}

/// Cancels the statement(s) governed by the guard it came from. Safe to
/// call from any thread, any number of times.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// A handle over an existing shared flag (the session layer keeps one
    /// flag per session and threads it into every statement's guard).
    pub(crate) fn from_flag(flag: Arc<AtomicBool>) -> CancelHandle {
        CancelHandle { flag }
    }

    /// Raise the cancellation flag. The in-flight statement observes it at
    /// its next block/morsel boundary and returns `Cancelled`.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the flag is currently raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl ExecGuard {
    /// A guard enforcing `limits`, watching `cancel` (shared with the
    /// session's [`CancelHandle`]s). The deadline starts now.
    pub fn with_cancel(limits: &StatementLimits, cancel: Arc<AtomicBool>) -> ExecGuard {
        ExecGuard {
            state: Arc::new(GuardState {
                cancel,
                deadline: limits.timeout.map(|t| Instant::now() + t),
                timeout: limits.timeout,
                budget: limits.memory_budget,
                used: AtomicU64::new(0),
                attempted: AtomicU64::new(0),
                poll_tick: AtomicU64::new(0),
                tripped: AtomicU8::new(TRIP_NONE),
            }),
        }
    }

    /// A guard enforcing `limits` with a private (never externally raised)
    /// cancel flag.
    pub fn new(limits: &StatementLimits) -> ExecGuard {
        ExecGuard::with_cancel(limits, Arc::new(AtomicBool::new(false)))
    }

    /// The shared no-limit guard used by ungoverned entry points. Polling it
    /// is a single relaxed load that never trips.
    pub fn unlimited() -> &'static ExecGuard {
        static UNLIMITED: OnceLock<ExecGuard> = OnceLock::new();
        UNLIMITED.get_or_init(|| ExecGuard::new(&StatementLimits::unlimited()))
    }

    /// A handle that cancels this guard (and anything else sharing its
    /// cancel flag) from another thread.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle { flag: Arc::clone(&self.state.cancel) }
    }

    /// Cheap cooperative poll: returns `true` once any limit has tripped.
    /// Parallel morsel workers use this to abandon work without plumbing a
    /// `Result` through every kernel; the owning executor calls [`check`]
    /// (which reports the latched cause) at its next boundary.
    ///
    /// [`check`]: ExecGuard::check
    #[inline]
    pub fn poll(&self) -> bool {
        let s = &*self.state;
        if s.tripped.load(Ordering::Relaxed) != TRIP_NONE {
            return true;
        }
        if s.cancel.load(Ordering::Relaxed) {
            s.trip(TRIP_CANCELLED);
            return true;
        }
        if let Some(deadline) = s.deadline {
            // A clock read costs far more than the rest of the poll, so the
            // deadline only consults it every 32nd poll. The tick counter is
            // deliberately a racy load+store (plain movs), NOT a fetch_add:
            // a locked RMW would cost as much as the clock read it amortizes,
            // and concurrent workers losing a tick merely shifts which poll
            // reads the clock. The counter starts at 0, so the FIRST poll
            // always reads the clock — a zero deadline still trips before
            // any work — and the cancel flag above is checked on every poll
            // regardless.
            let tick = s.poll_tick.load(Ordering::Relaxed);
            s.poll_tick.store(tick.wrapping_add(1), Ordering::Relaxed);
            if tick & 31 == 0 && Instant::now() >= deadline {
                s.trip(TRIP_TIMEOUT);
                return true;
            }
        }
        false
    }

    /// Poll, surfacing the latched violation as an error.
    #[inline]
    pub fn check(&self) -> Result<(), GovernError> {
        if self.poll() {
            Err(self.violation().expect("poll() returned true, so a cause is latched"))
        } else {
            Ok(())
        }
    }

    /// Charge `cells` materialized values against the memory budget
    /// (approximated at [`BYTES_PER_CELL`] each).
    #[inline]
    pub fn charge_cells(&self, cells: u64) -> Result<(), GovernError> {
        self.charge_bytes(cells.saturating_mul(BYTES_PER_CELL))
    }

    /// Charge approximate `bytes` against the memory budget.
    #[inline]
    pub fn charge_bytes(&self, bytes: u64) -> Result<(), GovernError> {
        let s = &*self.state;
        if let Some(budget) = s.budget {
            let total = s.used.fetch_add(bytes, Ordering::Relaxed).saturating_add(bytes);
            if total > budget {
                s.attempted.store(total, Ordering::Relaxed);
                s.trip(TRIP_MEMORY);
            }
        }
        self.check()
    }

    /// The latched violation, if any.
    pub fn violation(&self) -> Option<GovernError> {
        let s = &*self.state;
        match s.tripped.load(Ordering::SeqCst) {
            TRIP_CANCELLED => Some(GovernError::Cancelled),
            TRIP_TIMEOUT => Some(GovernError::Timeout {
                limit: s.timeout.unwrap_or(Duration::ZERO),
            }),
            TRIP_MEMORY => Some(GovernError::MemoryBudget {
                budget_bytes: s.budget.unwrap_or(0),
                attempted_bytes: s.attempted.load(Ordering::SeqCst),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = ExecGuard::unlimited();
        for _ in 0..1000 {
            assert!(!g.poll());
        }
        assert!(g.check().is_ok());
        assert!(g.charge_cells(u64::MAX / BYTES_PER_CELL).is_ok());
    }

    #[test]
    fn cancel_handle_trips_from_another_thread() {
        let g = ExecGuard::new(&StatementLimits::unlimited());
        let h = g.cancel_handle();
        assert!(!g.poll());
        let t = std::thread::spawn(move || h.cancel());
        t.join().unwrap();
        assert!(g.poll());
        assert_eq!(g.check(), Err(GovernError::Cancelled));
    }

    #[test]
    fn deadline_trips_and_latches() {
        let g = ExecGuard::new(&StatementLimits {
            timeout: Some(Duration::ZERO),
            memory_budget: None,
        });
        assert!(g.poll());
        match g.check() {
            Err(GovernError::Timeout { limit }) => assert_eq!(limit, Duration::ZERO),
            other => panic!("expected timeout, got {other:?}"),
        }
        // A later cancel does not displace the latched cause.
        g.cancel_handle().cancel();
        assert!(matches!(g.check(), Err(GovernError::Timeout { .. })));
    }

    #[test]
    fn memory_budget_trips_at_the_boundary() {
        let g = ExecGuard::new(&StatementLimits {
            timeout: None,
            memory_budget: Some(10 * BYTES_PER_CELL),
        });
        assert!(g.charge_cells(10).is_ok());
        match g.charge_cells(1) {
            Err(GovernError::MemoryBudget { budget_bytes, attempted_bytes }) => {
                assert_eq!(budget_bytes, 10 * BYTES_PER_CELL);
                assert_eq!(attempted_bytes, 11 * BYTES_PER_CELL);
            }
            other => panic!("expected memory trip, got {other:?}"),
        }
    }

    #[test]
    fn first_violation_wins() {
        let g = ExecGuard::new(&StatementLimits {
            timeout: None,
            memory_budget: Some(1),
        });
        let _ = g.charge_bytes(2);
        g.cancel_handle().cancel();
        assert!(matches!(g.check(), Err(GovernError::MemoryBudget { .. })));
    }
}
