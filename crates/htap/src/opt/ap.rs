//! The AP (column-engine) optimizer.
//!
//! OLAP bias: columnar scans that materialize only referenced columns,
//! vectorized filters, hash joins with the smaller input on the build side,
//! hash aggregation, and a dedicated top-N operator. The AP engine has no
//! indexes at all.
//!
//! Cost units are "AP work units" on a deliberately different (much larger)
//! scale than TP's — the paper's Table II shows the same query costed 5,213
//! by TP and 16,500,000 by AP, and the prompt forbids comparing them.

use super::{detail_of, OptError, PlannerCtx};
use crate::plan::{AggSpec, JoinCond, NodeType, PlanNode, PlanOp};
use crate::stats;
use qpe_sql::binder::{AggregateKind, BoundExpr};

/// Fixed cost of opening a columnar scan (streaming; mirrors the paper's AP
/// plans where `Table Scan` itself is costed 0.5 and the filter above carries
/// the per-row cost).
pub const COST_SCAN_OPEN: f64 = 0.5;
/// Per-row, per-referenced-column vectorized filter/materialization cost.
pub const COST_FILTER_ROW: f64 = 0.1;
/// Per-row hash-table build cost.
pub const COST_HASH_BUILD: f64 = 0.3;
/// Per-row hash-table probe cost.
pub const COST_HASH_PROBE: f64 = 0.2;
/// Per-row hash aggregation cost.
pub const COST_AGG_ROW: f64 = 0.15;
/// Per-row top-N heap cost.
pub const COST_TOPN_ROW: f64 = 0.05;
/// Per-row full-sort factor (multiplied by log2 n).
pub const COST_SORT_ROW: f64 = 0.05;

/// Plans `ctx.query` for the AP engine.
pub fn plan(ctx: &PlannerCtx) -> Result<PlanNode, OptError> {
    let order = ctx.join_order();
    // Build access paths for every slot up front (needed for build/probe
    // side selection).
    let mut current = access_path(ctx, order[0])?;
    let mut joined = vec![order[0]];
    for &next in &order[1..] {
        current = plan_join(ctx, current, &joined, next)?;
        joined.push(next);
    }
    current = apply_residuals(ctx, current);
    finalize(ctx, current)
}

/// Fraction of the estimated zone-map block skipping the cost model trusts.
/// Deliberately conservative: the planning-time estimate assumes clustering
/// that only sequentially generated keys guarantee, and the AP cost scale
/// feeds the tree-CNN plan embeddings the knowledge retrieval is calibrated
/// on — a full-trust discount moves filtered-scan costs enough to degrade
/// retrieval quality (`tests/paper_shapes.rs` pins that shape).
pub const PRUNE_COST_TRUST: f64 = 0.5;

/// Columnar scan + vectorized filter for one slot. When pushdown is enabled
/// the filter conjunction also lands in the scan node, where the executors'
/// [`crate::storage::ScanPruner`] uses it to skip whole base blocks; the
/// filter's per-row cost estimate shrinks by the block-stat selectivity
/// [`stats::zone_prune_fraction`] predicts for it.
pub fn access_path(ctx: &PlannerCtx, slot: usize) -> Result<PlanNode, OptError> {
    let def = ctx.table_def(slot)?;
    let n = def.row_count as f64;
    let columns = ctx.referenced_columns(slot);
    let filter = ctx.combined_filter(slot);
    let pushed = filter.as_ref().filter(|_| ctx.pushdown).cloned();
    let scan = PlanNode::new(
        NodeType::TableScan,
        PlanOp::TableScan { table_slot: slot, columns: columns.clone(), pushed },
    )
    .with_relation(&def.name)
    .with_estimates(COST_SCAN_OPEN, n);
    let Some(pred) = filter else {
        return Ok(scan);
    };
    let prune_frac = if ctx.pushdown {
        stats::zone_prune_fraction(ctx.stats, ctx.query, ctx.catalog, &pred)
    } else {
        0.0
    };
    let rows = ctx.filtered_card(slot);
    // Vectorized filter touches each referenced column once — over the
    // blocks zone maps are expected to leave standing.
    let scanned = n * (1.0 - PRUNE_COST_TRUST * prune_frac);
    let cost = COST_SCAN_OPEN + scanned * COST_FILTER_ROW * (columns.len() as f64).sqrt();
    let detail = detail_of(&pred, ctx.query, ctx.catalog);
    Ok(
        PlanNode::new(NodeType::Filter, PlanOp::Filter { predicate: pred })
            .with_detail(detail)
            .with_estimates(cost, rows)
            .with_child(scan),
    )
}

/// Hash join of `current` with table `next`; the smaller side builds.
fn plan_join(
    ctx: &PlannerCtx,
    current: PlanNode,
    joined: &[usize],
    next: usize,
) -> Result<PlanNode, OptError> {
    let conds = ctx.join_conds_with(joined, next);
    let inner = access_path(ctx, next)?;
    let left_rows = current.plan_rows.max(1.0);
    let right_rows = inner.plan_rows.max(1.0);
    let out_rows = stats::join_cardinality(ctx.stats, ctx.query, left_rows, right_rows, &conds);

    // Keys oriented: "left" = current subtree side, "right" = next table.
    let oriented: Vec<JoinCond> = conds
        .iter()
        .map(|j| {
            if j.right.table_slot == next {
                JoinCond { left: j.left, right: j.right }
            } else {
                JoinCond { left: j.right, right: j.left }
            }
        })
        .collect();

    // The smaller input becomes the build side, wrapped in a Hash node (the
    // paper's AP plans always show `Hash` around the build input).
    let (probe, build, probe_keys, build_keys) = if left_rows <= right_rows {
        // build = current (left)
        (
            inner,
            current,
            oriented.iter().map(|c| c.right).collect::<Vec<_>>(),
            oriented.iter().map(|c| c.left).collect::<Vec<_>>(),
        )
    } else {
        (
            current,
            inner,
            oriented.iter().map(|c| c.left).collect::<Vec<_>>(),
            oriented.iter().map(|c| c.right).collect::<Vec<_>>(),
        )
    };

    let build_rows = build.plan_rows.max(1.0);
    let probe_rows = probe.plan_rows.max(1.0);
    let hash_node = PlanNode::new(NodeType::Hash, PlanOp::Hash)
        .with_estimates(build.total_cost + build_rows * COST_HASH_BUILD, build_rows)
        .with_child(build);
    let cost = probe.total_cost + hash_node.total_cost + probe_rows * COST_HASH_PROBE;
    let detail = if oriented.is_empty() {
        "cross product".to_string()
    } else {
        oriented
            .iter()
            .map(|c| {
                format!(
                    "{} = {}",
                    detail_of(&BoundExpr::Column(c.left), ctx.query, ctx.catalog),
                    detail_of(&BoundExpr::Column(c.right), ctx.query, ctx.catalog)
                )
            })
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    Ok(PlanNode::new(
        NodeType::HashJoin,
        PlanOp::HashJoin { probe_keys, build_keys },
    )
    .with_detail(detail)
    .with_estimates(cost, out_rows)
    .with_child(probe)
    .with_child(hash_node))
}

fn apply_residuals(ctx: &PlannerCtx, current: PlanNode) -> PlanNode {
    let mut node = current;
    for r in &ctx.query.residual_predicates {
        let sel = stats::selectivity(ctx.stats, ctx.query, r);
        let rows = (node.plan_rows * sel).max(1.0);
        let cost = node.total_cost + node.plan_rows * COST_FILTER_ROW;
        let detail = detail_of(r, ctx.query, ctx.catalog);
        node = PlanNode::new(NodeType::Filter, PlanOp::Filter { predicate: r.clone() })
            .with_detail(detail)
            .with_estimates(cost, rows)
            .with_child(node);
    }
    node
}

/// Adds aggregation / top-N / projection above the join tree.
fn finalize(ctx: &PlannerCtx, input: PlanNode) -> Result<PlanNode, OptError> {
    let q = ctx.query;
    let input_rows = input.plan_rows.max(1.0);

    if q.aggregate_kind != AggregateKind::None {
        let groups = super::tp::group_count_estimate(ctx, input_rows);
        let cost = input.total_cost + input_rows * COST_AGG_ROW;
        let outputs: Vec<AggSpec> = q
            .projections
            .iter()
            .map(|p| AggSpec { expr: p.expr.clone(), label: p.label.clone() })
            .collect();
        let mut node = PlanNode::new(
            NodeType::HashAggregate,
            PlanOp::Aggregate {
                group_by: q.group_by.clone(),
                outputs,
                having: q.having.clone(),
                hash: true,
            },
        )
        .with_estimates(cost, groups)
        .with_child(input);

        if !q.order_by.is_empty() {
            let keys = ctx.output_sort_keys()?;
            let cost = node.total_cost + groups * (groups.max(2.0)).log2() * COST_SORT_ROW;
            node = PlanNode::new(NodeType::Sort, PlanOp::OutputSort { keys })
                .with_estimates(cost, groups)
                .with_child(node);
        }
        if q.limit.is_some() || q.offset.is_some() {
            let limit = q.limit.unwrap_or(u64::MAX);
            let offset = q.offset.unwrap_or(0);
            let rows = (node.plan_rows - offset as f64).clamp(0.0, limit as f64);
            node = PlanNode::new(NodeType::Limit, PlanOp::Limit { limit, offset })
                .with_estimates(node.total_cost, rows)
                .with_child(node);
        }
        return Ok(node);
    }

    let mut node = input;
    if q.is_top_n() {
        // Dedicated bounded-heap top-N operator: cheap even with large
        // OFFSETs relative to TP's full sort, but the heap grows with
        // limit+offset — the "relative value" nuance the paper says DBG-PT
        // cannot judge without history.
        let limit = q.limit.unwrap_or(0);
        let offset = q.offset.unwrap_or(0);
        let heap = (limit + offset) as f64;
        let cost =
            node.total_cost + input_rows * COST_TOPN_ROW * (heap.max(2.0)).log2().max(1.0);
        node = PlanNode::new(
            NodeType::TopNSort,
            PlanOp::TopNSort { keys: q.order_by.clone(), limit, offset },
        )
        .with_detail(format!("top {} offset {}", limit, offset))
        .with_estimates(cost, limit as f64)
        .with_child(node);
    } else {
        if !q.order_by.is_empty() {
            let cost = node.total_cost
                + input_rows * (input_rows.max(2.0)).log2() * COST_SORT_ROW;
            node = PlanNode::new(NodeType::Sort, PlanOp::Sort { keys: q.order_by.clone() })
                .with_estimates(cost, input_rows)
                .with_child(node);
        }
        if q.limit.is_some() || q.offset.is_some() {
            let limit = q.limit.unwrap_or(u64::MAX);
            let offset = q.offset.unwrap_or(0);
            let rows = (node.plan_rows - offset as f64).clamp(0.0, limit as f64);
            node = PlanNode::new(NodeType::Limit, PlanOp::Limit { limit, offset })
                .with_estimates(node.total_cost, rows)
                .with_child(node);
        }
    }
    let exprs: Vec<BoundExpr> = q.projections.iter().map(|p| p.expr.clone()).collect();
    let labels: Vec<String> = q.projections.iter().map(|p| p.label.clone()).collect();
    let rows = node.plan_rows;
    Ok(
        PlanNode::new(NodeType::Projection, PlanOp::Projection { exprs, labels })
            .with_estimates(node.total_cost + rows * 0.01, rows)
            .with_child(node),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DbStats;
    use crate::tpch::{generate, TpchConfig};
    use qpe_sql::binder::Binder;
    use qpe_sql::catalog::{Catalog, MemoryCatalog};

    fn setup() -> (MemoryCatalog, DbStats) {
        let (catalog, tables) = generate(&TpchConfig::with_scale(0.002));
        let mut stats = DbStats::new();
        for t in &tables {
            stats.insert(crate::stats::TableStats::collect(&t.name, &t.columns));
        }
        (catalog, stats)
    }

    fn plan_sql(sql: &str) -> PlanNode {
        let (catalog, stats) = setup();
        let q = Binder::new(&catalog).bind_sql(sql).unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &catalog);
        plan(&ctx).unwrap()
    }

    #[test]
    fn example1_uses_hash_joins_with_hash_nodes() {
        let p = plan_sql(
            "SELECT COUNT(*) FROM customer, nation, orders \
             WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40') \
             AND c_mktsegment = 'machinery' \
             AND n_name = 'egypt' AND o_orderstatus = 'p' \
             AND o_custkey = c_custkey AND n_nationkey = c_nationkey",
        );
        assert_eq!(p.node_type, NodeType::HashAggregate);
        assert_eq!(p.count_type(NodeType::HashJoin), 2);
        assert_eq!(p.count_type(NodeType::Hash), 2);
        assert_eq!(p.count_type(NodeType::NestedLoopJoin), 0);
        assert_eq!(p.count_type(NodeType::IndexScan), 0, "AP has no indexes");
    }

    #[test]
    fn scans_materialize_only_referenced_columns() {
        let p = plan_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'");
        let mut scan_cols = None;
        p.walk(&mut |n| {
            if let PlanOp::TableScan { columns, .. } = &n.op {
                scan_cols = Some(columns.clone());
            }
        });
        // only c_mktsegment (idx 5) is referenced
        assert_eq!(scan_cols.unwrap(), vec![5]);
    }

    #[test]
    fn smaller_side_builds_the_hash_table() {
        let p = plan_sql(
            "SELECT COUNT(*) FROM orders, nation, customer \
             WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey",
        );
        // Every Hash node's input must not exceed its sibling probe's rows.
        p.walk(&mut |n| {
            if n.node_type == NodeType::HashJoin {
                let probe = &n.children[0];
                let hash = &n.children[1];
                assert!(
                    hash.children[0].plan_rows <= probe.plan_rows,
                    "build side larger than probe side"
                );
            }
        });
    }

    #[test]
    fn top_n_uses_dedicated_operator() {
        let p = plan_sql(
            "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10 OFFSET 100",
        );
        assert_eq!(p.count_type(NodeType::TopNSort), 1);
        assert_eq!(p.count_type(NodeType::Sort), 0);
    }

    #[test]
    fn order_without_limit_sorts_fully() {
        let p = plan_sql("SELECT o_orderkey FROM orders ORDER BY o_totalprice");
        assert_eq!(p.count_type(NodeType::Sort), 1);
        assert_eq!(p.count_type(NodeType::TopNSort), 0);
    }

    #[test]
    fn ap_costs_dwarf_tp_costs_when_tp_has_an_index_path() {
        let (catalog, stats) = setup();
        let q = Binder::new(&catalog)
            .bind_sql("SELECT c_name FROM customer WHERE c_custkey = 42")
            .unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &catalog);
        let ap = plan(&ctx).unwrap();
        let tp = super::super::tp::plan(&ctx).unwrap();
        // Scales are intentionally incomparable: a point lookup is a handful
        // of TP units but a full-column pass in AP units — the exact trap
        // the paper's prompt warns the LLM about.
        assert!(
            ap.total_cost > tp.total_cost * 5.0,
            "ap={} tp={}",
            ap.total_cost,
            tp.total_cost
        );
        assert!(catalog.table("orders").is_some());
    }

    #[test]
    fn scalar_aggregate_estimates_one_row() {
        let p = plan_sql("SELECT COUNT(*) FROM customer");
        assert_eq!(p.plan_rows, 1.0);
    }

    #[test]
    fn hash_join_children_order_is_probe_then_hash() {
        let p = plan_sql(
            "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        );
        let mut seen = false;
        p.walk(&mut |n| {
            if n.node_type == NodeType::HashJoin {
                assert_ne!(n.children[0].node_type, NodeType::Hash);
                assert_eq!(n.children[1].node_type, NodeType::Hash);
                seen = true;
            }
        });
        assert!(seen);
    }
}
