//! Per-engine query optimizers.
//!
//! Both optimizers consume the same [`BoundQuery`] and statistics but emit
//! structurally different plans with *incomparable* cost scales:
//!
//! * [`tp`] — OLTP-biased: index access paths, (index-)nested-loop joins,
//!   sort-based grouping, index-ordered top-N. Costs are in "TP units"
//!   (thousands for typical queries).
//! * [`ap`] — OLAP-biased: columnar scans of referenced columns only, hash
//!   joins with the smaller side as build, hash aggregation. Costs are in
//!   "AP units" (millions for typical queries — mirroring the paper's
//!   Table II where AP's `Total Cost` is 16,500,000 while TP's is 5,213).
//!
//! The cross-engine incomparability is intentional and load-bearing: the
//! paper's prompt explicitly forbids the LLM from comparing these numbers,
//! and its DBG-PT baseline errs exactly by comparing them anyway.

pub mod ap;
pub mod tp;

use crate::stats::{self, DbStats};
use qpe_sql::binder::{BoundExpr, BoundQuery, EquiJoin};
use qpe_sql::catalog::{Catalog, TableDef};

/// Errors during physical planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// ORDER BY expression not found among projected outputs of an
    /// aggregated query.
    OrderKeyNotProjected(String),
    /// Table definition vanished between bind and plan (catalog mutation).
    MissingTable(String),
    /// The query shape is not plannable (e.g. LIMIT without any input).
    Unsupported(String),
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::OrderKeyNotProjected(k) => {
                write!(f, "ORDER BY key {k} is not in the projection of an aggregated query")
            }
            OptError::MissingTable(t) => write!(f, "table {t} missing from catalog"),
            OptError::Unsupported(m) => write!(f, "unsupported query shape: {m}"),
        }
    }
}

impl std::error::Error for OptError {}

/// Shared planning context.
pub struct PlannerCtx<'a> {
    /// The bound query.
    pub query: &'a BoundQuery,
    /// Database statistics.
    pub stats: &'a DbStats,
    /// Catalog access (index metadata, column widths).
    pub catalog: &'a dyn Catalog,
    /// Whether the AP planner pushes filter conjunctions into scan nodes for
    /// zone-map block pruning (on by default; benchmarks and differential
    /// tests turn it off to measure/verify the unpruned path).
    pub pushdown: bool,
}

impl<'a> PlannerCtx<'a> {
    /// Creates a context (scan-predicate pushdown enabled).
    pub fn new(query: &'a BoundQuery, stats: &'a DbStats, catalog: &'a dyn Catalog) -> Self {
        PlannerCtx { query, stats, catalog, pushdown: true }
    }

    /// The same context with scan-predicate pushdown disabled — plans then
    /// read every block, exactly as before zone maps existed.
    pub fn without_pushdown(mut self) -> Self {
        self.pushdown = false;
        self
    }

    /// Table definition for a slot.
    pub fn table_def(&self, slot: usize) -> Result<&TableDef, OptError> {
        let name = &self.query.tables[slot].name;
        self.catalog
            .table(name)
            .ok_or_else(|| OptError::MissingTable(name.clone()))
    }

    /// Estimated post-filter cardinality of a slot.
    pub fn filtered_card(&self, slot: usize) -> f64 {
        stats::filtered_cardinality(self.stats, self.query, slot)
    }

    /// All filters on `slot` ANDed into one predicate (None if unfiltered).
    pub fn combined_filter(&self, slot: usize) -> Option<BoundExpr> {
        let filters = self.query.filters_on(slot);
        let mut it = filters.into_iter().map(|f| f.expr.clone());
        let first = it.next()?;
        Some(it.fold(first, |acc, e| BoundExpr::Binary {
            left: Box::new(acc),
            op: qpe_sql::ast::BinaryOp::And,
            right: Box::new(e),
        }))
    }

    /// Column indexes of `slot` referenced anywhere in the query, sorted.
    /// The AP engine materializes exactly these; TP materializes full rows.
    pub fn referenced_columns(&self, slot: usize) -> Vec<usize> {
        fn visit(e: &BoundExpr, slot: usize, cols: &mut Vec<usize>) {
            e.walk_columns(&mut |c| {
                if c.table_slot == slot && !cols.contains(&c.column_idx) {
                    cols.push(c.column_idx);
                }
            });
        }
        let mut cols: Vec<usize> = Vec::new();
        for f in &self.query.filters {
            visit(&f.expr, slot, &mut cols);
        }
        for j in &self.query.joins {
            for c in [&j.left, &j.right] {
                if c.table_slot == slot && !cols.contains(&c.column_idx) {
                    cols.push(c.column_idx);
                }
            }
        }
        for r in &self.query.residual_predicates {
            visit(r, slot, &mut cols);
        }
        for p in &self.query.projections {
            visit(&p.expr, slot, &mut cols);
        }
        for g in &self.query.group_by {
            visit(g, slot, &mut cols);
        }
        if let Some(h) = &self.query.having {
            visit(h, slot, &mut cols);
        }
        for (o, _) in &self.query.order_by {
            visit(o, slot, &mut cols);
        }
        cols.sort_unstable();
        // A scan must produce at least one column to carry row multiplicity.
        if cols.is_empty() {
            cols.push(0);
        }
        cols
    }

    /// All column indexes of `slot` (TP full-row materialization).
    pub fn all_columns(&self, slot: usize) -> Result<Vec<usize>, OptError> {
        Ok((0..self.table_def(slot)?.columns.len()).collect())
    }

    /// Greedy join order: start with the smallest filtered input, repeatedly
    /// attach the connected table minimizing the estimated intermediate
    /// cardinality; disconnected tables (cross products) come last.
    pub fn join_order(&self) -> Vec<usize> {
        let n = self.query.tables.len();
        if n == 1 {
            return vec![0];
        }
        let cards: Vec<f64> = (0..n).map(|s| self.filtered_card(s)).collect();
        let mut remaining: Vec<usize> = (0..n).collect();
        let start = remaining
            .iter()
            .copied()
            .min_by(|&a, &b| cards[a].total_cmp(&cards[b]))
            .unwrap();
        let mut order = vec![start];
        remaining.retain(|&s| s != start);
        let mut current_card = cards[start];
        while !remaining.is_empty() {
            // candidates connected to the tables already joined
            let mut best: Option<(usize, f64)> = None;
            for &cand in &remaining {
                let joins: Vec<&EquiJoin> = self
                    .query
                    .joins
                    .iter()
                    .filter(|j| {
                        let (a, b) = (j.left.table_slot, j.right.table_slot);
                        (a == cand && order.contains(&b)) || (b == cand && order.contains(&a))
                    })
                    .collect();
                if joins.is_empty() {
                    continue;
                }
                let est = stats::join_cardinality(
                    self.stats,
                    self.query,
                    current_card,
                    cards[cand],
                    &joins,
                );
                if best.map(|(_, c)| est < c).unwrap_or(true) {
                    best = Some((cand, est));
                }
            }
            let (next, card) = match best {
                Some(x) => x,
                None => {
                    // no connected candidate: cross-join the smallest
                    let cand = remaining
                        .iter()
                        .copied()
                        .min_by(|&a, &b| cards[a].total_cmp(&cards[b]))
                        .unwrap();
                    (cand, current_card * cards[cand])
                }
            };
            order.push(next);
            remaining.retain(|&s| s != next);
            current_card = card;
        }
        order
    }

    /// Join conditions between the already-joined set `joined` and `next`.
    pub fn join_conds_with(&self, joined: &[usize], next: usize) -> Vec<&EquiJoin> {
        self.query
            .joins
            .iter()
            .filter(|j| {
                let (a, b) = (j.left.table_slot, j.right.table_slot);
                (a == next && joined.contains(&b)) || (b == next && joined.contains(&a))
            })
            .collect()
    }

    /// Resolves ORDER BY keys of an aggregated query to projection positions.
    pub fn output_sort_keys(&self) -> Result<Vec<(usize, bool)>, OptError> {
        self.query
            .order_by
            .iter()
            .map(|(expr, desc)| {
                self.query
                    .projections
                    .iter()
                    .position(|p| &p.expr == expr)
                    .map(|i| (i, *desc))
                    .ok_or_else(|| OptError::OrderKeyNotProjected(format!("{expr:?}")))
            })
            .collect()
    }
}

/// A human-readable rendering of a bound predicate for plan `Detail` fields.
pub fn detail_of(expr: &BoundExpr, query: &BoundQuery, catalog: &dyn Catalog) -> String {
    use qpe_sql::binder::BoundExpr as E;
    let col_name = |c: &qpe_sql::binder::ColumnRef| -> String {
        let t = &query.tables[c.table_slot].name;
        catalog
            .table(t)
            .and_then(|d| d.columns.get(c.column_idx))
            .map(|cd| cd.name.clone())
            .unwrap_or_else(|| format!("#{}:{}", c.table_slot, c.column_idx))
    };
    fn rec(e: &BoundExpr, f: &dyn Fn(&qpe_sql::binder::ColumnRef) -> String) -> String {
        match e {
            E::Column(c) => f(c),
            E::Literal(v) => v.to_string(),
            E::Param { idx, .. } => format!("${}", idx + 1),
            E::Binary { left, op, right } => {
                format!("{} {} {}", rec(left, f), op, rec(right, f))
            }
            E::Not(x) => format!("NOT ({})", rec(x, f)),
            E::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
                format!(
                    "{}{} IN ({})",
                    rec(expr, f),
                    if *negated { " NOT" } else { "" },
                    items.join(", ")
                )
            }
            E::InListParam { expr, items, negated } => {
                let items: Vec<String> = items.iter().map(|it| rec(it, f)).collect();
                format!(
                    "{}{} IN ({})",
                    rec(expr, f),
                    if *negated { " NOT" } else { "" },
                    items.join(", ")
                )
            }
            E::Between { expr, low, high } => format!(
                "{} BETWEEN {} AND {}",
                rec(expr, f),
                rec(low, f),
                rec(high, f)
            ),
            E::Like { expr, pattern, negated } => format!(
                "{}{} LIKE '{}'",
                rec(expr, f),
                if *negated { " NOT" } else { "" },
                pattern
            ),
            E::IsNull { expr, negated } => format!(
                "{} IS{} NULL",
                rec(expr, f),
                if *negated { " NOT" } else { "" }
            ),
            E::Substring { expr, start, len } => {
                format!("SUBSTRING({}, {}, {})", rec(expr, f), start, len)
            }
            E::Aggregate { func, arg, distinct } => {
                let d = if *distinct { "DISTINCT " } else { "" };
                match arg {
                    Some(a) => format!("{func}({d}{})", rec(a, f)),
                    None => format!("{func}(*)"),
                }
            }
        }
    }
    rec(expr, &col_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use qpe_sql::binder::Binder;
    use qpe_sql::catalog::{ColumnDef, DataType, MemoryCatalog, TableDef};
    use qpe_sql::value::Value;

    fn setup() -> (MemoryCatalog, DbStats) {
        let mut cat = MemoryCatalog::new();
        for (name, prefix, rows, ndv_b) in [
            ("small", "s", 10u64, 5u64),
            ("mid", "m", 100, 10),
            ("big", "b", 1000, 10),
        ] {
            cat.add_table(TableDef {
                name: name.into(),
                columns: vec![
                    ColumnDef { name: format!("{prefix}_key"), data_type: DataType::Int, ndv: rows },
                    ColumnDef { name: format!("{prefix}_val"), data_type: DataType::Int, ndv: ndv_b },
                ],
                row_count: rows,
                indexed_columns: vec![],
                primary_key: format!("{prefix}_key"),
            });
        }
        let mut stats = DbStats::new();
        for (name, rows, ndv_b) in [("small", 10u64, 5), ("mid", 100, 10), ("big", 1000, 10)] {
            let keys: Vec<Value> = (0..rows).map(|i| Value::Int(i as i64)).collect();
            let vals: Vec<Value> = (0..rows).map(|i| Value::Int((i % ndv_b) as i64)).collect();
            stats.insert(TableStats::collect(name, &[keys, vals]));
        }
        (cat, stats)
    }

    #[test]
    fn join_order_starts_from_smallest() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql(
                "SELECT COUNT(*) FROM big, mid, small \
                 WHERE b_val = m_key AND m_val = s_key",
            )
            .unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &cat);
        let order = ctx.join_order();
        // small (slot 2) is the smallest; mid connects to it, then big.
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn join_order_handles_cross_products() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT COUNT(*) FROM big, small")
            .unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &cat);
        let order = ctx.join_order();
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], 1, "smallest first");
    }

    #[test]
    fn referenced_columns_are_minimal_and_sorted() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT s_val FROM small WHERE s_key > 2")
            .unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &cat);
        assert_eq!(ctx.referenced_columns(0), vec![0, 1]);
        let q2 = Binder::new(&cat).bind_sql("SELECT COUNT(*) FROM small").unwrap();
        let ctx2 = PlannerCtx::new(&q2, &stats, &cat);
        // COUNT(*) needs no columns, but scans must carry one.
        assert_eq!(ctx2.referenced_columns(0), vec![0]);
    }

    #[test]
    fn combined_filter_ands_conjuncts() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM small WHERE s_key > 2 AND s_val = 1")
            .unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &cat);
        let f = ctx.combined_filter(0).unwrap();
        assert!(matches!(
            f,
            BoundExpr::Binary { op: qpe_sql::ast::BinaryOp::And, .. }
        ));
        let q2 = Binder::new(&cat).bind_sql("SELECT * FROM small").unwrap();
        let ctx2 = PlannerCtx::new(&q2, &stats, &cat);
        assert!(ctx2.combined_filter(0).is_none());
    }

    #[test]
    fn output_sort_keys_resolve_to_projection_positions() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql(
                "SELECT s_val, COUNT(*) FROM small GROUP BY s_val ORDER BY s_val DESC",
            )
            .unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &cat);
        assert_eq!(ctx.output_sort_keys().unwrap(), vec![(0, true)]);
    }

    #[test]
    fn output_sort_key_missing_is_error() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT COUNT(*) FROM small GROUP BY s_val ORDER BY s_key")
            .unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &cat);
        assert!(matches!(
            ctx.output_sort_keys(),
            Err(OptError::OrderKeyNotProjected(_))
        ));
    }

    #[test]
    fn detail_renders_column_names() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM small WHERE s_val IN (1, 2)")
            .unwrap();
        let _ = stats; // silence
        let d = detail_of(&q.filters[0].expr, &q, &cat);
        assert_eq!(d, "s_val IN (1, 2)");
    }
}
