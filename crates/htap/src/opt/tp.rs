//! The TP (row-engine) optimizer.
//!
//! OLTP bias: prefers B-tree index access paths and (index-)nested-loop
//! joins, groups by sorting, and exploits index order for top-N queries.
//! Without a usable index it degrades to full scans and naive nested loops —
//! the degradation the paper's Example 1 explanation hinges on ("TP has to
//! use nested loop join with no index available").
//!
//! Cost units are "TP pages": small numbers (thousands) scaled like the
//! paper's Table II TP plan.

use super::{detail_of, OptError, PlannerCtx};
use crate::plan::{AggSpec, IndexLookup, JoinCond, NodeType, PlanNode, PlanOp, PlanTerm};
use crate::stats::{self, DbStats};
use qpe_sql::ast::BinaryOp;
use qpe_sql::binder::{AggregateKind, BoundDml, BoundExpr, ColumnRef};
use qpe_sql::catalog::Catalog;

/// The index-servable "value side" of a predicate: a literal known at plan
/// time, or a prepared-statement parameter resolved at execution time. Both
/// drive the same index access paths — a prepared `c_custkey = ?` must plan
/// exactly like `c_custkey = 42`, or prepared execution would differ from
/// inlined execution in shape, counters and latency.
fn term_of(e: &BoundExpr) -> Option<PlanTerm> {
    match e {
        BoundExpr::Literal(v) => Some(PlanTerm::Lit(v.clone())),
        BoundExpr::Param { idx, .. } => Some(PlanTerm::Param(*idx)),
        _ => None,
    }
}

/// Cost of scanning one row (full tuple) from the row store.
pub const COST_ROW_SCAN: f64 = 0.25;
/// Cost of one B-tree traversal step.
pub const COST_BTREE_STEP: f64 = 0.5;
/// Cost of fetching one row through an index.
pub const COST_INDEX_FETCH: f64 = 0.3;
/// Cost of evaluating a filter on one row.
pub const COST_FILTER_ROW: f64 = 0.01;
/// Cost of one nested-loop inner comparison.
pub const COST_NLJ_PAIR: f64 = 0.005;
/// Per-row sort factor (multiplied by log2 n).
pub const COST_SORT_ROW: f64 = 0.02;
/// Per-row aggregation cost.
pub const COST_AGG_ROW: f64 = 0.05;
/// Cost of writing one row (append or relocate) into the row store.
pub const COST_WRITE_ROW: f64 = 0.4;
/// Cost of one B-tree index entry modification on the write path.
pub const COST_INDEX_UPDATE: f64 = 0.15;

/// Plans `ctx.query` for the TP engine.
pub fn plan(ctx: &PlannerCtx) -> Result<PlanNode, OptError> {
    // Special case: single-table top-N served directly from index order.
    if let Some(p) = try_index_ordered_topn(ctx)? {
        return Ok(p);
    }

    let order = ctx.join_order();
    let mut current = access_path(ctx, order[0])?;
    let mut joined = vec![order[0]];
    for &next in &order[1..] {
        current = plan_join(ctx, current, &joined, next)?;
        joined.push(next);
    }
    current = apply_residuals(ctx, current);
    finalize(ctx, current)
}

/// Plans a write statement for the TP engine (the only engine with a write
/// path — the system routes every DML statement here).
///
/// `INSERT` is a leaf node costed per row + per index entry. `UPDATE` and
/// `DELETE` wrap the ordinary single-table [`access_path`] over the bound
/// statement's synthetic scan query, so the index-selection logic (and the
/// bare-column-only trap it encodes) applies to writes exactly as to reads.
pub fn plan_dml(
    dml: &BoundDml,
    db_stats: &DbStats,
    catalog: &dyn Catalog,
) -> Result<PlanNode, OptError> {
    let table = dml.table_name().to_string();
    let def = catalog
        .table(&table)
        .ok_or_else(|| OptError::MissingTable(table.clone()))?;
    let n_indexes = (1 + def.indexed_columns.len()) as f64;
    match dml {
        BoundDml::Insert(ins) => {
            let rows = ins.rows.len();
            let cost = rows as f64 * (COST_WRITE_ROW + n_indexes * COST_INDEX_UPDATE);
            Ok(PlanNode::new(
                NodeType::Insert,
                PlanOp::Insert { table: table.clone(), rows },
            )
            .with_relation(&table)
            .with_detail(format!("{rows} row(s)"))
            .with_estimates(cost, rows as f64))
        }
        BoundDml::Update(up) => {
            let ctx = PlannerCtx::new(&up.scan, db_stats, catalog);
            let child = access_path(&ctx, 0)?;
            let est_rows = child.plan_rows.max(1.0);
            // relocation = tombstone + append, touching each index twice
            let cost = child.total_cost
                + est_rows * (2.0 * COST_WRITE_ROW + 2.0 * n_indexes * COST_INDEX_UPDATE);
            Ok(PlanNode::new(
                NodeType::Update,
                PlanOp::Update { table: table.clone(), assignments: up.assignments.len() },
            )
            .with_relation(&table)
            .with_detail(format!("{} assignment(s)", up.assignments.len()))
            .with_estimates(cost, est_rows)
            .with_child(child))
        }
        BoundDml::Delete(del) => {
            let ctx = PlannerCtx::new(&del.scan, db_stats, catalog);
            let child = access_path(&ctx, 0)?;
            let est_rows = child.plan_rows.max(1.0);
            let cost = child.total_cost + est_rows * n_indexes * COST_INDEX_UPDATE;
            Ok(PlanNode::new(
                NodeType::Delete,
                PlanOp::Delete { table: table.clone() },
            )
            .with_relation(&table)
            .with_estimates(cost, est_rows)
            .with_child(child))
        }
    }
}

/// Index opportunity extracted from a slot's filters.
struct IndexChoice {
    column_idx: usize,
    lookup: IndexLookup,
    est_rows: f64,
    /// Conjuncts NOT served by the index (still needed as a filter).
    residual: Option<BoundExpr>,
    /// Whether the index lookup answers its driving conjunct exactly.
    /// Strict ranges (`<`, `>`) are served by an inclusive index range and
    /// must re-check the predicate.
    exact: bool,
}

/// Finds the best index access for `slot`, if any.
///
/// Only *bare-column* predicates qualify: `SUBSTRING(c_phone, 1, 2) IN (...)`
/// cannot use the `c_phone` index — the misreading the paper's DBG-PT
/// baseline makes.
fn find_index_choice(ctx: &PlannerCtx, slot: usize) -> Result<Option<IndexChoice>, OptError> {
    let def = ctx.table_def(slot)?;
    let filters = ctx.query.filters_on(slot);
    let n = def.row_count as f64;
    let mut best: Option<(usize, IndexChoice)> = None; // (filter idx, choice)
    for (fi, f) in filters.iter().enumerate() {
        let candidate = match &f.expr {
            BoundExpr::Binary { left, op, right } => {
                let (col, lit, op) = match (left.as_bare_column(), term_of(right)) {
                    (Some(c), Some(t)) => (Some(c), Some(t), *op),
                    _ => match (term_of(left), right.as_bare_column()) {
                        (Some(t), Some(c)) => {
                            // flip `lit OP col` into `col OP' lit`
                            let flipped = match op {
                                BinaryOp::Lt => BinaryOp::Gt,
                                BinaryOp::LtEq => BinaryOp::GtEq,
                                BinaryOp::Gt => BinaryOp::Lt,
                                BinaryOp::GtEq => BinaryOp::LtEq,
                                other => *other,
                            };
                            (Some(c), Some(t), flipped)
                        }
                        _ => (None, None, *op),
                    },
                };
                match (col, lit, op) {
                    (Some(c), Some(v), BinaryOp::Eq) => {
                        Some((c, IndexLookup::Keys(vec![v]), true))
                    }
                    (Some(c), Some(v), BinaryOp::Lt) => Some((
                        c,
                        IndexLookup::Range { low: None, high: Some(v) },
                        false, // inclusive range over-approximates `<`
                    )),
                    (Some(c), Some(v), BinaryOp::LtEq) => Some((
                        c,
                        IndexLookup::Range { low: None, high: Some(v) },
                        true,
                    )),
                    (Some(c), Some(v), BinaryOp::Gt) => Some((
                        c,
                        IndexLookup::Range { low: Some(v), high: None },
                        false,
                    )),
                    (Some(c), Some(v), BinaryOp::GtEq) => Some((
                        c,
                        IndexLookup::Range { low: Some(v), high: None },
                        true,
                    )),
                    _ => None,
                }
            }
            BoundExpr::InList { expr, list, negated: false } => expr.as_bare_column().map(|c| {
                (
                    c,
                    IndexLookup::Keys(list.iter().cloned().map(PlanTerm::Lit).collect()),
                    true,
                )
            }),
            // A parameterized IN list is index-eligible exactly like the
            // literal form: placeholder elements become `Param` key terms,
            // lowered to literals at execution like `col = ?` keys — so the
            // prepared plan's shape matches the literal-inlined plan.
            BoundExpr::InListParam { expr, items, negated: false } => {
                expr.as_bare_column().and_then(|c| {
                    let keys: Option<Vec<PlanTerm>> = items.iter().map(term_of).collect();
                    keys.map(|keys| (c, IndexLookup::Keys(keys), true))
                })
            }
            BoundExpr::Between { expr, low, high } => {
                match (expr.as_bare_column(), term_of(low), term_of(high)) {
                    (Some(c), Some(lo), Some(hi)) => Some((
                        c,
                        IndexLookup::Range { low: Some(lo), high: Some(hi) },
                        true,
                    )),
                    _ => None,
                }
            }
            _ => None,
        };
        let Some((col, lookup, exact)) = candidate else { continue };
        let col_name = &def.columns[col.column_idx].name;
        if !def.has_index(col_name) {
            continue;
        }
        let sel = stats::selectivity(ctx.stats, ctx.query, &f.expr);
        let est_rows = (n * sel).max(1.0);
        // prefer the most selective index predicate; ties prefer Keys
        let better = match &best {
            None => true,
            Some((_, b)) => est_rows < b.est_rows,
        };
        if better {
            best = Some((
                fi,
                IndexChoice {
                    column_idx: col.column_idx,
                    lookup,
                    est_rows,
                    residual: None,
                    exact,
                },
            ));
        }
    }
    Ok(best.map(|(fi, mut choice)| {
        // Residual = AND of the other conjuncts; inexact lookups re-check
        // their own driving conjunct too.
        let mut rest = filters
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != fi || !choice.exact)
            .map(|(_, f)| f.expr.clone());
        choice.residual = rest.next().map(|first| {
            rest.fold(first, |acc, e| BoundExpr::Binary {
                left: Box::new(acc),
                op: BinaryOp::And,
                right: Box::new(e),
            })
        });
        choice
    }))
}

/// Builds the access path (scan [+ filter]) for one table slot.
pub fn access_path(ctx: &PlannerCtx, slot: usize) -> Result<PlanNode, OptError> {
    let def = ctx.table_def(slot)?;
    let n = def.row_count as f64;
    let columns = ctx.all_columns(slot)?;
    let table = def.name.clone();

    if let Some(choice) = find_index_choice(ctx, slot)? {
        let idx_name = def.columns[choice.column_idx].name.clone();
        let scan_cost = (n.max(2.0)).log2() * COST_BTREE_STEP + choice.est_rows * COST_INDEX_FETCH;
        let mut node = PlanNode::new(
            NodeType::IndexScan,
            PlanOp::IndexScan {
                table_slot: slot,
                column_idx: choice.column_idx,
                lookup: choice.lookup,
                columns,
            },
        )
        .with_relation(&table)
        .with_index(&idx_name)
        .with_estimates(scan_cost, choice.est_rows);
        if let Some(residual) = choice.residual {
            let sel = stats::selectivity(ctx.stats, ctx.query, &residual);
            let rows = (choice.est_rows * sel).max(1.0);
            let cost = node.total_cost + choice.est_rows * COST_FILTER_ROW;
            let detail = detail_of(&residual, ctx.query, ctx.catalog);
            node = PlanNode::new(NodeType::Filter, PlanOp::Filter { predicate: residual })
                .with_detail(detail)
                .with_estimates(cost, rows)
                .with_child(node);
        }
        return Ok(node);
    }

    let scan = PlanNode::new(
        NodeType::TableScan,
        // The row store has no zone maps; TP scans never push predicates.
        PlanOp::TableScan { table_slot: slot, columns, pushed: None },
    )
    .with_relation(&table)
    .with_estimates(n * COST_ROW_SCAN, n);
    match ctx.combined_filter(slot) {
        Some(pred) => {
            let rows = ctx.filtered_card(slot);
            let cost = scan.total_cost + n * COST_FILTER_ROW;
            let detail = detail_of(&pred, ctx.query, ctx.catalog);
            Ok(
                PlanNode::new(NodeType::Filter, PlanOp::Filter { predicate: pred })
                    .with_detail(detail)
                    .with_estimates(cost, rows)
                    .with_child(scan),
            )
        }
        None => Ok(scan),
    }
}

/// Chooses and builds the join of `current` with table `next`.
fn plan_join(
    ctx: &PlannerCtx,
    current: PlanNode,
    joined: &[usize],
    next: usize,
) -> Result<PlanNode, OptError> {
    let conds = ctx.join_conds_with(joined, next);
    let def = ctx.table_def(next)?;
    let inner_n = def.row_count as f64;
    let outer_rows = current.plan_rows.max(1.0);
    let inner_filtered = ctx.filtered_card(next);
    let out_rows = stats::join_cardinality(ctx.stats, ctx.query, outer_rows, inner_filtered, &conds);

    // Index nested-loop: the inner join column must be indexed.
    let indexable = conds.iter().find_map(|j| {
        let (inner_col, outer_col) = if j.left.table_slot == next {
            (j.left, j.right)
        } else {
            (j.right, j.left)
        };
        let name = &def.columns[inner_col.column_idx].name;
        if def.has_index(name) {
            Some((inner_col, outer_col, name.clone()))
        } else {
            None
        }
    });

    if let Some((inner_col, outer_col, idx_name)) = indexable {
        let residual = ctx.combined_filter(next);
        let matches_per_probe =
            (inner_n / def.columns[inner_col.column_idx].ndv.max(1) as f64).max(1.0);
        let probe_cost = (inner_n.max(2.0)).log2() * COST_BTREE_STEP
            + matches_per_probe * COST_INDEX_FETCH;
        let cost = current.total_cost + outer_rows * probe_cost;
        let detail = residual
            .as_ref()
            .map(|r| detail_of(r, ctx.query, ctx.catalog));
        let mut probe = PlanNode::new(
            NodeType::IndexScan,
            PlanOp::IndexProbe {
                table_slot: next,
                column_idx: inner_col.column_idx,
                residual,
                columns: ctx.all_columns(next)?,
            },
        )
        .with_relation(&def.name)
        .with_index(idx_name)
        .with_estimates(probe_cost, matches_per_probe);
        if let Some(d) = detail {
            probe = probe.with_detail(d);
        }
        let join_detail = format!(
            "{} = {}",
            col_display(ctx, outer_col),
            col_display(ctx, inner_col)
        );
        return Ok(PlanNode::new(
            NodeType::IndexNLJoin,
            PlanOp::IndexNLJoin { outer_key: outer_col },
        )
        .with_detail(join_detail)
        .with_estimates(cost, out_rows)
        .with_child(current)
        .with_child(probe));
    }

    // Naive nested loop over the (filtered) inner relation.
    let inner = access_path(ctx, next)?;
    let inner_rows = inner.plan_rows.max(1.0);
    let cost = current.total_cost + inner.total_cost + outer_rows * inner_rows * COST_NLJ_PAIR;
    let join_conds: Vec<JoinCond> = conds
        .iter()
        .map(|j| orient_cond(j, joined, next))
        .collect();
    let detail = if join_conds.is_empty() {
        "cross product".to_string()
    } else {
        join_conds
            .iter()
            .map(|c| format!("{} = {}", col_display(ctx, c.left), col_display(ctx, c.right)))
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    Ok(PlanNode::new(
        NodeType::NestedLoopJoin,
        PlanOp::NestedLoopJoin { conds: join_conds, residual: None },
    )
    .with_detail(detail)
    .with_estimates(cost, out_rows)
    .with_child(current)
    .with_child(inner))
}

/// Orients an equi-join condition so `left` comes from the already-joined
/// side and `right` from the newly-added table.
fn orient_cond(j: &qpe_sql::binder::EquiJoin, joined: &[usize], next: usize) -> JoinCond {
    let _ = joined;
    if j.right.table_slot == next {
        JoinCond { left: j.left, right: j.right }
    } else {
        JoinCond { left: j.right, right: j.left }
    }
}

fn col_display(ctx: &PlannerCtx, c: ColumnRef) -> String {
    detail_of(&BoundExpr::Column(c), ctx.query, ctx.catalog)
}

/// Applies residual (multi-table, non-equi) predicates above the join tree.
fn apply_residuals(ctx: &PlannerCtx, current: PlanNode) -> PlanNode {
    let mut node = current;
    for r in &ctx.query.residual_predicates {
        let sel = stats::selectivity(ctx.stats, ctx.query, r);
        let rows = (node.plan_rows * sel).max(1.0);
        let cost = node.total_cost + node.plan_rows * COST_FILTER_ROW;
        let detail = detail_of(r, ctx.query, ctx.catalog);
        node = PlanNode::new(NodeType::Filter, PlanOp::Filter { predicate: r.clone() })
            .with_detail(detail)
            .with_estimates(cost, rows)
            .with_child(node);
    }
    node
}

/// Estimated number of groups produced by GROUP BY.
pub fn group_count_estimate(ctx: &PlannerCtx, input_rows: f64) -> f64 {
    if ctx.query.group_by.is_empty() {
        return 1.0;
    }
    let mut groups = 1.0;
    for g in &ctx.query.group_by {
        let ndv = g
            .as_bare_column()
            .and_then(|c| ctx.stats.column(ctx.query, c.table_slot, c.column_idx))
            .map(|cs| cs.ndv as f64)
            .unwrap_or(10.0);
        groups *= ndv;
    }
    groups.min(input_rows).max(1.0)
}

/// Adds aggregation / sorting / limiting / projection above the join tree.
fn finalize(ctx: &PlannerCtx, input: PlanNode) -> Result<PlanNode, OptError> {
    let q = ctx.query;
    let input_rows = input.plan_rows.max(1.0);

    if q.aggregate_kind != AggregateKind::None {
        let groups = group_count_estimate(ctx, input_rows);
        // Sort-based grouping: sort cost + streaming aggregation.
        let cost = input.total_cost
            + input_rows * (input_rows.max(2.0)).log2() * COST_SORT_ROW
            + input_rows * COST_AGG_ROW;
        let outputs: Vec<AggSpec> = q
            .projections
            .iter()
            .map(|p| AggSpec { expr: p.expr.clone(), label: p.label.clone() })
            .collect();
        let mut node = PlanNode::new(
            NodeType::GroupAggregate,
            PlanOp::Aggregate {
                group_by: q.group_by.clone(),
                outputs,
                having: q.having.clone(),
                hash: false,
            },
        )
        .with_estimates(cost, groups)
        .with_child(input);

        if !q.order_by.is_empty() {
            let keys = ctx.output_sort_keys()?;
            let cost = node.total_cost + groups * (groups.max(2.0)).log2() * COST_SORT_ROW;
            node = PlanNode::new(NodeType::Sort, PlanOp::OutputSort { keys })
                .with_estimates(cost, groups)
                .with_child(node);
        }
        if q.limit.is_some() || q.offset.is_some() {
            let limit = q.limit.unwrap_or(u64::MAX);
            let offset = q.offset.unwrap_or(0);
            let rows = (node.plan_rows - offset as f64).clamp(0.0, limit as f64);
            let cost = node.total_cost;
            node = PlanNode::new(NodeType::Limit, PlanOp::Limit { limit, offset })
                .with_estimates(cost, rows)
                .with_child(node);
        }
        return Ok(node);
    }

    // Non-aggregate: sort / limit below a final projection.
    let mut node = input;
    if !q.order_by.is_empty() {
        let keys: Vec<(BoundExpr, bool)> = q.order_by.clone();
        let cost = node.total_cost + input_rows * (input_rows.max(2.0)).log2() * COST_SORT_ROW;
        // TP sorts fully, then limits — it has no dedicated top-N operator
        // (one of the engine asymmetries for top-N workloads).
        node = PlanNode::new(NodeType::Sort, PlanOp::Sort { keys })
            .with_estimates(cost, input_rows)
            .with_child(node);
    }
    if q.limit.is_some() || q.offset.is_some() {
        let limit = q.limit.unwrap_or(u64::MAX);
        let offset = q.offset.unwrap_or(0);
        let rows = (node.plan_rows - offset as f64).clamp(0.0, limit as f64);
        node = PlanNode::new(NodeType::Limit, PlanOp::Limit { limit, offset })
            .with_estimates(node.total_cost, rows)
            .with_child(node);
    }
    let exprs: Vec<BoundExpr> = q.projections.iter().map(|p| p.expr.clone()).collect();
    let labels: Vec<String> = q.projections.iter().map(|p| p.label.clone()).collect();
    let rows = node.plan_rows;
    let cost = node.total_cost + rows * COST_FILTER_ROW;
    Ok(
        PlanNode::new(NodeType::Projection, PlanOp::Projection { exprs, labels })
            .with_estimates(cost, rows)
            .with_child(node),
    )
}

/// If the query is a single-table top-N whose sort key has a B-tree index,
/// serve it in index order (scan stops after limit+offset matching rows).
fn try_index_ordered_topn(ctx: &PlannerCtx) -> Result<Option<PlanNode>, OptError> {
    let q = ctx.query;
    if q.tables.len() != 1
        || !q.is_top_n()
        || q.order_by.len() != 1
        || q.aggregate_kind != AggregateKind::None
    {
        return Ok(None);
    }
    let (key, desc) = &q.order_by[0];
    let Some(col) = key.as_bare_column() else {
        return Ok(None);
    };
    let def = ctx.table_def(0)?;
    let col_name = &def.columns[col.column_idx].name;
    if !def.has_index(col_name) {
        return Ok(None);
    }
    let n = def.row_count as f64;
    let limit = q.limit.unwrap_or(0);
    let offset = q.offset.unwrap_or(0);
    let filter = ctx.combined_filter(0);
    let sel: f64 = q
        .filters_on(0)
        .iter()
        .map(|f| stats::selectivity(ctx.stats, ctx.query, &f.expr))
        .product();
    // Expected rows examined before (limit+offset) matches accumulate.
    let need = (limit + offset) as f64;
    let scanned = (need / sel.max(1e-6)).min(n);
    let scan_cost = (n.max(2.0)).log2() * COST_BTREE_STEP + scanned * COST_INDEX_FETCH;
    let mut node = PlanNode::new(
        NodeType::IndexScan,
        PlanOp::IndexScan {
            table_slot: 0,
            column_idx: col.column_idx,
            lookup: IndexLookup::Ordered { descending: *desc },
            columns: ctx.all_columns(0)?,
        },
    )
    .with_relation(&def.name)
    .with_index(col_name)
    .with_detail(format!(
        "index order {} ({})",
        col_name,
        if *desc { "DESC" } else { "ASC" }
    ))
    .with_estimates(scan_cost, scanned.max(1.0));
    if let Some(pred) = filter {
        let detail = detail_of(&pred, ctx.query, ctx.catalog);
        let cost = node.total_cost + scanned * COST_FILTER_ROW;
        node = PlanNode::new(NodeType::Filter, PlanOp::Filter { predicate: pred })
            .with_detail(detail)
            .with_estimates(cost, need.min(n))
            .with_child(node);
    }
    node = PlanNode::new(
        NodeType::Limit,
        PlanOp::Limit { limit, offset },
    )
    .with_estimates(node.total_cost, limit as f64)
    .with_child(node);
    let exprs: Vec<BoundExpr> = q.projections.iter().map(|p| p.expr.clone()).collect();
    let labels: Vec<String> = q.projections.iter().map(|p| p.label.clone()).collect();
    let rows = node.plan_rows;
    Ok(Some(
        PlanNode::new(NodeType::Projection, PlanOp::Projection { exprs, labels })
            .with_estimates(node.total_cost + rows * COST_FILTER_ROW, rows)
            .with_child(node),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DbStats;
    use crate::tpch::{generate, TpchConfig};
    use qpe_sql::binder::Binder;
    use qpe_sql::catalog::MemoryCatalog;

    fn setup() -> (MemoryCatalog, DbStats) {
        let (catalog, tables) = generate(&TpchConfig::with_scale(0.002));
        let mut stats = DbStats::new();
        for t in &tables {
            stats.insert(crate::stats::TableStats::collect(&t.name, &t.columns));
        }
        (catalog, stats)
    }

    fn plan_sql(sql: &str) -> PlanNode {
        let (catalog, stats) = setup();
        let q = Binder::new(&catalog).bind_sql(sql).unwrap();
        let ctx = PlannerCtx::new(&q, &stats, &catalog);
        plan(&ctx).unwrap()
    }

    #[test]
    fn example1_uses_nested_loops_not_index() {
        // No index serves SUBSTRING(c_phone,..) or the other predicates.
        let p = plan_sql(
            "SELECT COUNT(*) FROM customer, nation, orders \
             WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40') \
             AND c_mktsegment = 'machinery' \
             AND n_name = 'egypt' AND o_orderstatus = 'p' \
             AND o_custkey = c_custkey AND n_nationkey = c_nationkey",
        );
        assert_eq!(p.node_type, NodeType::GroupAggregate);
        // joins on c_custkey (customer PK) and o_custkey: customer side is
        // indexable via its PK, so at least one index NLJ may appear; the
        // plan must contain two joins total and no hash joins.
        let joins = p.count_type(NodeType::NestedLoopJoin) + p.count_type(NodeType::IndexNLJoin);
        assert_eq!(joins, 2);
        assert_eq!(p.count_type(NodeType::HashJoin), 0);
    }

    #[test]
    fn equality_on_pk_uses_index_scan() {
        let p = plan_sql("SELECT * FROM customer WHERE c_custkey = 42");
        assert_eq!(p.count_type(NodeType::IndexScan), 1);
        assert_eq!(p.count_type(NodeType::TableScan), 0);
    }

    #[test]
    fn substring_predicate_cannot_use_index() {
        // c_phone IS indexed (default config), but SUBSTRING disqualifies it.
        let p = plan_sql(
            "SELECT * FROM customer WHERE SUBSTRING(c_phone, 1, 2) = '20'",
        );
        assert_eq!(p.count_type(NodeType::IndexScan), 0);
        assert_eq!(p.count_type(NodeType::TableScan), 1);
    }

    #[test]
    fn bare_phone_equality_uses_index() {
        let p = plan_sql("SELECT * FROM customer WHERE c_phone = '20-123-456-7890'");
        assert_eq!(p.count_type(NodeType::IndexScan), 1);
    }

    #[test]
    fn range_predicate_uses_index_range() {
        let p = plan_sql("SELECT * FROM orders WHERE o_orderkey BETWEEN 10 AND 20");
        assert_eq!(p.count_type(NodeType::IndexScan), 1);
    }

    #[test]
    fn join_to_pk_side_uses_index_nlj() {
        // The selective orders filter makes orders the outer side, so the
        // join probes customer's primary-key index.
        let p = plan_sql(
            "SELECT COUNT(*) FROM orders, customer \
             WHERE o_custkey = c_custkey AND o_orderkey < 50",
        );
        assert_eq!(p.count_type(NodeType::IndexNLJoin), 1);
    }

    #[test]
    fn top_n_with_index_on_key_uses_ordered_scan() {
        let p = plan_sql(
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC LIMIT 10",
        );
        assert_eq!(p.count_type(NodeType::IndexScan), 1);
        assert_eq!(p.count_type(NodeType::Sort), 0);
        assert_eq!(p.count_type(NodeType::Limit), 1);
    }

    #[test]
    fn top_n_without_index_sorts_fully() {
        let p = plan_sql(
            "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10",
        );
        assert_eq!(p.count_type(NodeType::Sort), 1);
        assert_eq!(p.count_type(NodeType::Limit), 1);
    }

    #[test]
    fn grouped_aggregate_orders_by_output() {
        let p = plan_sql(
            "SELECT c_mktsegment, COUNT(*) FROM customer \
             GROUP BY c_mktsegment ORDER BY c_mktsegment LIMIT 3",
        );
        assert_eq!(p.node_type, NodeType::Limit);
        assert_eq!(p.children[0].node_type, NodeType::Sort);
        assert_eq!(p.children[0].children[0].node_type, NodeType::GroupAggregate);
    }

    #[test]
    fn costs_are_monotone_up_the_tree() {
        let p = plan_sql(
            "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        );
        fn check(n: &PlanNode) {
            for c in &n.children {
                assert!(
                    n.total_cost >= c.total_cost,
                    "{} cost {} < child {} cost {}",
                    n.node_type,
                    n.total_cost,
                    c.node_type,
                    c.total_cost
                );
                check(c);
            }
        }
        check(&p);
    }

    #[test]
    fn projection_caps_non_aggregate_plans() {
        let p = plan_sql("SELECT c_name FROM customer WHERE c_custkey < 10");
        assert_eq!(p.node_type, NodeType::Projection);
    }
}
