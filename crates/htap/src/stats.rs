//! Table/column statistics and cardinality estimation.
//!
//! Both optimizers estimate selectivities from the same statistics but weight
//! the resulting costs differently. Statistics are collected when data is
//! loaded ([`TableStats::collect`]) and then **maintained on write**:
//! `row_count` and numeric `min`/`max` update incrementally with every DML
//! statement (so cardinality estimates track live table sizes immediately),
//! while `ndv`/`null_frac` — too expensive to maintain exactly per write —
//! are recomputed lazily: writes accumulate in
//! [`TableStats::pending_ndv_writes`] and the database refreshes the column
//! stats once the backlog crosses its threshold (or at compaction).

use qpe_sql::binder::{BoundExpr, BoundQuery};
use qpe_sql::ast::BinaryOp;
use qpe_sql::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Physical-layout summary of a column: how *clustered* equal or nearby
/// values are in storage order. Zone maps (and their planning-time
/// estimate, [`zone_prune_fraction`]) only skip blocks when matching rows
/// are clustered, so this is the statistic that turns "the predicate keeps
/// 5% of rows" into "the scan skips 95% of blocks".
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusteringStats {
    /// Fraction of adjacent numeric pairs in non-decreasing order: 1.0 for
    /// a sorted (e.g. sequentially generated key) column, ~0.5 for a
    /// shuffled one.
    pub sortedness: f64,
    /// Mean length of adjacent-equal runs — long runs mean equal values sit
    /// together even when the column is not globally sorted.
    pub avg_run_len: f64,
}

impl ClusteringStats {
    /// Maps the summary onto `[0, 1]`: the degree to which block min/max
    /// headers can refute a range predicate. Sortedness is rescaled so a
    /// shuffled column (≈0.5) scores 0; run length counts on a log scale
    /// against the zone block size (a run spanning whole blocks scores 1).
    pub fn factor(&self) -> f64 {
        let sort = ((self.sortedness - 0.5) / 0.5).clamp(0.0, 1.0);
        let block = crate::storage::DEFAULT_BLOCK_ROWS as f64;
        let runs = if self.avg_run_len > 1.0 {
            (self.avg_run_len.log2() / block.log2()).clamp(0.0, 1.0)
        } else {
            0.0
        };
        sort.max(runs)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: u64,
    /// Minimum (numeric columns widened to f64; strings skipped).
    pub min: Option<f64>,
    /// Maximum.
    pub max: Option<f64>,
    /// Fraction of NULLs (0 for generated TPC-H data, but execution-side
    /// inserts may introduce them).
    pub null_frac: f64,
    /// Storage-order clustering sample, refreshed with `ndv`. `None` when
    /// never sampled (e.g. hand-built stats); estimation then falls back to
    /// the sequential-primary-key heuristic.
    pub clustering: Option<ClusteringStats>,
}

impl ColumnStats {
    /// Collects statistics from a column of values.
    pub fn collect<'a>(values: impl Iterator<Item = &'a Value>) -> Self {
        let mut distinct: HashSet<u64> = HashSet::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut nulls = 0u64;
        let mut total = 0u64;
        let mut prev_num: Option<f64> = None;
        let mut prev_hash: Option<u64> = None;
        let mut ordered_pairs = 0u64;
        let mut num_pairs = 0u64;
        let mut runs = 0u64;
        for v in values {
            total += 1;
            let h = hash_value(v);
            if prev_hash != Some(h) {
                runs += 1;
            }
            prev_hash = Some(h);
            match v {
                Value::Null => {
                    nulls += 1;
                    prev_num = None;
                }
                other => {
                    distinct.insert(h);
                    if let Some(x) = other.as_float() {
                        min = min.min(x);
                        max = max.max(x);
                        if let Some(p) = prev_num {
                            num_pairs += 1;
                            if p <= x {
                                ordered_pairs += 1;
                            }
                        }
                        prev_num = Some(x);
                    } else {
                        prev_num = None;
                    }
                }
            }
        }
        ColumnStats {
            ndv: distinct.len().max(1) as u64,
            min: if min.is_finite() { Some(min) } else { None },
            max: if max.is_finite() { Some(max) } else { None },
            null_frac: if total == 0 { 0.0 } else { nulls as f64 / total as f64 },
            clustering: Some(ClusteringStats {
                sortedness: if num_pairs == 0 {
                    0.0
                } else {
                    ordered_pairs as f64 / num_pairs as f64
                },
                avg_run_len: if runs == 0 { 1.0 } else { total as f64 / runs as f64 },
            }),
        }
    }

    /// Widens `min`/`max` with one written value. Bounds only ever grow
    /// between refreshes (a delete cannot shrink them without a rescan —
    /// that correction happens at the lazy ndv refresh).
    pub fn widen(&mut self, v: &Value) {
        if let Some(x) = v.as_float() {
            self.min = Some(self.min.map_or(x, |m| m.min(x)));
            self.max = Some(self.max.map_or(x, |m| m.max(x)));
        }
    }
}

fn hash_value(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Statistics for a whole table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    /// Table name.
    pub table: String,
    /// Row count (maintained incrementally on write).
    pub row_count: u64,
    /// Per-column stats, positionally aligned with the catalog definition.
    pub columns: Vec<ColumnStats>,
    /// Writes since `ndv`/`null_frac` were last recomputed — the lazy
    /// refresh trigger.
    pub pending_ndv_writes: u64,
}

impl TableStats {
    /// Collects stats for `columns_data[i]` being the values of column `i`.
    pub fn collect(table: &str, columns_data: &[Vec<Value>]) -> Self {
        let row_count = columns_data.first().map(|c| c.len()).unwrap_or(0) as u64;
        TableStats {
            table: table.to_string(),
            row_count,
            columns: columns_data
                .iter()
                .map(|c| ColumnStats::collect(c.iter()))
                .collect(),
            pending_ndv_writes: 0,
        }
    }

    /// True once the write backlog justifies a full ndv recompute: at least
    /// 64 writes and at least 1/16th of the table.
    pub fn ndv_is_stale(&self) -> bool {
        self.pending_ndv_writes >= 64.max(self.row_count / 16)
    }

    fn widen_with_rows(&mut self, rows: &[Vec<Value>]) {
        for row in rows {
            for (cs, v) in self.columns.iter_mut().zip(row) {
                cs.widen(v);
            }
        }
    }
}

/// Statistics for every table in the database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DbStats {
    tables: Vec<TableStats>,
}

impl DbStats {
    /// Empty stats container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers stats for a table (replacing older ones).
    pub fn insert(&mut self, stats: TableStats) {
        if let Some(t) = self.tables.iter_mut().find(|t| t.table == stats.table) {
            *t = stats;
        } else {
            self.tables.push(stats);
        }
    }

    /// Stats for `table`, if collected.
    pub fn table(&self, table: &str) -> Option<&TableStats> {
        self.tables.iter().find(|t| t.table == table)
    }

    /// Mutable stats for `table`.
    pub fn table_mut(&mut self, table: &str) -> Option<&mut TableStats> {
        self.tables.iter_mut().find(|t| t.table == table)
    }

    /// Incremental maintenance for inserted rows: row count, min/max, and
    /// the lazy-ndv backlog.
    pub fn note_insert(&mut self, table: &str, rows: &[Vec<Value>]) {
        if let Some(ts) = self.table_mut(table) {
            ts.row_count += rows.len() as u64;
            ts.widen_with_rows(rows);
            ts.pending_ndv_writes += rows.len() as u64;
        }
    }

    /// Incremental maintenance for updated rows (new images widen min/max;
    /// old images cannot be subtracted without a rescan).
    pub fn note_update(&mut self, table: &str, new_rows: &[Vec<Value>]) {
        if let Some(ts) = self.table_mut(table) {
            ts.widen_with_rows(new_rows);
            ts.pending_ndv_writes += new_rows.len() as u64;
        }
    }

    /// Incremental maintenance for deleted rows.
    pub fn note_delete(&mut self, table: &str, n: u64) {
        if let Some(ts) = self.table_mut(table) {
            ts.row_count = ts.row_count.saturating_sub(n);
            ts.pending_ndv_writes += n;
        }
    }

    /// Column stats for a bound column reference within `query`.
    pub fn column(&self, query: &BoundQuery, slot: usize, column_idx: usize) -> Option<&ColumnStats> {
        let table = &query.tables.get(slot)?.name;
        self.table(table)?.columns.get(column_idx)
    }
}

/// Default selectivity for predicates we cannot estimate better.
pub const DEFAULT_SELECTIVITY: f64 = 0.33;
/// Selectivity assumed for LIKE patterns.
pub const LIKE_SELECTIVITY: f64 = 0.08;
/// Selectivity assumed for equality on an expression (e.g. SUBSTRING(..) = x)
/// where column NDV does not directly apply.
pub const EXPR_EQ_SELECTIVITY: f64 = 0.02;

/// Estimates the selectivity of a single bound predicate over `query`'s
/// tables, using column statistics where available.
pub fn selectivity(stats: &DbStats, query: &BoundQuery, expr: &BoundExpr) -> f64 {
    let s = raw_selectivity(stats, query, expr);
    s.clamp(1e-7, 1.0)
}

fn raw_selectivity(stats: &DbStats, query: &BoundQuery, expr: &BoundExpr) -> f64 {
    match expr {
        BoundExpr::Binary { left, op, right } => match op {
            BinaryOp::And => {
                raw_selectivity(stats, query, left) * raw_selectivity(stats, query, right)
            }
            BinaryOp::Or => {
                let a = raw_selectivity(stats, query, left);
                let b = raw_selectivity(stats, query, right);
                (a + b - a * b).min(1.0)
            }
            BinaryOp::Eq => eq_selectivity(stats, query, left, right),
            BinaryOp::NotEq => 1.0 - eq_selectivity(stats, query, left, right),
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                range_selectivity(stats, query, left, *op, right)
            }
            _ => DEFAULT_SELECTIVITY,
        },
        BoundExpr::Not(inner) => 1.0 - raw_selectivity(stats, query, inner),
        BoundExpr::InList { expr, list, negated } => {
            let per = match expr.as_bare_column() {
                Some(c) => match stats.column(query, c.table_slot, c.column_idx) {
                    Some(cs) => 1.0 / cs.ndv as f64,
                    None => EXPR_EQ_SELECTIVITY,
                },
                // e.g. SUBSTRING(c_phone,1,2) IN (...): estimate per-item
                // selectivity from a synthetic prefix domain.
                None => EXPR_EQ_SELECTIVITY,
            };
            let s = (per * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        // Same estimate as the literal form: it depends only on the probed
        // column's ndv and the element count, both known before parameter
        // injection — so prepared and inlined plans cost identically.
        BoundExpr::InListParam { expr, items, negated } => {
            let per = match expr.as_bare_column() {
                Some(c) => match stats.column(query, c.table_slot, c.column_idx) {
                    Some(cs) => 1.0 / cs.ndv as f64,
                    None => EXPR_EQ_SELECTIVITY,
                },
                None => EXPR_EQ_SELECTIVITY,
            };
            let s = (per * items.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        BoundExpr::Between { expr, low, high } => {
            if let (Some(c), BoundExpr::Literal(lo), BoundExpr::Literal(hi)) =
                (expr.as_bare_column(), low.as_ref(), high.as_ref())
            {
                if let (Some(cs), Some(lo), Some(hi)) = (
                    stats.column(query, c.table_slot, c.column_idx),
                    lo.as_float(),
                    hi.as_float(),
                ) {
                    if let (Some(min), Some(max)) = (cs.min, cs.max) {
                        if max > min {
                            return ((hi.min(max) - lo.max(min)) / (max - min)).clamp(0.0, 1.0);
                        }
                    }
                }
            }
            DEFAULT_SELECTIVITY
        }
        BoundExpr::Like { negated, .. } => {
            if *negated {
                1.0 - LIKE_SELECTIVITY
            } else {
                LIKE_SELECTIVITY
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let frac = expr
                .as_bare_column()
                .and_then(|c| stats.column(query, c.table_slot, c.column_idx))
                .map(|cs| cs.null_frac)
                .unwrap_or(0.01);
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        BoundExpr::Literal(Value::Int(0)) => 0.0,
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Planning-time estimate of the fraction of base blocks a zone-map pruner
/// can skip for predicate `expr` — the "block-stat selectivity" the AP cost
/// model discounts filtered scans by.
///
/// Zone maps only skip blocks when matching rows are *clustered*: a range
/// over a column whose values arrive in order refutes most blocks, while
/// the same range over shuffled values leaves every block's min/max
/// straddling it. The estimate scales `1 - selectivity` by the column's
/// measured [`ClusteringStats::factor`] (sortedness / run length, sampled
/// with the other column stats) — a fully sorted key keeps the old
/// primary-key behavior, a shuffled column estimates 0, and partially
/// clustered columns land in between. Columns with no clustering sample
/// (older persisted stats) fall back to the sequential-primary-key
/// heuristic. Equality conjuncts are excluded so the engines' deliberately
/// incomparable cost scales keep their paper shape for point lookups.
pub fn zone_prune_fraction(
    stats: &DbStats,
    query: &BoundQuery,
    catalog: &dyn qpe_sql::catalog::Catalog,
    expr: &BoundExpr,
) -> f64 {
    let frac = match expr {
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            // One conjunct's skipping suffices: a block survives only if
            // every conjunct admits it.
            zone_prune_fraction(stats, query, catalog, left)
                .max(zone_prune_fraction(stats, query, catalog, right))
        }
        BoundExpr::Binary { left, op, right }
            if matches!(
                op,
                BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
            ) =>
        {
            let factor = left
                .as_bare_column()
                .or_else(|| right.as_bare_column())
                .map(|c| clustering_factor(stats, query, catalog, c))
                .unwrap_or(0.0);
            (1.0 - range_selectivity(stats, query, left, *op, right)) * factor
        }
        BoundExpr::Between { expr: inner, .. } => {
            let factor = inner
                .as_bare_column()
                .map(|c| clustering_factor(stats, query, catalog, c))
                .unwrap_or(0.0);
            (1.0 - raw_selectivity(stats, query, expr)) * factor
        }
        _ => 0.0,
    };
    frac.clamp(0.0, 0.98)
}

/// The clustering factor driving [`zone_prune_fraction`] for one column:
/// the measured sample where present, else 1.0 for sequentially generated
/// primary keys and 0.0 for everything unknown.
fn clustering_factor(
    stats: &DbStats,
    query: &BoundQuery,
    catalog: &dyn qpe_sql::catalog::Catalog,
    c: &qpe_sql::binder::ColumnRef,
) -> f64 {
    match stats
        .column(query, c.table_slot, c.column_idx)
        .and_then(|cs| cs.clustering)
    {
        Some(cl) => cl.factor(),
        None => {
            if column_is_primary_key(query, catalog, c) {
                1.0
            } else {
                0.0
            }
        }
    }
}

fn column_is_primary_key(
    query: &BoundQuery,
    catalog: &dyn qpe_sql::catalog::Catalog,
    c: &qpe_sql::binder::ColumnRef,
) -> bool {
    let Some(table) = query.tables.get(c.table_slot) else {
        return false;
    };
    let Some(def) = catalog.table(&table.name) else {
        return false;
    };
    def.column_index(&def.primary_key) == Some(c.column_idx)
}

fn eq_selectivity(
    stats: &DbStats,
    query: &BoundQuery,
    left: &BoundExpr,
    right: &BoundExpr,
) -> f64 {
    let col = left.as_bare_column().or_else(|| right.as_bare_column());
    match col {
        Some(c) => match stats.column(query, c.table_slot, c.column_idx) {
            Some(cs) => 1.0 / cs.ndv as f64,
            None => EXPR_EQ_SELECTIVITY,
        },
        None => EXPR_EQ_SELECTIVITY,
    }
}

fn range_selectivity(
    stats: &DbStats,
    query: &BoundQuery,
    left: &BoundExpr,
    op: BinaryOp,
    right: &BoundExpr,
) -> f64 {
    // Normalize to `column OP literal`.
    let (col, lit, op) = match (left.as_bare_column(), right) {
        (Some(c), BoundExpr::Literal(v)) => (Some(c), v.as_float(), op),
        _ => match (left, right.as_bare_column()) {
            (BoundExpr::Literal(v), Some(c)) => {
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => other,
                };
                (Some(c), v.as_float(), flipped)
            }
            _ => (None, None, op),
        },
    };
    if let (Some(c), Some(x)) = (col, lit) {
        if let Some(cs) = stats.column(query, c.table_slot, c.column_idx) {
            if let (Some(min), Some(max)) = (cs.min, cs.max) {
                if max > min {
                    let frac = ((x - min) / (max - min)).clamp(0.0, 1.0);
                    return match op {
                        BinaryOp::Lt | BinaryOp::LtEq => frac,
                        BinaryOp::Gt | BinaryOp::GtEq => 1.0 - frac,
                        _ => DEFAULT_SELECTIVITY,
                    };
                }
            }
        }
    }
    DEFAULT_SELECTIVITY
}

/// Estimated output cardinality of scanning `slot` with all its filters.
pub fn filtered_cardinality(stats: &DbStats, query: &BoundQuery, slot: usize) -> f64 {
    let base = query.tables[slot].row_count as f64;
    let sel: f64 = query
        .filters_on(slot)
        .iter()
        .map(|f| selectivity(stats, query, &f.expr))
        .product();
    (base * sel).max(1.0)
}

/// Estimated cardinality of joining two inputs of `left_rows` and
/// `right_rows` on the given equi-join columns (standard `1/max(ndv)`).
pub fn join_cardinality(
    stats: &DbStats,
    query: &BoundQuery,
    left_rows: f64,
    right_rows: f64,
    joins: &[&qpe_sql::binder::EquiJoin],
) -> f64 {
    let mut card = left_rows * right_rows;
    for j in joins {
        let ndv_l = stats
            .column(query, j.left.table_slot, j.left.column_idx)
            .map(|c| c.ndv)
            .unwrap_or(1000);
        let ndv_r = stats
            .column(query, j.right.table_slot, j.right.column_idx)
            .map(|c| c.ndv)
            .unwrap_or(1000);
        card /= ndv_l.max(ndv_r).max(1) as f64;
    }
    card.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::binder::Binder;
    use qpe_sql::catalog::{Catalog, ColumnDef, DataType, MemoryCatalog, TableDef};

    fn setup() -> (MemoryCatalog, DbStats) {
        let mut cat = MemoryCatalog::new();
        cat.add_table(TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "a".into(), data_type: DataType::Int, ndv: 10 },
                ColumnDef { name: "b".into(), data_type: DataType::Str, ndv: 4 },
            ],
            row_count: 100,
            indexed_columns: vec![],
            primary_key: "a".into(),
        });
        let a: Vec<Value> = (0..100).map(|i| Value::Int(i % 10)).collect();
        let b: Vec<Value> = (0..100)
            .map(|i| Value::Str(format!("s{}", i % 4)))
            .collect();
        let mut stats = DbStats::new();
        stats.insert(TableStats::collect("t", &[a, b]));
        (cat, stats)
    }

    #[test]
    fn collect_basic_stats() {
        let (_, stats) = setup();
        let ts = stats.table("t").unwrap();
        assert_eq!(ts.row_count, 100);
        assert_eq!(ts.columns[0].ndv, 10);
        assert_eq!(ts.columns[0].min, Some(0.0));
        assert_eq!(ts.columns[0].max, Some(9.0));
        assert_eq!(ts.columns[1].ndv, 4);
        assert_eq!(ts.columns[1].min, None); // strings have no numeric range
    }

    #[test]
    fn clustering_sample_tracks_layout() {
        // Sorted sequential key: full credit, same as the old PK heuristic.
        let sorted: Vec<Value> = (0..1000).map(Value::Int).collect();
        let cl = ColumnStats::collect(sorted.iter()).clustering.unwrap();
        assert_eq!(cl.sortedness, 1.0);
        assert!((cl.factor() - 1.0).abs() < 1e-9);
        // Shuffled values: no sortedness, runs of one — no credit.
        let shuffled: Vec<Value> =
            (0..1000).map(|i| Value::Int((i * 919) % 1000)).collect();
        let cl = ColumnStats::collect(shuffled.iter()).clustering.unwrap();
        assert!(cl.factor() < 0.3, "shuffled column scored clustered: {cl:?}");
        // Long equal runs earn credit through run length alone, even when
        // the run values are not in sorted order.
        let runs: Vec<Value> = (0..1024)
            .map(|i| Value::Int([5, 1, 9, 3][(i / 256) as usize]))
            .collect();
        let cl = ColumnStats::collect(runs.iter()).clustering.unwrap();
        assert!(cl.avg_run_len >= 256.0);
        assert!(cl.factor() > 0.7, "run-clustered column scored flat: {cl:?}");
    }

    #[test]
    fn zone_prune_fraction_scales_with_clustering() {
        let (cat, stats) = setup();
        // Column `a` cycles 0..9 — runs of one, sortedness 0.9 → partial
        // credit, strictly between "no pruning" and the sorted-key full
        // `1 - selectivity`.
        let q = Binder::new(&cat).bind_sql("SELECT * FROM t WHERE a < 3").unwrap();
        let f = zone_prune_fraction(&stats, &q, &cat, &q.filters[0].expr);
        let full = 1.0 - 3.0 / 9.0;
        assert!(f > 0.0 && f < full, "expected partial credit, got {f}");
        // A fully sorted column gets the whole discount.
        let mut sorted_stats = stats.clone();
        sorted_stats.table_mut("t").unwrap().columns[0] =
            ColumnStats::collect((0..100).map(Value::Int).collect::<Vec<_>>().iter());
        let q = Binder::new(&cat).bind_sql("SELECT * FROM t WHERE a < 33").unwrap();
        let f = zone_prune_fraction(&sorted_stats, &q, &cat, &q.filters[0].expr);
        assert!((f - (1.0 - 33.0 / 99.0)).abs() < 1e-9, "got {f}");
        // No clustering sample (older persisted stats): PK falls back to
        // the sequential-key heuristic, non-keys to zero.
        let mut legacy = sorted_stats.clone();
        for cs in &mut legacy.table_mut("t").unwrap().columns {
            cs.clustering = None;
        }
        let f = zone_prune_fraction(&legacy, &q, &cat, &q.filters[0].expr);
        assert!((f - (1.0 - 33.0 / 99.0)).abs() < 1e-9, "PK fallback, got {f}");
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat).bind_sql("SELECT * FROM t WHERE a = 3").unwrap();
        let s = selectivity(&stats, &q, &q.filters[0].expr);
        assert!((s - 0.1).abs() < 1e-9, "expected 1/ndv=0.1, got {s}");
    }

    #[test]
    fn in_list_scales_with_length() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM t WHERE a IN (1, 2, 3)")
            .unwrap();
        let s = selectivity(&stats, &q, &q.filters[0].expr);
        assert!((s - 0.3).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat).bind_sql("SELECT * FROM t WHERE a < 3").unwrap();
        let s = selectivity(&stats, &q, &q.filters[0].expr);
        assert!((s - 3.0 / 9.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn flipped_range_comparison() {
        let (cat, stats) = setup();
        // `3 > a` is the same as `a < 3`
        let q = Binder::new(&cat).bind_sql("SELECT * FROM t WHERE 3 > a").unwrap();
        let s = selectivity(&stats, &q, &q.filters[0].expr);
        assert!((s - 3.0 / 9.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn and_multiplies_or_adds() {
        let (cat, stats) = setup();
        let q_and = Binder::new(&cat)
            .bind_sql("SELECT * FROM t WHERE a = 1 AND b = 's1'")
            .unwrap();
        // classified as two separate filters; estimate combined cardinality
        let card = filtered_cardinality(&stats, &q_and, 0);
        assert!((card - 100.0 * 0.1 * 0.25).abs() < 1e-6);
        let q_or = Binder::new(&cat)
            .bind_sql("SELECT * FROM t WHERE a = 1 OR a = 2")
            .unwrap();
        let s = selectivity(&stats, &q_or, &q_or.filters[0].expr);
        assert!((s - (0.1 + 0.1 - 0.01)).abs() < 1e-9);
    }

    #[test]
    fn between_uses_minmax() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM t WHERE a BETWEEN 0 AND 9")
            .unwrap();
        let s = selectivity(&stats, &q, &q.filters[0].expr);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn substring_in_uses_expr_fallback() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM t WHERE SUBSTRING(b, 1, 1) IN ('a', 'b')")
            .unwrap();
        let s = selectivity(&stats, &q, &q.filters[0].expr);
        assert!((s - 2.0 * EXPR_EQ_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn join_cardinality_divides_by_max_ndv() {
        let (mut cat, mut stats) = setup();
        cat.add_table(TableDef {
            name: "u".into(),
            columns: vec![ColumnDef { name: "x".into(), data_type: DataType::Int, ndv: 10 }],
            row_count: 50,
            indexed_columns: vec![],
            primary_key: "x".into(),
        });
        let x: Vec<Value> = (0..50).map(|i| Value::Int(i % 10)).collect();
        stats.insert(TableStats::collect("u", &[x]));
        let q = Binder::new(&cat)
            .bind_sql("SELECT COUNT(*) FROM t, u WHERE a = x")
            .unwrap();
        let joins: Vec<&qpe_sql::binder::EquiJoin> = q.joins.iter().collect();
        let card = join_cardinality(&stats, &q, 100.0, 50.0, &joins);
        assert!((card - 500.0).abs() < 1e-6, "got {card}");
        // sanity: catalog trait object usable
        assert!(cat.table("u").is_some());
    }

    #[test]
    fn selectivity_is_clamped() {
        let (cat, stats) = setup();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM t WHERE a IN (1,2,3,4,5,6,7,8,9,0,11,12)")
            .unwrap();
        let s = selectivity(&stats, &q, &q.filters[0].expr);
        assert!(s <= 1.0);
    }
}
