//! Scalar expression evaluation over intermediate rows.
//!
//! Both engines share these semantics — the paper's two engines differ in
//! *how* they execute plans, not in what a predicate means — so result
//! equivalence between TP and AP is testable as an invariant.

use qpe_sql::ast::BinaryOp;
use qpe_sql::binder::BoundExpr;
use qpe_sql::value::Value;

/// The schema of an intermediate row: which `(table_slot, column_idx)` pair
/// each position holds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    cols: Vec<(usize, usize)>,
}

impl Schema {
    /// Creates a schema from `(table_slot, column_idx)` pairs.
    pub fn new(cols: Vec<(usize, usize)>) -> Self {
        Schema { cols }
    }

    /// Position of a bound column in the row, if present.
    pub fn position(&self, table_slot: usize, column_idx: usize) -> Option<usize> {
        self.cols
            .iter()
            .position(|&(s, c)| s == table_slot && c == column_idx)
    }

    /// Concatenates two schemas (join output layout).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        cols.extend_from_slice(&other.cols);
        Schema { cols }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The underlying pairs.
    pub fn columns(&self) -> &[(usize, usize)] {
        &self.cols
    }
}

/// Errors during evaluation — should not occur for bound queries over
/// generated data, but the executor surfaces them rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A column was not found in the row schema (planner bug).
    MissingColumn {
        /// Table slot requested.
        table_slot: usize,
        /// Column index requested.
        column_idx: usize,
    },
    /// A type error, e.g. arithmetic on strings.
    Type(String),
    /// An aggregate reached the scalar evaluator.
    AggregateInScalarContext,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::MissingColumn { table_slot, column_idx } => {
                write!(f, "column (slot {table_slot}, idx {column_idx}) missing from row schema")
            }
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::AggregateInScalarContext => {
                write!(f, "aggregate evaluated in scalar context")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `expr` against `row` laid out by `schema`.
pub fn eval(expr: &BoundExpr, schema: &Schema, row: &[Value]) -> Result<Value, EvalError> {
    match expr {
        BoundExpr::Column(c) => {
            let pos = schema
                .position(c.table_slot, c.column_idx)
                .ok_or(EvalError::MissingColumn {
                    table_slot: c.table_slot,
                    column_idx: c.column_idx,
                })?;
            Ok(row[pos].clone())
        }
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Binary { left, op, right } => {
            let l = eval(left, schema, row)?;
            let r = eval(right, schema, row)?;
            eval_binary(&l, *op, &r)
        }
        BoundExpr::Not(inner) => {
            let v = eval(inner, schema, row)?;
            Ok(Value::Int(if truthy(&v) { 0 } else { 1 }))
        }
        BoundExpr::InList { expr, list, negated } => {
            let v = eval(expr, schema, row)?;
            let found = list.iter().any(|item| v.sql_eq(item));
            Ok(bool_val(found != *negated && !(v.is_null())))
        }
        BoundExpr::Between { expr, low, high } => {
            let v = eval(expr, schema, row)?;
            let lo = eval(low, schema, row)?;
            let hi = eval(high, schema, row)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(bool_val(false));
            }
            let ge = v.total_cmp(&lo) != std::cmp::Ordering::Less;
            let le = v.total_cmp(&hi) != std::cmp::Ordering::Greater;
            Ok(bool_val(ge && le))
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let v = eval(expr, schema, row)?;
            match v.as_str() {
                Some(s) => Ok(bool_val(like_match(s, pattern) != *negated)),
                None => Ok(bool_val(false)),
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row)?;
            Ok(bool_val(v.is_null() != *negated))
        }
        BoundExpr::Substring { expr, start, len } => {
            let v = eval(expr, schema, row)?;
            match v {
                Value::Str(s) => {
                    let chars: Vec<char> = s.chars().collect();
                    let from = (*start as usize).saturating_sub(1).min(chars.len());
                    let to = (from + *len as usize).min(chars.len());
                    Ok(Value::Str(chars[from..to].iter().collect()))
                }
                Value::Null => Ok(Value::Null),
                other => Err(EvalError::Type(format!(
                    "SUBSTRING expects a string, got {other}"
                ))),
            }
        }
        BoundExpr::Aggregate { .. } => Err(EvalError::AggregateInScalarContext),
    }
}

/// Evaluates a predicate to a boolean.
pub fn eval_predicate(expr: &BoundExpr, schema: &Schema, row: &[Value]) -> Result<bool, EvalError> {
    Ok(truthy(&eval(expr, schema, row)?))
}

fn bool_val(b: bool) -> Value {
    Value::Int(if b { 1 } else { 0 })
}

/// SQL truthiness of an evaluated value.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Int(x) => *x != 0,
        Value::Float(x) => *x != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Date(_) => true,
    }
}

fn eval_binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value, EvalError> {
    use BinaryOp::*;
    match op {
        And => Ok(bool_val(truthy(l) && truthy(r))),
        Or => Ok(bool_val(truthy(l) || truthy(r))),
        Eq => Ok(bool_val(l.sql_eq(r))),
        NotEq => Ok(bool_val(!l.sql_eq(r) && !l.is_null() && !r.is_null())),
        Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(bool_val(false));
            }
            let ord = l.total_cmp(r);
            let b = match op {
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(bool_val(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a / b)
                        }
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let (a, b) = match (l.as_float(), r.as_float()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(EvalError::Type(format!(
                                "arithmetic on non-numeric values {l} {op} {r}"
                            )))
                        }
                    };
                    Ok(match op {
                        Add => Value::Float(a + b),
                        Sub => Value::Float(a - b),
                        Mul => Value::Float(a * b),
                        Div => {
                            if b == 0.0 {
                                Value::Null
                            } else {
                                Value::Float(a / b)
                            }
                        }
                        _ => unreachable!(),
                    })
                }
            }
        }
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (single char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // try consuming 0..=len chars
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::binder::{Binder, BoundQuery};
    use qpe_sql::catalog::{ColumnDef, DataType, MemoryCatalog, TableDef};

    fn bind(sql: &str) -> BoundQuery {
        let mut cat = MemoryCatalog::new();
        cat.add_table(TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "a".into(), data_type: DataType::Int, ndv: 10 },
                ColumnDef { name: "s".into(), data_type: DataType::Str, ndv: 10 },
                ColumnDef { name: "f".into(), data_type: DataType::Float, ndv: 10 },
            ],
            row_count: 10,
            indexed_columns: vec![],
            primary_key: "a".into(),
        });
        Binder::new(&cat).bind_sql(sql).unwrap()
    }

    fn schema() -> Schema {
        Schema::new(vec![(0, 0), (0, 1), (0, 2)])
    }

    fn row(a: i64, s: &str, f: f64) -> Vec<Value> {
        vec![Value::Int(a), Value::Str(s.into()), Value::Float(f)]
    }

    fn check(sql_where: &str, r: &[Value]) -> bool {
        let q = bind(&format!("SELECT * FROM t WHERE {sql_where}"));
        let pred = &q.filters[0].expr;
        eval_predicate(pred, &schema(), r).unwrap()
    }

    #[test]
    fn comparison_predicates() {
        assert!(check("a = 5", &row(5, "x", 0.0)));
        assert!(!check("a = 5", &row(6, "x", 0.0)));
        assert!(check("a < 5", &row(4, "x", 0.0)));
        assert!(check("a >= 5", &row(5, "x", 0.0)));
        assert!(check("a <> 5", &row(4, "x", 0.0)));
    }

    #[test]
    fn numeric_widening_in_comparisons() {
        assert!(check("f > 1", &row(0, "x", 1.5)));
        assert!(check("a < 1.5", &row(1, "x", 0.0)));
    }

    #[test]
    fn in_list_and_negation() {
        assert!(check("a IN (1, 5, 9)", &row(5, "x", 0.0)));
        assert!(!check("a IN (1, 5, 9)", &row(4, "x", 0.0)));
        assert!(check("a NOT IN (1, 5, 9)", &row(4, "x", 0.0)));
    }

    #[test]
    fn substring_semantics_one_based() {
        assert!(check("SUBSTRING(s, 1, 2) = 'he'", &row(0, "hello", 0.0)));
        assert!(check("SUBSTRING(s, 2, 3) = 'ell'", &row(0, "hello", 0.0)));
        // start past end yields empty string
        assert!(check("SUBSTRING(s, 9, 2) = ''", &row(0, "hello", 0.0)));
        // len clipped at end
        assert!(check("SUBSTRING(s, 4, 100) = 'lo'", &row(0, "hello", 0.0)));
    }

    #[test]
    fn paper_example1_phone_prefix_predicate() {
        assert!(check(
            "SUBSTRING(s, 1, 2) IN ('20', '40', '22')",
            &row(0, "20-123-456-7890", 0.0)
        ));
        assert!(!check(
            "SUBSTRING(s, 1, 2) IN ('20', '40', '22')",
            &row(0, "33-123-456-7890", 0.0)
        ));
    }

    #[test]
    fn between_inclusive() {
        assert!(check("a BETWEEN 3 AND 5", &row(3, "x", 0.0)));
        assert!(check("a BETWEEN 3 AND 5", &row(5, "x", 0.0)));
        assert!(!check("a BETWEEN 3 AND 5", &row(6, "x", 0.0)));
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("hello world", "hello%"));
        assert!(like_match("hello world", "%world"));
        assert!(like_match("hello world", "%lo wo%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
        assert!(check("s LIKE '%ell%'", &row(0, "hello", 0.0)));
        assert!(check("s NOT LIKE '%zzz%'", &row(0, "hello", 0.0)));
    }

    #[test]
    fn and_or_not() {
        assert!(check("a = 1 OR a = 2", &row(2, "x", 0.0)));
        assert!(!check("NOT (a = 2)", &row(2, "x", 0.0)));
    }

    #[test]
    fn null_comparisons_are_false() {
        let q = bind("SELECT * FROM t WHERE a = 5");
        let pred = &q.filters[0].expr;
        let r = vec![Value::Null, Value::Null, Value::Null];
        assert!(!eval_predicate(pred, &schema(), &r).unwrap());
    }

    #[test]
    fn is_null_tests() {
        let r = vec![Value::Null, Value::Str("x".into()), Value::Float(0.0)];
        assert!(check("a IS NULL", &r));
        assert!(check("s IS NOT NULL", &r));
    }

    #[test]
    fn arithmetic() {
        assert!(check("a + 1 = 6", &row(5, "x", 0.0)));
        assert!(check("a * 2 = 10", &row(5, "x", 0.0)));
        assert!(check("f / 2 = 0.75", &row(0, "x", 1.5)));
        // integer division
        assert!(check("a / 2 = 2", &row(5, "x", 0.0)));
    }

    #[test]
    fn division_by_zero_yields_null_predicate_false() {
        assert!(!check("a / 0 = 1", &row(5, "x", 0.0)));
    }

    #[test]
    fn missing_column_is_error() {
        let q = bind("SELECT * FROM t WHERE a = 1");
        let pred = &q.filters[0].expr;
        let bad_schema = Schema::new(vec![(0, 1)]);
        let r = vec![Value::Str("x".into())];
        assert!(matches!(
            eval_predicate(pred, &bad_schema, &r),
            Err(EvalError::MissingColumn { .. })
        ));
    }

    #[test]
    fn schema_concat_and_position() {
        let a = Schema::new(vec![(0, 0), (0, 1)]);
        let b = Schema::new(vec![(1, 0)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.position(1, 0), Some(2));
        assert_eq!(c.position(2, 0), None);
        assert!(!c.is_empty());
    }
}
