//! Expression evaluation over intermediate rows and over column batches.
//!
//! Both engines share these semantics — the paper's two engines differ in
//! *how* they execute plans, not in what a predicate means — so result
//! equivalence between TP and AP is testable as an invariant. The scalar
//! entry points ([`eval`], [`eval_predicate`]) serve the row interpreter;
//! the batch entry points ([`eval_batch`], [`eval_predicate_mask`]) serve
//! the AP engine's vectorized executor and evaluate column-at-a-time over
//! typed slices with per-element [`Cell`] views (no `Value` boxing on the
//! hot comparison kernels). The batch kernels are element-wise ports of the
//! scalar semantics, so both executors produce identical results.

use crate::storage::col_store::{ColRef, ColumnData, RleRuns};
use qpe_sql::ast::BinaryOp;
use qpe_sql::binder::BoundExpr;
use qpe_sql::value::Value;

/// The schema of an intermediate row: which `(table_slot, column_idx)` pair
/// each position holds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    cols: Vec<(usize, usize)>,
}

impl Schema {
    /// Creates a schema from `(table_slot, column_idx)` pairs.
    pub fn new(cols: Vec<(usize, usize)>) -> Self {
        Schema { cols }
    }

    /// Position of a bound column in the row, if present.
    pub fn position(&self, table_slot: usize, column_idx: usize) -> Option<usize> {
        self.cols
            .iter()
            .position(|&(s, c)| s == table_slot && c == column_idx)
    }

    /// Concatenates two schemas (join output layout).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        cols.extend_from_slice(&other.cols);
        Schema { cols }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The underlying pairs.
    pub fn columns(&self) -> &[(usize, usize)] {
        &self.cols
    }
}

/// Errors during evaluation — should not occur for bound queries over
/// generated data, but the executor surfaces them rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A column was not found in the row schema (planner bug).
    MissingColumn {
        /// Table slot requested.
        table_slot: usize,
        /// Column index requested.
        column_idx: usize,
    },
    /// A type error, e.g. arithmetic on strings.
    Type(String),
    /// An aggregate reached the scalar evaluator.
    AggregateInScalarContext,
    /// A prepared-statement parameter reached execution without being
    /// substituted (session-layer bug — `PlanNode::substitute_params` runs
    /// before any executor sees the plan).
    UnboundParam(usize),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::MissingColumn { table_slot, column_idx } => {
                write!(f, "column (slot {table_slot}, idx {column_idx}) missing from row schema")
            }
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::AggregateInScalarContext => {
                write!(f, "aggregate evaluated in scalar context")
            }
            EvalError::UnboundParam(idx) => {
                write!(f, "parameter ${} reached execution unbound", idx + 1)
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `expr` against `row` laid out by `schema`.
pub fn eval(expr: &BoundExpr, schema: &Schema, row: &[Value]) -> Result<Value, EvalError> {
    match expr {
        BoundExpr::Column(c) => {
            let pos = schema
                .position(c.table_slot, c.column_idx)
                .ok_or(EvalError::MissingColumn {
                    table_slot: c.table_slot,
                    column_idx: c.column_idx,
                })?;
            Ok(row[pos].clone())
        }
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Binary { left, op, right } => {
            let l = eval(left, schema, row)?;
            let r = eval(right, schema, row)?;
            eval_binary(&l, *op, &r)
        }
        BoundExpr::Not(inner) => {
            let v = eval(inner, schema, row)?;
            Ok(Value::Int(if truthy(&v) { 0 } else { 1 }))
        }
        BoundExpr::InList { expr, list, negated } => {
            let v = eval(expr, schema, row)?;
            let found = list.iter().any(|item| v.sql_eq(item));
            Ok(bool_val(found != *negated && !(v.is_null())))
        }
        // Parameterized IN lists are lowered to `InList` by parameter
        // substitution before execution; reaching one here means a
        // placeholder was never bound.
        BoundExpr::InListParam { items, .. } => {
            Err(EvalError::UnboundParam(first_param_idx(items)))
        }
        BoundExpr::Between { expr, low, high } => {
            let v = eval(expr, schema, row)?;
            let lo = eval(low, schema, row)?;
            let hi = eval(high, schema, row)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(bool_val(false));
            }
            let ge = v.total_cmp(&lo) != std::cmp::Ordering::Less;
            let le = v.total_cmp(&hi) != std::cmp::Ordering::Greater;
            Ok(bool_val(ge && le))
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let v = eval(expr, schema, row)?;
            match v.as_str() {
                Some(s) => Ok(bool_val(like_match(s, pattern) != *negated)),
                None => Ok(bool_val(false)),
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row)?;
            Ok(bool_val(v.is_null() != *negated))
        }
        BoundExpr::Substring { expr, start, len } => {
            let v = eval(expr, schema, row)?;
            match v {
                Value::Str(s) => {
                    let chars: Vec<char> = s.chars().collect();
                    let from = (*start as usize).saturating_sub(1).min(chars.len());
                    let to = (from + *len as usize).min(chars.len());
                    Ok(Value::Str(chars[from..to].iter().collect()))
                }
                Value::Null => Ok(Value::Null),
                other => Err(EvalError::Type(format!(
                    "SUBSTRING expects a string, got {other}"
                ))),
            }
        }
        BoundExpr::Aggregate { .. } => Err(EvalError::AggregateInScalarContext),
        BoundExpr::Param { idx, .. } => Err(EvalError::UnboundParam(*idx)),
    }
}

/// Evaluates a predicate to a boolean.
pub fn eval_predicate(expr: &BoundExpr, schema: &Schema, row: &[Value]) -> Result<bool, EvalError> {
    Ok(truthy(&eval(expr, schema, row)?))
}

fn bool_val(b: bool) -> Value {
    Value::Int(if b { 1 } else { 0 })
}

/// SQL truthiness of an evaluated value.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Int(x) => *x != 0,
        Value::Float(x) => *x != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Date(_) => true,
    }
}

fn eval_binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value, EvalError> {
    use BinaryOp::*;
    match op {
        And => Ok(bool_val(truthy(l) && truthy(r))),
        Or => Ok(bool_val(truthy(l) || truthy(r))),
        Eq => Ok(bool_val(l.sql_eq(r))),
        NotEq => Ok(bool_val(!l.sql_eq(r) && !l.is_null() && !r.is_null())),
        Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(bool_val(false));
            }
            let ord = l.total_cmp(r);
            let b = match op {
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(bool_val(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a / b)
                        }
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let (a, b) = match (l.as_float(), r.as_float()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(EvalError::Type(format!(
                                "arithmetic on non-numeric values {l} {op} {r}"
                            )))
                        }
                    };
                    Ok(match op {
                        Add => Value::Float(a + b),
                        Sub => Value::Float(a - b),
                        Mul => Value::Float(a * b),
                        Div => {
                            if b == 0.0 {
                                Value::Null
                            } else {
                                Value::Float(a / b)
                            }
                        }
                        _ => unreachable!(),
                    })
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Batch (vectorized) evaluation
// ---------------------------------------------------------------------------

/// Column-major view of an operator's input: one typed column view per
/// schema position (a `None` marks a column dropped by late materialization
/// — legal only when no evaluated expression references it) plus an optional
/// selection vector of physical row indices. Columns are [`ColRef`]s, so a
/// delta-aware scan's base+delta segments flow through the same kernels as a
/// contiguous column — per-element access costs one extra segment branch.
pub struct BatchView<'a> {
    /// Columns aligned with the operator's [`Schema`] positions.
    pub cols: &'a [Option<ColRef<'a>>],
    /// Selected physical rows, in output order; `None` means all rows.
    pub sel: Option<&'a [u32]>,
    /// Physical row count of the columns.
    pub rows: usize,
}

impl<'a> BatchView<'a> {
    /// Number of selected rows (the dense output length).
    pub fn selected_len(&self) -> usize {
        self.sel.map(|s| s.len()).unwrap_or(self.rows)
    }

    /// Physical index of dense position `j`.
    #[inline]
    pub fn phys(&self, j: usize) -> usize {
        match self.sel {
            Some(s) => s[j] as usize,
            None => j,
        }
    }

    fn col(&self, pos: usize) -> Result<ColRef<'a>, EvalError> {
        self.cols
            .get(pos)
            .and_then(|c| *c)
            .ok_or(EvalError::MissingColumn { table_slot: usize::MAX, column_idx: pos })
    }
}

/// Borrowed scalar view of one cell — the zero-allocation counterpart of
/// [`Value`] used by the batch kernels.
#[derive(Clone, Copy, Debug)]
enum Cell<'a> {
    Null,
    Int(i64),
    Float(f64),
    Str(&'a str),
    Date(i32),
}

impl<'a> Cell<'a> {
    #[inline]
    fn from_col(col: &'a ColumnData, idx: usize) -> Cell<'a> {
        match col {
            ColumnData::Int(v) => Cell::Int(v[idx]),
            ColumnData::Float(v) => Cell::Float(v[idx]),
            ColumnData::Str(v) => Cell::Str(&v[idx]),
            ColumnData::Date(v) => Cell::Date(v[idx]),
            // Encoded columns stay zero-copy: a dictionary cell borrows the
            // dictionary's string, RLE cells decode a fixed-width value.
            ColumnData::Dict(d) => Cell::Str(d.get(idx)),
            ColumnData::RleInt(r) => Cell::Int(r.get(idx)),
            ColumnData::RleDate(r) => Cell::Date(r.get(idx)),
            ColumnData::ForInt(f) => Cell::Int(f.get(idx)),
            ColumnData::Nullable { nulls, values } => {
                if nulls[idx] {
                    Cell::Null
                } else {
                    Cell::from_col(values, idx)
                }
            }
            ColumnData::Mixed(v) => Cell::from_value(&v[idx]),
        }
    }

    /// Cross-segment cell read: one branch to pick the segment, then the
    /// same zero-allocation access as [`Cell::from_col`].
    #[inline]
    fn from_ref(col: ColRef<'a>, idx: usize) -> Cell<'a> {
        match col {
            ColRef::Single(c) => Cell::from_col(c, idx),
            ColRef::Chunked { base, delta } => {
                let split = base.len();
                if idx < split {
                    Cell::from_col(base, idx)
                } else {
                    Cell::from_col(delta, idx - split)
                }
            }
        }
    }

    #[inline]
    fn from_value(v: &'a Value) -> Cell<'a> {
        match v {
            Value::Null => Cell::Null,
            Value::Int(x) => Cell::Int(*x),
            Value::Float(x) => Cell::Float(*x),
            Value::Str(s) => Cell::Str(s),
            Value::Date(d) => Cell::Date(*d),
        }
    }

    fn to_value(self) -> Value {
        match self {
            Cell::Null => Value::Null,
            Cell::Int(x) => Value::Int(x),
            Cell::Float(x) => Value::Float(x),
            Cell::Str(s) => Value::Str(s.to_string()),
            Cell::Date(d) => Value::Date(d),
        }
    }

    #[inline]
    fn is_null(self) -> bool {
        matches!(self, Cell::Null)
    }

    #[inline]
    fn as_float(self) -> Option<f64> {
        match self {
            Cell::Float(v) => Some(v),
            Cell::Int(v) => Some(v as f64),
            Cell::Date(v) => Some(v as f64),
            _ => None,
        }
    }

    fn type_rank(self) -> u8 {
        match self {
            Cell::Null => 0,
            Cell::Int(_) => 1,
            Cell::Float(_) => 2,
            Cell::Date(_) => 3,
            Cell::Str(_) => 4,
        }
    }
}

/// Element-wise port of [`Value::total_cmp`].
#[inline]
fn cell_total_cmp(a: Cell<'_>, b: Cell<'_>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Cell::Null, Cell::Null) => Ordering::Equal,
        (Cell::Null, _) => Ordering::Less,
        (_, Cell::Null) => Ordering::Greater,
        (Cell::Int(x), Cell::Int(y)) => x.cmp(&y),
        (Cell::Date(x), Cell::Date(y)) => x.cmp(&y),
        (Cell::Str(x), Cell::Str(y)) => x.cmp(y),
        (x, y) => match (x.as_float(), y.as_float()) {
            (Some(u), Some(v)) => u.total_cmp(&v),
            _ => x.type_rank().cmp(&y.type_rank()),
        },
    }
}

/// Element-wise port of [`Value::sql_eq`].
#[inline]
fn cell_sql_eq(a: Cell<'_>, b: Cell<'_>) -> bool {
    match (a, b) {
        (Cell::Null, _) | (_, Cell::Null) => false,
        (Cell::Int(x), Cell::Int(y)) => x == y,
        (Cell::Date(x), Cell::Date(y)) => x == y,
        (Cell::Str(x), Cell::Str(y)) => x == y,
        (x, y) => match (x.as_float(), y.as_float()) {
            (Some(u), Some(v)) => u == v,
            _ => false,
        },
    }
}

/// Element-wise port of [`truthy`].
#[inline]
fn cell_truthy(c: Cell<'_>) -> bool {
    match c {
        Cell::Null => false,
        Cell::Int(x) => x != 0,
        Cell::Float(x) => x != 0.0,
        Cell::Str(s) => !s.is_empty(),
        Cell::Date(_) => true,
    }
}

/// Element-wise port of the scalar SUBSTRING semantics (1-based char start,
/// char-count length, clipped at both ends) — without allocating.
#[inline]
fn substring_slice(s: &str, start: i64, len: i64) -> &str {
    let n_chars = s.chars().count();
    let from = (start as usize).saturating_sub(1).min(n_chars);
    let to = (from + len as usize).min(n_chars);
    let mut idx = s.char_indices().skip(from);
    let Some((byte_from, _)) = idx.next() else {
        return "";
    };
    match s.char_indices().nth(to.saturating_sub(1)) {
        Some((byte_to, c)) if to > from => &s[byte_from..byte_to + c.len_utf8()],
        _ => "",
    }
}

/// One operand of a batch kernel: a physical column (read through the
/// selection), a dense computed column (aligned with the selection), or a
/// broadcast literal.
enum Operand<'a> {
    /// Contiguous physical column — the clean-table fast path (no
    /// per-element segment branch).
    Col(&'a ColumnData),
    /// Two-segment physical column from a dirty table's delta-aware scan.
    Chunked(ColRef<'a>),
    Dense(ColumnData),
    Lit(&'a Value),
}

impl Operand<'_> {
    /// Cell at dense position `j` (with `phys` its physical counterpart).
    #[inline]
    fn cell(&self, j: usize, phys: usize) -> Cell<'_> {
        match self {
            Operand::Col(c) => Cell::from_col(c, phys),
            Operand::Chunked(c) => Cell::from_ref(*c, phys),
            Operand::Dense(c) => Cell::from_col(c, j),
            Operand::Lit(v) => Cell::from_value(v),
        }
    }
}

fn operand_of<'a>(
    expr: &'a BoundExpr,
    schema: &Schema,
    view: &BatchView<'a>,
) -> Result<Operand<'a>, EvalError> {
    match expr {
        BoundExpr::Column(c) => {
            let pos = schema
                .position(c.table_slot, c.column_idx)
                .ok_or(EvalError::MissingColumn {
                    table_slot: c.table_slot,
                    column_idx: c.column_idx,
                })?;
            // The segment dispatch hoists out of the per-element loop here:
            // single-segment columns evaluate exactly as before the delta
            // store existed.
            Ok(match view.col(pos)? {
                ColRef::Single(col) => Operand::Col(col),
                chunked => Operand::Chunked(chunked),
            })
        }
        BoundExpr::Literal(v) => Ok(Operand::Lit(v)),
        other => Ok(Operand::Dense(eval_batch(other, schema, view)?)),
    }
}

/// Growable dense column for computed outputs. Stays typed as long as the
/// values agree: NULLs grow a lazily-allocated null mask over the typed
/// buffer (finishing as [`ColumnData::Nullable`], the same typed+mask shape
/// storage uses) instead of demoting the whole column to `Mixed` — only a
/// genuine type conflict falls back to generic values. This keeps
/// NULL-bearing computed columns (e.g. arithmetic over a nullable input) on
/// the vectorized fast path downstream.
enum ColBuilder {
    /// No non-NULL value seen yet; carries the capacity to pre-reserve on
    /// the first typed push and the count of leading NULLs to backfill.
    Empty {
        /// Capacity hint for the first typed allocation.
        cap: usize,
        /// NULLs pushed before any typed value arrived.
        nulls: usize,
    },
    /// Typed values with an optional null mask (allocated on first NULL;
    /// masked positions hold the type's sentinel, like storage's
    /// `Nullable`).
    Typed {
        /// Per-row NULL flags, present once any NULL has been pushed.
        nulls: Option<Vec<bool>>,
        /// The dense typed buffer.
        buf: TypedBuf,
    },
    /// Genuinely heterogeneous (or all-NULL) column.
    Mixed(Vec<Value>),
}

/// The four plain typed buffers a [`ColBuilder`] can hold.
enum TypedBuf {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Date(Vec<i32>),
}

impl TypedBuf {
    fn seeded(cap: usize, nulls: usize, first: Value) -> Option<TypedBuf> {
        fn seed<T: Clone>(cap: usize, nulls: usize, sentinel: T, first: T) -> Vec<T> {
            let mut buf = Vec::with_capacity(cap.max(nulls + 1));
            buf.extend(std::iter::repeat_n(sentinel, nulls));
            buf.push(first);
            buf
        }
        Some(match first {
            Value::Int(x) => TypedBuf::Int(seed(cap, nulls, 0, x)),
            Value::Float(x) => TypedBuf::Float(seed(cap, nulls, 0.0, x)),
            Value::Str(s) => TypedBuf::Str(seed(cap, nulls, String::new(), s)),
            Value::Date(d) => TypedBuf::Date(seed(cap, nulls, 0, d)),
            Value::Null => return None,
        })
    }

    fn len(&self) -> usize {
        match self {
            TypedBuf::Int(b) => b.len(),
            TypedBuf::Float(b) => b.len(),
            TypedBuf::Str(b) => b.len(),
            TypedBuf::Date(b) => b.len(),
        }
    }

    /// Pushes a matching value; false on a type mismatch (caller demotes).
    fn try_push(&mut self, v: &mut Option<Value>) -> bool {
        match (self, v.take().expect("value present")) {
            (TypedBuf::Int(b), Value::Int(x)) => b.push(x),
            (TypedBuf::Float(b), Value::Float(x)) => b.push(x),
            (TypedBuf::Str(b), Value::Str(s)) => b.push(s),
            (TypedBuf::Date(b), Value::Date(d)) => b.push(d),
            (_, other) => {
                *v = Some(other);
                return false;
            }
        }
        true
    }

    /// Pushes the type's NULL sentinel (masked by the null vector).
    fn push_sentinel(&mut self) {
        match self {
            TypedBuf::Int(b) => b.push(0),
            TypedBuf::Float(b) => b.push(0.0),
            TypedBuf::Str(b) => b.push(String::new()),
            TypedBuf::Date(b) => b.push(0),
        }
    }

    fn into_column(self) -> ColumnData {
        match self {
            TypedBuf::Int(b) => ColumnData::Int(b),
            TypedBuf::Float(b) => ColumnData::Float(b),
            TypedBuf::Str(b) => ColumnData::Str(b),
            TypedBuf::Date(b) => ColumnData::Date(b),
        }
    }
}

impl ColBuilder {
    fn with_capacity(n: usize) -> Self {
        ColBuilder::Empty { cap: n, nulls: 0 }
    }

    fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColBuilder::Empty { nulls, .. }, Value::Null) => *nulls += 1,
            (ColBuilder::Empty { cap, nulls }, v) => {
                let (cap, leading) = (*cap, *nulls);
                let buf = TypedBuf::seeded(cap, leading, v).expect("non-null first value");
                let nulls = (leading > 0).then(|| {
                    let mut mask = Vec::with_capacity(cap.max(leading + 1));
                    mask.extend(std::iter::repeat_n(true, leading));
                    mask.push(false);
                    mask
                });
                *self = ColBuilder::Typed { nulls, buf };
            }
            (ColBuilder::Typed { nulls, buf }, Value::Null) => {
                nulls
                    .get_or_insert_with(|| vec![false; buf.len()])
                    .push(true);
                buf.push_sentinel();
            }
            (ColBuilder::Typed { nulls, buf }, v) => {
                let mut slot = Some(v);
                if buf.try_push(&mut slot) {
                    if let Some(mask) = nulls {
                        mask.push(false);
                    }
                } else {
                    self.demote();
                    self.push(slot.expect("mismatched value returned"));
                }
            }
            (ColBuilder::Mixed(buf), v) => buf.push(v),
        }
    }

    /// Genuine type conflict: fall back to generic values (NULLs included).
    #[cold]
    fn demote(&mut self) {
        let col = std::mem::replace(self, ColBuilder::Mixed(Vec::new())).finish();
        let values: Vec<Value> = (0..col.len()).map(|i| col.get(i)).collect();
        *self = ColBuilder::Mixed(values);
    }

    fn finish(self) -> ColumnData {
        match self {
            // All-NULL (or empty) columns have no type to anchor a mask to —
            // same generic representation storage's `from_values` picks.
            ColBuilder::Empty { nulls, .. } => ColumnData::Mixed(vec![Value::Null; nulls]),
            ColBuilder::Typed { nulls: None, buf } => buf.into_column(),
            ColBuilder::Typed { nulls: Some(mask), buf } => ColumnData::Nullable {
                nulls: mask,
                values: Box::new(buf.into_column()),
            },
            ColBuilder::Mixed(buf) => ColumnData::Mixed(buf),
        }
    }
}

/// Batch predicate entry point: evaluates `expr` for every selected row of
/// `view`, writing one truthiness flag per dense position into `mask`
/// (cleared first). Element-for-element equivalent to calling
/// [`eval_predicate`] on materialized rows.
pub fn eval_predicate_mask(
    expr: &BoundExpr,
    schema: &Schema,
    view: &BatchView<'_>,
    mask: &mut Vec<bool>,
) -> Result<(), EvalError> {
    mask.clear();
    pred_mask(expr, schema, view, mask)
}

fn pred_mask(
    expr: &BoundExpr,
    schema: &Schema,
    view: &BatchView<'_>,
    out: &mut Vec<bool>,
) -> Result<(), EvalError> {
    let n = view.selected_len();
    match expr {
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            pred_mask(left, schema, view, out)?;
            let mut rhs = Vec::with_capacity(n);
            pred_mask(right, schema, view, &mut rhs)?;
            for (l, r) in out.iter_mut().zip(rhs) {
                *l = *l && r;
            }
        }
        BoundExpr::Binary { left, op: BinaryOp::Or, right } => {
            pred_mask(left, schema, view, out)?;
            let mut rhs = Vec::with_capacity(n);
            pred_mask(right, schema, view, &mut rhs)?;
            for (l, r) in out.iter_mut().zip(rhs) {
                *l = *l || r;
            }
        }
        BoundExpr::Not(inner) => {
            pred_mask(inner, schema, view, out)?;
            for b in out.iter_mut() {
                *b = !*b;
            }
        }
        BoundExpr::Binary { left, op, right }
            if matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::NotEq
                    | BinaryOp::Lt
                    | BinaryOp::LtEq
                    | BinaryOp::Gt
                    | BinaryOp::GtEq
            ) =>
        {
            let l = operand_of(left, schema, view)?;
            let r = operand_of(right, schema, view)?;
            out.reserve(n);
            if cmp_fast_mask(&l, *op, &r, view, out) {
                return Ok(());
            }
            for j in 0..n {
                let phys = view.phys(j);
                let (a, b) = (l.cell(j, phys), r.cell(j, phys));
                out.push(cmp_cells(a, *op, b));
            }
        }
        BoundExpr::InList { expr: inner, list, negated } => {
            let v = operand_of(inner, schema, view)?;
            out.reserve(n);
            // Dictionary fast path: translate the literal list to codes once
            // and test u32 membership per row — no string comparisons.
            if let Operand::Col(ColumnData::Dict(d)) = &v {
                let mut member = vec![false; d.values.len()];
                for item in list {
                    if let Value::Str(s) = item {
                        if let Some(code) = d.code_of(s) {
                            member[code as usize] = true;
                        }
                    }
                    // Non-string (and NULL) items never sql_eq a dict string.
                }
                for j in 0..n {
                    let code = d.codes[view.phys(j)] as usize;
                    // Dictionary cells are never NULL, so truthiness reduces
                    // to membership XOR negation — same as the generic path.
                    out.push(member[code] != *negated);
                }
                return Ok(());
            }
            for j in 0..n {
                let c = v.cell(j, view.phys(j));
                let found = list.iter().any(|item| cell_sql_eq(c, Cell::from_value(item)));
                out.push(found != *negated && !c.is_null());
            }
        }
        BoundExpr::Between { expr: inner, low, high } => {
            let v = operand_of(inner, schema, view)?;
            let lo = operand_of(low, schema, view)?;
            let hi = operand_of(high, schema, view)?;
            out.reserve(n);
            // `x BETWEEN lo AND hi` with literal bounds of the column's own
            // type decomposes into `x >= lo AND x <= hi`, so the run- and
            // block-aware comparison kernels can decide whole runs and FOR
            // envelopes instead of materializing every row. Same-typed
            // operands make `cmp_cells` agree with this arm's total order,
            // and these encodings never hold NULLs, so the conjunction is
            // exact. Mixed-type bounds keep the generic loop below.
            let typed_lits = matches!(
                (&v, &lo, &hi),
                (
                    Operand::Col(ColumnData::ForInt(_) | ColumnData::RleInt(_)),
                    Operand::Lit(Value::Int(_)),
                    Operand::Lit(Value::Int(_)),
                ) | (
                    Operand::Col(ColumnData::RleDate(_)),
                    Operand::Lit(Value::Date(_)),
                    Operand::Lit(Value::Date(_)),
                )
            );
            if typed_lits && cmp_fast_mask(&v, BinaryOp::GtEq, &lo, view, out) {
                let mut upper = Vec::with_capacity(n);
                let hit = cmp_fast_mask(&v, BinaryOp::LtEq, &hi, view, &mut upper);
                debug_assert!(hit, "a kernel that took the lower bound takes the upper");
                for (m, u) in out.iter_mut().zip(upper) {
                    *m = *m && u;
                }
                return Ok(());
            }
            for j in 0..n {
                let phys = view.phys(j);
                let (c, l, h) = (v.cell(j, phys), lo.cell(j, phys), hi.cell(j, phys));
                if c.is_null() || l.is_null() || h.is_null() {
                    out.push(false);
                    continue;
                }
                let ge = cell_total_cmp(c, l) != std::cmp::Ordering::Less;
                let le = cell_total_cmp(c, h) != std::cmp::Ordering::Greater;
                out.push(ge && le);
            }
        }
        BoundExpr::Like { expr: inner, pattern, negated } => {
            let v = operand_of(inner, schema, view)?;
            out.reserve(n);
            for j in 0..n {
                match v.cell(j, view.phys(j)) {
                    Cell::Str(s) => out.push(like_match(s, pattern) != *negated),
                    _ => out.push(false),
                }
            }
        }
        BoundExpr::IsNull { expr: inner, negated } => {
            let v = operand_of(inner, schema, view)?;
            out.reserve(n);
            for j in 0..n {
                out.push(v.cell(j, view.phys(j)).is_null() != *negated);
            }
        }
        other => {
            // Generic truthiness of a computed column.
            let col = eval_batch(other, schema, view)?;
            out.reserve(n);
            for j in 0..n {
                out.push(cell_truthy(Cell::from_col(&col, j)));
            }
        }
    }
    Ok(())
}

/// Dictionary fast path for `=` / `<>` against a literal: the literal is
/// translated to a code once and every row compares `u32` codes — no string
/// materialization. Returns true when the mask was fully written. Semantics
/// mirror the generic path exactly: dictionary cells are never NULL, a
/// missing or non-string literal can never `sql_eq` a dictionary string,
/// and a NULL literal makes both operators false.
fn dict_eq_mask(
    l: &Operand<'_>,
    op: BinaryOp,
    r: &Operand<'_>,
    view: &BatchView<'_>,
    out: &mut Vec<bool>,
) -> bool {
    if !matches!(op, BinaryOp::Eq | BinaryOp::NotEq) {
        // Orderings depend on string order, which code order does not mirror
        // (codes are first-appearance); the generic kernel handles them.
        return false;
    }
    let (d, lit) = match (l, r) {
        (Operand::Col(ColumnData::Dict(d)), Operand::Lit(v)) => (d, *v),
        (Operand::Lit(v), Operand::Col(ColumnData::Dict(d))) => (d, *v),
        _ => return false,
    };
    let n = view.selected_len();
    match lit {
        Value::Null => out.extend(std::iter::repeat_n(false, n)),
        Value::Str(s) => match d.code_of(s) {
            Some(code) => {
                let eq = op == BinaryOp::Eq;
                for j in 0..n {
                    out.push((d.codes[view.phys(j)] == code) == eq);
                }
            }
            // Absent string: no row is equal, every row is not-equal.
            None => out.extend(std::iter::repeat_n(op == BinaryOp::NotEq, n)),
        },
        // Non-string, non-NULL literal: never equal to a string cell.
        _ => out.extend(std::iter::repeat_n(op == BinaryOp::NotEq, n)),
    }
    true
}

/// Dispatch a comparison to whichever compressed-column kernel matches the
/// operand shapes (dictionary codes, RLE runs, FOR blocks). Returns true
/// when a kernel wrote the whole mask; false leaves `out` untouched for the
/// generic per-row loop.
fn cmp_fast_mask(
    l: &Operand<'_>,
    op: BinaryOp,
    r: &Operand<'_>,
    view: &BatchView<'_>,
    out: &mut Vec<bool>,
) -> bool {
    dict_eq_mask(l, op, r, view, out)
        || rle_cmp_mask(l, op, r, view, out)
        || for_cmp_mask(l, op, r, view, out)
}

/// Mirror image of a comparison operator, so `lit op col` can be evaluated
/// as `col flip(op) lit` with the column normalized to the left.
fn flip_cmp(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other, // Eq / NotEq are symmetric
    }
}

/// Run-aware fast path for comparisons between an RLE column and a literal:
/// the predicate is decided once per *run* through the same [`cmp_cells`]
/// kernel the generic path uses, then expanded across the run (dense scans)
/// or looked up per selected row — instead of decoding and comparing every
/// row. Result-identical by construction; only the work per row changes.
fn rle_cmp_mask(
    l: &Operand<'_>,
    op: BinaryOp,
    r: &Operand<'_>,
    view: &BatchView<'_>,
    out: &mut Vec<bool>,
) -> bool {
    enum Runs<'a> {
        Int(&'a RleRuns<i64>),
        Date(&'a RleRuns<i32>),
    }
    impl Runs<'_> {
        fn ends(&self) -> &[u32] {
            match self {
                Runs::Int(r) => &r.ends,
                Runs::Date(r) => &r.ends,
            }
        }
        fn run_cell(&self, k: usize) -> Cell<'_> {
            match self {
                Runs::Int(r) => Cell::Int(r.vals[k]),
                Runs::Date(r) => Cell::Date(r.vals[k]),
            }
        }
    }
    let (runs, lit, op) = match (l, r) {
        (Operand::Col(ColumnData::RleInt(rr)), Operand::Lit(v)) => (Runs::Int(rr), *v, op),
        (Operand::Col(ColumnData::RleDate(rr)), Operand::Lit(v)) => (Runs::Date(rr), *v, op),
        (Operand::Lit(v), Operand::Col(ColumnData::RleInt(rr))) => {
            (Runs::Int(rr), *v, flip_cmp(op))
        }
        (Operand::Lit(v), Operand::Col(ColumnData::RleDate(rr))) => {
            (Runs::Date(rr), *v, flip_cmp(op))
        }
        _ => return false,
    };
    let lit_cell = Cell::from_value(lit);
    let ends = runs.ends();
    match view.sel {
        None => {
            let mut start = 0u32;
            for (k, &end) in ends.iter().enumerate() {
                let b = cmp_cells(runs.run_cell(k), op, lit_cell);
                out.extend(std::iter::repeat_n(b, (end - start) as usize));
                start = end;
            }
        }
        Some(sel) => {
            let run_bools: Vec<bool> = (0..ends.len())
                .map(|k| cmp_cells(runs.run_cell(k), op, lit_cell))
                .collect();
            for &p in sel {
                let k = ends.partition_point(|&e| e <= p);
                out.push(run_bools[k]);
            }
        }
    }
    true
}

/// Packed-domain fast path for comparisons between a frame-of-reference
/// column and an integer literal. Each FOR block is first decided against
/// its `[ref, max]` envelope (whole-block fill or skip); only straddling
/// blocks read the packed words, comparing the raw deltas against
/// `lit - ref` in the packed domain — the values are never materialized.
/// Non-integer literals fall back to the generic kernel, whose mixed-type
/// semantics (float widening) do not reduce to an i64 compare.
fn for_cmp_mask(
    l: &Operand<'_>,
    op: BinaryOp,
    r: &Operand<'_>,
    view: &BatchView<'_>,
    out: &mut Vec<bool>,
) -> bool {
    let (f, lit, op) = match (l, r) {
        (Operand::Col(ColumnData::ForInt(f)), Operand::Lit(Value::Int(x))) => (f, *x, op),
        (Operand::Lit(Value::Int(x)), Operand::Col(ColumnData::ForInt(f))) => {
            (f, *x, flip_cmp(op))
        }
        _ => return false,
    };
    let cmp_i64 = |x: i64| -> bool {
        match op {
            BinaryOp::Eq => x == lit,
            BinaryOp::NotEq => x != lit,
            BinaryOp::Lt => x < lit,
            BinaryOp::LtEq => x <= lit,
            BinaryOp::Gt => x > lit,
            BinaryOp::GtEq => x >= lit,
            _ => unreachable!("for_cmp_mask called with non-comparison op"),
        }
    };
    let Some(sel) = view.sel else {
        for b in 0..f.n_blocks() {
            let (lo, hi) = (f.refs[b], f.maxs[b]);
            let n = f.block_range(b).len();
            // Envelope decision: if every value in [lo, hi] answers the same
            // way, fill the whole block without touching the packed words.
            let all = match op {
                BinaryOp::Eq => (lit < lo || lit > hi).then_some(false),
                BinaryOp::NotEq => (lit < lo || lit > hi).then_some(true),
                BinaryOp::Lt => decide_range(hi < lit, lo >= lit),
                BinaryOp::LtEq => decide_range(hi <= lit, lo > lit),
                BinaryOp::Gt => decide_range(lo > lit, hi <= lit),
                BinaryOp::GtEq => decide_range(lo >= lit, hi < lit),
                _ => unreachable!("for_cmp_mask called with non-comparison op"),
            };
            if let Some(v) = all {
                out.extend(std::iter::repeat_n(v, n));
                continue;
            }
            let w = f.widths[b] as usize;
            if w == 0 {
                // Constant block inside the envelope: single compare.
                out.extend(std::iter::repeat_n(cmp_i64(lo), n));
                continue;
            }
            // Straddling block: compare bit-packed deltas against the
            // literal shifted into the packed domain. `lo < lit ≤ hi` here,
            // so `lit - lo` is non-negative and the u64 compare is exact.
            let target = lit.wrapping_sub(lo) as u64;
            let words = &f.packed[f.offsets[b] as usize..];
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            let mut bit = 0usize;
            for _ in 0..n {
                let word = bit >> 6;
                let shift = bit & 63;
                let d = ((words[word] >> shift) | ((words[word + 1] << 1) << (63 - shift))) & mask;
                out.push(match op {
                    BinaryOp::Eq => d == target,
                    BinaryOp::NotEq => d != target,
                    BinaryOp::Lt => d < target,
                    BinaryOp::LtEq => d <= target,
                    BinaryOp::Gt => d > target,
                    BinaryOp::GtEq => d >= target,
                    _ => unreachable!(),
                });
                bit += w;
            }
        }
        return true;
    };
    for &p in sel {
        out.push(cmp_i64(f.get(p as usize)));
    }
    true
}

/// `Some(true)` when the whole envelope satisfies the predicate,
/// `Some(false)` when none of it can, `None` when the block straddles.
#[inline]
fn decide_range(all_true: bool, all_false: bool) -> Option<bool> {
    if all_true {
        Some(true)
    } else if all_false {
        Some(false)
    } else {
        None
    }
}

#[inline]
fn cmp_cells(a: Cell<'_>, op: BinaryOp, b: Cell<'_>) -> bool {
    use std::cmp::Ordering;
    match op {
        BinaryOp::Eq => cell_sql_eq(a, b),
        BinaryOp::NotEq => !cell_sql_eq(a, b) && !a.is_null() && !b.is_null(),
        _ => {
            if a.is_null() || b.is_null() {
                return false;
            }
            let ord = cell_total_cmp(a, b);
            match op {
                BinaryOp::Lt => ord == Ordering::Less,
                BinaryOp::LtEq => ord != Ordering::Greater,
                BinaryOp::Gt => ord == Ordering::Greater,
                BinaryOp::GtEq => ord != Ordering::Less,
                _ => unreachable!("cmp_cells called with non-comparison op"),
            }
        }
    }
}

/// Batch value entry point: evaluates `expr` for every selected row of
/// `view` into a dense typed column. Element-for-element equivalent to
/// calling [`eval`] on materialized rows.
pub fn eval_batch(
    expr: &BoundExpr,
    schema: &Schema,
    view: &BatchView<'_>,
) -> Result<ColumnData, EvalError> {
    let n = view.selected_len();
    match expr {
        BoundExpr::Column(c) => {
            let pos = schema
                .position(c.table_slot, c.column_idx)
                .ok_or(EvalError::MissingColumn {
                    table_slot: c.table_slot,
                    column_idx: c.column_idx,
                })?;
            let col = view.col(pos)?;
            Ok(match view.sel {
                Some(sel) => col.gather_rows(sel),
                None => col.to_dense(),
            })
        }
        BoundExpr::Literal(v) => {
            let mut b = ColBuilder::with_capacity(n);
            for _ in 0..n {
                b.push(v.clone());
            }
            Ok(b.finish())
        }
        BoundExpr::Binary { left, op, right }
            if matches!(op, BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div) =>
        {
            let l = operand_of(left, schema, view)?;
            let r = operand_of(right, schema, view)?;
            let mut b = ColBuilder::with_capacity(n);
            for j in 0..n {
                let phys = view.phys(j);
                b.push(arith_cells(l.cell(j, phys), *op, r.cell(j, phys))?);
            }
            Ok(b.finish())
        }
        BoundExpr::Substring { expr: inner, start, len } => {
            let v = operand_of(inner, schema, view)?;
            let mut b = ColBuilder::with_capacity(n);
            for j in 0..n {
                match v.cell(j, view.phys(j)) {
                    Cell::Str(s) => {
                        b.push(Value::Str(substring_slice(s, *start, *len).to_string()))
                    }
                    Cell::Null => b.push(Value::Null),
                    other => {
                        return Err(EvalError::Type(format!(
                            "SUBSTRING expects a string, got {}",
                            other.to_value()
                        )))
                    }
                }
            }
            Ok(b.finish())
        }
        // Predicate-shaped expressions evaluated for their value produce the
        // same 0/1 integers as the scalar path.
        BoundExpr::Binary { .. }
        | BoundExpr::Not(_)
        | BoundExpr::InList { .. }
        | BoundExpr::Between { .. }
        | BoundExpr::Like { .. }
        | BoundExpr::IsNull { .. } => {
            let mut mask = Vec::with_capacity(n);
            // AND/OR produce bool directly; comparisons likewise — but the
            // scalar evaluator represents these as Int(0/1), so convert.
            pred_mask(expr, schema, view, &mut mask)?;
            Ok(ColumnData::Int(mask.into_iter().map(i64::from).collect()))
        }
        BoundExpr::Aggregate { .. } => Err(EvalError::AggregateInScalarContext),
        BoundExpr::Param { idx, .. } => Err(EvalError::UnboundParam(*idx)),
        BoundExpr::InListParam { items, .. } => {
            Err(EvalError::UnboundParam(first_param_idx(items)))
        }
    }
}

/// The first placeholder index in a parameterized IN list (for the
/// unbound-parameter error when one survives to execution).
fn first_param_idx(items: &[BoundExpr]) -> usize {
    items
        .iter()
        .find_map(|it| match it {
            BoundExpr::Param { idx, .. } => Some(*idx),
            _ => None,
        })
        .unwrap_or(0)
}

#[inline]
fn arith_cells(l: Cell<'_>, op: BinaryOp, r: Cell<'_>) -> Result<Value, EvalError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Cell::Int(a), Cell::Int(b)) => Ok(match op {
            BinaryOp::Add => Value::Int(a.wrapping_add(b)),
            BinaryOp::Sub => Value::Int(a.wrapping_sub(b)),
            BinaryOp::Mul => Value::Int(a.wrapping_mul(b)),
            BinaryOp::Div => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            _ => unreachable!("arith_cells called with non-arithmetic op"),
        }),
        _ => {
            let (a, b) = match (l.as_float(), r.as_float()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EvalError::Type(format!(
                        "arithmetic on non-numeric values {} {op} {}",
                        l.to_value(),
                        r.to_value()
                    )))
                }
            };
            Ok(match op {
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => unreachable!("arith_cells called with non-arithmetic op"),
            })
        }
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (single char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // try consuming 0..=len chars
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::binder::{Binder, BoundQuery};
    use qpe_sql::catalog::{ColumnDef, DataType, MemoryCatalog, TableDef};

    fn bind(sql: &str) -> BoundQuery {
        let mut cat = MemoryCatalog::new();
        cat.add_table(TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "a".into(), data_type: DataType::Int, ndv: 10 },
                ColumnDef { name: "s".into(), data_type: DataType::Str, ndv: 10 },
                ColumnDef { name: "f".into(), data_type: DataType::Float, ndv: 10 },
            ],
            row_count: 10,
            indexed_columns: vec![],
            primary_key: "a".into(),
        });
        Binder::new(&cat).bind_sql(sql).unwrap()
    }

    fn schema() -> Schema {
        Schema::new(vec![(0, 0), (0, 1), (0, 2)])
    }

    fn row(a: i64, s: &str, f: f64) -> Vec<Value> {
        vec![Value::Int(a), Value::Str(s.into()), Value::Float(f)]
    }

    fn check(sql_where: &str, r: &[Value]) -> bool {
        let q = bind(&format!("SELECT * FROM t WHERE {sql_where}"));
        let pred = &q.filters[0].expr;
        eval_predicate(pred, &schema(), r).unwrap()
    }

    #[test]
    fn comparison_predicates() {
        assert!(check("a = 5", &row(5, "x", 0.0)));
        assert!(!check("a = 5", &row(6, "x", 0.0)));
        assert!(check("a < 5", &row(4, "x", 0.0)));
        assert!(check("a >= 5", &row(5, "x", 0.0)));
        assert!(check("a <> 5", &row(4, "x", 0.0)));
    }

    #[test]
    fn numeric_widening_in_comparisons() {
        assert!(check("f > 1", &row(0, "x", 1.5)));
        assert!(check("a < 1.5", &row(1, "x", 0.0)));
    }

    #[test]
    fn in_list_and_negation() {
        assert!(check("a IN (1, 5, 9)", &row(5, "x", 0.0)));
        assert!(!check("a IN (1, 5, 9)", &row(4, "x", 0.0)));
        assert!(check("a NOT IN (1, 5, 9)", &row(4, "x", 0.0)));
    }

    #[test]
    fn substring_semantics_one_based() {
        assert!(check("SUBSTRING(s, 1, 2) = 'he'", &row(0, "hello", 0.0)));
        assert!(check("SUBSTRING(s, 2, 3) = 'ell'", &row(0, "hello", 0.0)));
        // start past end yields empty string
        assert!(check("SUBSTRING(s, 9, 2) = ''", &row(0, "hello", 0.0)));
        // len clipped at end
        assert!(check("SUBSTRING(s, 4, 100) = 'lo'", &row(0, "hello", 0.0)));
    }

    #[test]
    fn paper_example1_phone_prefix_predicate() {
        assert!(check(
            "SUBSTRING(s, 1, 2) IN ('20', '40', '22')",
            &row(0, "20-123-456-7890", 0.0)
        ));
        assert!(!check(
            "SUBSTRING(s, 1, 2) IN ('20', '40', '22')",
            &row(0, "33-123-456-7890", 0.0)
        ));
    }

    #[test]
    fn between_inclusive() {
        assert!(check("a BETWEEN 3 AND 5", &row(3, "x", 0.0)));
        assert!(check("a BETWEEN 3 AND 5", &row(5, "x", 0.0)));
        assert!(!check("a BETWEEN 3 AND 5", &row(6, "x", 0.0)));
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("hello world", "hello%"));
        assert!(like_match("hello world", "%world"));
        assert!(like_match("hello world", "%lo wo%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
        assert!(check("s LIKE '%ell%'", &row(0, "hello", 0.0)));
        assert!(check("s NOT LIKE '%zzz%'", &row(0, "hello", 0.0)));
    }

    #[test]
    fn and_or_not() {
        assert!(check("a = 1 OR a = 2", &row(2, "x", 0.0)));
        assert!(!check("NOT (a = 2)", &row(2, "x", 0.0)));
    }

    #[test]
    fn null_comparisons_are_false() {
        let q = bind("SELECT * FROM t WHERE a = 5");
        let pred = &q.filters[0].expr;
        let r = vec![Value::Null, Value::Null, Value::Null];
        assert!(!eval_predicate(pred, &schema(), &r).unwrap());
    }

    #[test]
    fn is_null_tests() {
        let r = vec![Value::Null, Value::Str("x".into()), Value::Float(0.0)];
        assert!(check("a IS NULL", &r));
        assert!(check("s IS NOT NULL", &r));
    }

    #[test]
    fn arithmetic() {
        assert!(check("a + 1 = 6", &row(5, "x", 0.0)));
        assert!(check("a * 2 = 10", &row(5, "x", 0.0)));
        assert!(check("f / 2 = 0.75", &row(0, "x", 1.5)));
        // integer division
        assert!(check("a / 2 = 2", &row(5, "x", 0.0)));
    }

    #[test]
    fn division_by_zero_yields_null_predicate_false() {
        assert!(!check("a / 0 = 1", &row(5, "x", 0.0)));
    }

    #[test]
    fn missing_column_is_error() {
        let q = bind("SELECT * FROM t WHERE a = 1");
        let pred = &q.filters[0].expr;
        let bad_schema = Schema::new(vec![(0, 1)]);
        let r = vec![Value::Str("x".into())];
        assert!(matches!(
            eval_predicate(pred, &bad_schema, &r),
            Err(EvalError::MissingColumn { .. })
        ));
    }

    /// Satellite: NULL-bearing computed columns keep the typed+mask
    /// (`Nullable`) representation instead of demoting to `Mixed` — the same
    /// fast path storage columns take.
    #[test]
    fn computed_nullable_columns_stay_typed() {
        let q = bind("SELECT a + 1 FROM t");
        let expr = &q.projections[0].expr;
        let one_col_schema = Schema::new(vec![(0, 0)]);

        // NULL in the middle: mask allocated on demand, typed buffer kept.
        let col = ColumnData::from_values(&[Value::Int(1), Value::Null, Value::Int(3)]);
        let cols = vec![Some(ColRef::Single(&col))];
        let view = BatchView { cols: &cols, sel: None, rows: 3 };
        let out = eval_batch(expr, &one_col_schema, &view).unwrap();
        match &out {
            ColumnData::Nullable { nulls, values } => {
                assert_eq!(nulls, &vec![false, true, false]);
                assert!(matches!(**values, ColumnData::Int(_)));
            }
            other => panic!("expected Nullable, got {other:?}"),
        }
        assert_eq!(out.get(0), Value::Int(2));
        assert_eq!(out.get(1), Value::Null);
        assert_eq!(out.get(2), Value::Int(4));

        // Leading NULLs backfill sentinels once the type is known.
        let col = ColumnData::from_values(&[Value::Null, Value::Null, Value::Int(7)]);
        let cols = vec![Some(ColRef::Single(&col))];
        let view = BatchView { cols: &cols, sel: None, rows: 3 };
        let out = eval_batch(expr, &one_col_schema, &view).unwrap();
        assert!(matches!(out, ColumnData::Nullable { .. }));
        assert_eq!(out.get(0), Value::Null);
        assert_eq!(out.get(2), Value::Int(8));

        // No NULLs: plain typed column, no mask allocated.
        let col = ColumnData::Int(vec![1, 2]);
        let cols = vec![Some(ColRef::Single(&col))];
        let view = BatchView { cols: &cols, sel: None, rows: 2 };
        let out = eval_batch(expr, &one_col_schema, &view).unwrap();
        assert!(matches!(out, ColumnData::Int(_)));

        // All-NULL stays generic (no type to anchor a mask to).
        let col = ColumnData::from_values(&[Value::Null, Value::Null]);
        let cols = vec![Some(ColRef::Single(&col))];
        let view = BatchView { cols: &cols, sel: None, rows: 2 };
        let out = eval_batch(expr, &one_col_schema, &view).unwrap();
        assert!(matches!(&out, ColumnData::Mixed(v) if v == &vec![Value::Null, Value::Null]));
    }

    #[test]
    fn schema_concat_and_position() {
        let a = Schema::new(vec![(0, 0), (0, 1)]);
        let b = Schema::new(vec![(1, 0)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.position(1, 0), Some(2));
        assert_eq!(c.position(2, 0), None);
        assert!(!c.is_empty());
    }
}
