//! Physical plan trees and EXPLAIN output.
//!
//! [`PlanNode`] is the single plan representation every downstream component
//! consumes: the executors interpret it, the cost models annotate it, the
//! tree-CNN featurizes it, and [`PlanNode::explain_json`] renders the exact
//! `{'Node Type', 'Total Cost', 'Plan Rows', 'Relation Name', 'Plans'}` shape
//! the paper's Table II shows.

use crate::eval::Schema;
use qpe_sql::binder::{BoundExpr, ColumnRef};
use qpe_sql::value::Value;
use serde::{Deserialize, Serialize};
use serde_json::json;

/// Physical operator kinds across both engines.
///
/// Display strings match the paper's EXPLAIN output verbatim (Table II):
/// `Nested loop inner join`, `Inner hash join`, `Group aggregate`, ...
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// Full relation scan.
    TableScan,
    /// B-tree index scan (TP only).
    IndexScan,
    /// Predicate filter.
    Filter,
    /// Naive nested-loop join (TP).
    NestedLoopJoin,
    /// Index nested-loop join (TP, inner side probed via index).
    IndexNLJoin,
    /// Hash join (AP).
    HashJoin,
    /// Hash-build marker node (AP, mirrors the paper's `Hash` nodes).
    Hash,
    /// Sort-based grouped aggregation (TP).
    GroupAggregate,
    /// Hash / vectorized aggregation (AP).
    HashAggregate,
    /// Full sort.
    Sort,
    /// Top-N (bounded heap) sort.
    TopNSort,
    /// Row-count limit (+ offset).
    Limit,
    /// Scalar projection.
    Projection,
    /// Row insertion (TP write path).
    Insert,
    /// Row update (TP write path; child locates target rows).
    Update,
    /// Row deletion (TP write path; child locates target rows).
    Delete,
}

impl NodeType {
    /// The display string used in EXPLAIN JSON (paper wording).
    pub fn as_str(&self) -> &'static str {
        match self {
            NodeType::TableScan => "Table Scan",
            NodeType::IndexScan => "Index Scan",
            NodeType::Filter => "Filter",
            NodeType::NestedLoopJoin => "Nested loop inner join",
            NodeType::IndexNLJoin => "Index nested loop join",
            NodeType::HashJoin => "Inner hash join",
            NodeType::Hash => "Hash",
            NodeType::GroupAggregate => "Group aggregate",
            NodeType::HashAggregate => "Aggregate",
            NodeType::Sort => "Sort",
            NodeType::TopNSort => "Top-N sort",
            NodeType::Limit => "Limit",
            NodeType::Projection => "Projection",
            NodeType::Insert => "Insert",
            NodeType::Update => "Update",
            NodeType::Delete => "Delete",
        }
    }

    /// All node types, in a fixed order (the tree-CNN one-hot layout).
    pub const ALL: [NodeType; 16] = [
        NodeType::TableScan,
        NodeType::IndexScan,
        NodeType::Filter,
        NodeType::NestedLoopJoin,
        NodeType::IndexNLJoin,
        NodeType::HashJoin,
        NodeType::Hash,
        NodeType::GroupAggregate,
        NodeType::HashAggregate,
        NodeType::Sort,
        NodeType::TopNSort,
        NodeType::Limit,
        NodeType::Projection,
        NodeType::Insert,
        NodeType::Update,
        NodeType::Delete,
    ];

    /// Index of this node type within [`NodeType::ALL`].
    pub fn ordinal(&self) -> usize {
        NodeType::ALL.iter().position(|t| t == self).expect("in ALL")
    }

    /// True for join operators.
    pub fn is_join(&self) -> bool {
        matches!(
            self,
            NodeType::NestedLoopJoin | NodeType::IndexNLJoin | NodeType::HashJoin
        )
    }
}

impl std::fmt::Display for NodeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One key position inside an [`IndexLookup`]: a concrete literal, or a
/// prepared-statement parameter resolved at execution time. Prepared plans
/// carry `Param` terms; [`PlanNode::substitute_params`] lowers them to `Lit`
/// before execution, so the executors only ever see literals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanTerm {
    /// A concrete value known at plan time.
    Lit(Value),
    /// A parameter placeholder (0-based index).
    Param(usize),
}

impl PlanTerm {
    /// The literal value, if already concrete.
    pub fn as_lit(&self) -> Option<&Value> {
        match self {
            PlanTerm::Lit(v) => Some(v),
            PlanTerm::Param(_) => None,
        }
    }

    /// Resolves a parameter term against a bound parameter vector.
    fn substitute(&self, params: &[Value]) -> PlanTerm {
        match self {
            PlanTerm::Param(idx) => match params.get(*idx) {
                Some(v) => PlanTerm::Lit(v.clone()),
                None => self.clone(),
            },
            lit => lit.clone(),
        }
    }
}

impl From<Value> for PlanTerm {
    fn from(v: Value) -> Self {
        PlanTerm::Lit(v)
    }
}

/// How an index scan selects rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IndexLookup {
    /// Equality on one or more keys (`=` or `IN`).
    Keys(Vec<PlanTerm>),
    /// Inclusive range.
    Range {
        /// Lower bound, if any.
        low: Option<PlanTerm>,
        /// Upper bound, if any.
        high: Option<PlanTerm>,
    },
    /// Whole index in key order (for index-ordered top-N).
    Ordered {
        /// Descending order flag.
        descending: bool,
    },
}

impl IndexLookup {
    /// Clones the lookup with parameter terms resolved to literals.
    fn substitute(&self, params: &[Value]) -> IndexLookup {
        match self {
            IndexLookup::Keys(keys) => {
                IndexLookup::Keys(keys.iter().map(|k| k.substitute(params)).collect())
            }
            IndexLookup::Range { low, high } => IndexLookup::Range {
                low: low.as_ref().map(|t| t.substitute(params)),
                high: high.as_ref().map(|t| t.substitute(params)),
            },
            ordered => ordered.clone(),
        }
    }
}

/// One equi-join condition at execution level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinCond {
    /// Column from the left/outer input.
    pub left: ColumnRef,
    /// Column from the right/inner input.
    pub right: ColumnRef,
}

/// An aggregate to compute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// The full output expression, which may embed aggregates
    /// (e.g. `SUM(x) / COUNT(*)` is one projection).
    pub expr: BoundExpr,
    /// Output label.
    pub label: String,
}

/// Execution payload of a plan node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanOp {
    /// Sequential scan materializing `columns` of the table at `table_slot`.
    /// The TP engine always materializes the full row (row store); the AP
    /// engine materializes only referenced columns.
    TableScan {
        /// Query table slot.
        table_slot: usize,
        /// Column indexes to materialize (output layout order).
        columns: Vec<usize>,
        /// Filter conjunction pushed down for zone-map block pruning (AP
        /// plans only; TP scans ignore it). The predicate still evaluates
        /// row-wise in the Filter above — the scan uses it solely to skip
        /// base blocks whose stats headers refute it, so results are
        /// identical with or without the pushdown.
        pushed: Option<BoundExpr>,
    },
    /// B-tree index scan on `column_idx`.
    IndexScan {
        /// Query table slot.
        table_slot: usize,
        /// Indexed column.
        column_idx: usize,
        /// Lookup specification.
        lookup: IndexLookup,
        /// Columns to materialize.
        columns: Vec<usize>,
    },
    /// Index probe descriptor — only valid as the inner child of
    /// [`PlanOp::IndexNLJoin`]; never executed standalone.
    IndexProbe {
        /// Inner table slot.
        table_slot: usize,
        /// Join column probed through the index.
        column_idx: usize,
        /// Residual filter applied to fetched inner rows.
        residual: Option<BoundExpr>,
        /// Columns to materialize.
        columns: Vec<usize>,
    },
    /// Filter by predicate.
    Filter {
        /// The predicate.
        predicate: BoundExpr,
    },
    /// Nested-loop join; children are `[outer, inner]`.
    NestedLoopJoin {
        /// Equi-join conditions (may be empty → cross product + residual).
        conds: Vec<JoinCond>,
        /// Non-equi residual condition.
        residual: Option<BoundExpr>,
    },
    /// Index nested-loop join; children are `[outer, IndexProbe]`.
    IndexNLJoin {
        /// The outer-side key column driving the probe.
        outer_key: ColumnRef,
    },
    /// Hash join; children are `[probe, Hash(build)]` — the paper's AP plans
    /// put the probe side first and wrap the build side in a `Hash` node.
    HashJoin {
        /// Keys on the probe side.
        probe_keys: Vec<ColumnRef>,
        /// Keys on the build side.
        build_keys: Vec<ColumnRef>,
    },
    /// Hash-build marker; single child.
    Hash,
    /// Aggregation producing *final projected rows*.
    Aggregate {
        /// Group-by keys (empty for scalar aggregation).
        group_by: Vec<BoundExpr>,
        /// Output expressions (each may embed aggregate calls).
        outputs: Vec<AggSpec>,
        /// HAVING predicate over the aggregate state.
        having: Option<BoundExpr>,
        /// True for hash aggregation (AP), false for sort-based (TP).
        hash: bool,
    },
    /// Full sort on base columns.
    Sort {
        /// Sort keys with descending flags.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Bounded top-N sort on base columns.
    TopNSort {
        /// Sort keys with descending flags.
        keys: Vec<(BoundExpr, bool)>,
        /// Rows to emit.
        limit: u64,
        /// Rows to skip first.
        offset: u64,
    },
    /// Limit/offset passthrough.
    Limit {
        /// Rows to emit.
        limit: u64,
        /// Rows to skip first.
        offset: u64,
    },
    /// Final scalar projection for non-aggregate queries.
    Projection {
        /// Output expressions.
        exprs: Vec<BoundExpr>,
        /// Output labels.
        labels: Vec<String>,
    },
    /// Positional sort on already-projected output (ORDER BY after
    /// aggregation). Displayed as `Sort`.
    OutputSort {
        /// (output position, descending) keys.
        keys: Vec<(usize, bool)>,
    },
    /// Row insertion. Leaf node; the bound statement carries the rows.
    Insert {
        /// Target table.
        table: String,
        /// Number of rows being inserted (estimate material for EXPLAIN).
        rows: usize,
    },
    /// Row update; the single child is the row-locating access path over the
    /// target table. The bound statement carries the assignments.
    Update {
        /// Target table.
        table: String,
        /// Number of `SET` assignments.
        assignments: usize,
    },
    /// Row deletion; the single child is the row-locating access path.
    Delete {
        /// Target table.
        table: String,
    },
}

/// A node in a physical plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// Operator kind.
    pub node_type: NodeType,
    /// Relation name for scans.
    pub relation: Option<String>,
    /// Index (column) name for index scans/probes.
    pub index: Option<String>,
    /// Optimizer cost estimate — engine-specific units, **not comparable
    /// across engines** (the paper's central prompt warning).
    pub total_cost: f64,
    /// Optimizer cardinality estimate.
    pub plan_rows: f64,
    /// Human-readable predicate / key description.
    pub detail: Option<String>,
    /// Execution payload.
    pub op: PlanOp,
    /// Child plans.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Builder used by the optimizers.
    pub fn new(node_type: NodeType, op: PlanOp) -> Self {
        PlanNode {
            node_type,
            relation: None,
            index: None,
            total_cost: 0.0,
            plan_rows: 0.0,
            detail: None,
            op,
            children: Vec::new(),
        }
    }

    /// Sets the relation name.
    pub fn with_relation(mut self, rel: impl Into<String>) -> Self {
        self.relation = Some(rel.into());
        self
    }

    /// Sets the index name.
    pub fn with_index(mut self, idx: impl Into<String>) -> Self {
        self.index = Some(idx.into());
        self
    }

    /// Sets the detail string.
    pub fn with_detail(mut self, d: impl Into<String>) -> Self {
        self.detail = Some(d.into());
        self
    }

    /// Sets cost and cardinality estimates.
    pub fn with_estimates(mut self, cost: f64, rows: f64) -> Self {
        self.total_cost = cost;
        self.plan_rows = rows;
        self
    }

    /// Appends a child.
    pub fn with_child(mut self, child: PlanNode) -> Self {
        self.children.push(child);
        self
    }

    /// The output row schema of this operator.
    ///
    /// Aggregates, projections and output sorts produce synthetic output
    /// columns; those return an empty schema (their consumers work
    /// positionally).
    pub fn output_schema(&self) -> Schema {
        match &self.op {
            PlanOp::TableScan { table_slot, columns, .. }
            | PlanOp::IndexScan { table_slot, columns, .. }
            | PlanOp::IndexProbe { table_slot, columns, .. } => Schema::new(
                columns.iter().map(|&c| (*table_slot, c)).collect(),
            ),
            PlanOp::Filter { .. }
            | PlanOp::Hash
            | PlanOp::Sort { .. }
            | PlanOp::TopNSort { .. }
            | PlanOp::Limit { .. } => self.children[0].output_schema(),
            PlanOp::NestedLoopJoin { .. } | PlanOp::IndexNLJoin { .. } | PlanOp::HashJoin { .. } => {
                self.children[0]
                    .output_schema()
                    .concat(&self.children[1].output_schema())
            }
            PlanOp::Aggregate { .. } | PlanOp::Projection { .. } | PlanOp::OutputSort { .. } => {
                Schema::new(Vec::new())
            }
            // DML nodes emit no rows (their result is a row count).
            PlanOp::Insert { .. } | PlanOp::Update { .. } | PlanOp::Delete { .. } => {
                Schema::new(Vec::new())
            }
        }
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Tree height (single node = 1).
    pub fn height(&self) -> usize {
        1 + self.children.iter().map(|c| c.height()).max().unwrap_or(0)
    }

    /// Pre-order iteration over all nodes.
    pub fn walk(&self, f: &mut impl FnMut(&PlanNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Counts nodes of a given type.
    pub fn count_type(&self, t: NodeType) -> usize {
        let mut n = 0;
        self.walk(&mut |node| {
            if node.node_type == t {
                n += 1;
            }
        });
        n
    }

    /// Renders the EXPLAIN JSON exactly shaped like the paper's Table II.
    pub fn explain_json(&self) -> serde_json::Value {
        let mut obj = serde_json::Map::new();
        obj.insert("Node Type".into(), json!(self.node_type.as_str()));
        if let Some(rel) = &self.relation {
            obj.insert("Relation Name".into(), json!(rel));
        }
        if let Some(idx) = &self.index {
            obj.insert("Index Name".into(), json!(idx));
        }
        obj.insert("Total Cost".into(), json!(round3(self.total_cost)));
        obj.insert("Plan Rows".into(), json!(self.plan_rows.round() as i64));
        if let Some(d) = &self.detail {
            obj.insert("Detail".into(), json!(d));
        }
        if !self.children.is_empty() {
            obj.insert(
                "Plans".into(),
                serde_json::Value::Array(self.children.iter().map(|c| c.explain_json()).collect()),
            );
        }
        serde_json::Value::Object(obj)
    }

    /// Pretty indented single-plan text, used in prompts and examples.
    pub fn explain_text(&self) -> String {
        let mut out = String::new();
        self.explain_text_rec(0, &mut out);
        out
    }

    fn explain_text_rec(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str("-> ");
        out.push_str(self.node_type.as_str());
        if let Some(rel) = &self.relation {
            out.push_str(&format!(" on {rel}"));
        }
        if let Some(idx) = &self.index {
            out.push_str(&format!(" using index({idx})"));
        }
        out.push_str(&format!(
            "  (cost={:.2} rows={})",
            self.total_cost,
            self.plan_rows.round() as i64
        ));
        if let Some(d) = &self.detail {
            out.push_str(&format!("  [{d}]"));
        }
        out.push('\n');
        for c in &self.children {
            c.explain_text_rec(depth + 1, out);
        }
    }

    /// True when any operator payload in the tree still references a
    /// prepared-statement parameter.
    pub fn has_params(&self) -> bool {
        use qpe_sql::binder::expr_has_params as hp;
        let mut found = false;
        self.walk(&mut |n| {
            if found {
                return;
            }
            found = match &n.op {
                PlanOp::TableScan { pushed, .. } => pushed.as_ref().is_some_and(hp),
                PlanOp::IndexScan { lookup, .. } => match lookup {
                    IndexLookup::Keys(keys) => {
                        keys.iter().any(|k| matches!(k, PlanTerm::Param(_)))
                    }
                    IndexLookup::Range { low, high } => [low, high]
                        .iter()
                        .any(|t| matches!(t, Some(PlanTerm::Param(_)))),
                    IndexLookup::Ordered { .. } => false,
                },
                PlanOp::IndexProbe { residual, .. } => residual.as_ref().is_some_and(hp),
                PlanOp::Filter { predicate } => hp(predicate),
                PlanOp::NestedLoopJoin { residual, .. } => residual.as_ref().is_some_and(hp),
                PlanOp::Aggregate { group_by, outputs, having, .. } => {
                    group_by.iter().any(hp)
                        || outputs.iter().any(|o| hp(&o.expr))
                        || having.as_ref().is_some_and(hp)
                }
                PlanOp::Sort { keys } | PlanOp::TopNSort { keys, .. } => {
                    keys.iter().any(|(k, _)| hp(k))
                }
                PlanOp::Projection { exprs, .. } => exprs.iter().any(hp),
                PlanOp::IndexNLJoin { .. }
                | PlanOp::HashJoin { .. }
                | PlanOp::Hash
                | PlanOp::Limit { .. }
                | PlanOp::OutputSort { .. }
                | PlanOp::Insert { .. }
                | PlanOp::Update { .. }
                | PlanOp::Delete { .. } => false,
            };
        });
        found
    }

    /// Clones the plan with every parameter placeholder replaced by its bound
    /// value — the execution-time injection step of a prepared statement.
    /// The substituted tree is exactly what planning the same SQL with the
    /// literals inlined would produce for the execution payload (predicates,
    /// pushed conjunctions, index keys), so pruning and all work counters
    /// match the inlined run. Plans without parameters are cloned as-is.
    pub fn substitute_params(&self, params: &[Value]) -> PlanNode {
        use qpe_sql::binder::substitute_params as subst;
        let op = match &self.op {
            PlanOp::TableScan { table_slot, columns, pushed } => PlanOp::TableScan {
                table_slot: *table_slot,
                columns: columns.clone(),
                pushed: pushed.as_ref().map(|p| subst(p, params)),
            },
            PlanOp::IndexScan { table_slot, column_idx, lookup, columns } => PlanOp::IndexScan {
                table_slot: *table_slot,
                column_idx: *column_idx,
                lookup: lookup.substitute(params),
                columns: columns.clone(),
            },
            PlanOp::IndexProbe { table_slot, column_idx, residual, columns } => {
                PlanOp::IndexProbe {
                    table_slot: *table_slot,
                    column_idx: *column_idx,
                    residual: residual.as_ref().map(|r| subst(r, params)),
                    columns: columns.clone(),
                }
            }
            PlanOp::Filter { predicate } => PlanOp::Filter { predicate: subst(predicate, params) },
            PlanOp::NestedLoopJoin { conds, residual } => PlanOp::NestedLoopJoin {
                conds: conds.clone(),
                residual: residual.as_ref().map(|r| subst(r, params)),
            },
            PlanOp::Aggregate { group_by, outputs, having, hash } => PlanOp::Aggregate {
                group_by: group_by.iter().map(|g| subst(g, params)).collect(),
                outputs: outputs
                    .iter()
                    .map(|o| AggSpec { expr: subst(&o.expr, params), label: o.label.clone() })
                    .collect(),
                having: having.as_ref().map(|h| subst(h, params)),
                hash: *hash,
            },
            PlanOp::Sort { keys } => PlanOp::Sort {
                keys: keys.iter().map(|(k, d)| (subst(k, params), *d)).collect(),
            },
            PlanOp::TopNSort { keys, limit, offset } => PlanOp::TopNSort {
                keys: keys.iter().map(|(k, d)| (subst(k, params), *d)).collect(),
                limit: *limit,
                offset: *offset,
            },
            PlanOp::Projection { exprs, labels } => PlanOp::Projection {
                exprs: exprs.iter().map(|e| subst(e, params)).collect(),
                labels: labels.clone(),
            },
            other => other.clone(),
        };
        PlanNode {
            node_type: self.node_type,
            relation: self.relation.clone(),
            index: self.index.clone(),
            total_cost: self.total_cost,
            plan_rows: self.plan_rows,
            detail: self.detail.clone(),
            op,
            children: self
                .children
                .iter()
                .map(|c| c.substitute_params(params))
                .collect(),
        }
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(slot: usize, cols: Vec<usize>) -> PlanNode {
        PlanNode::new(
            NodeType::TableScan,
            PlanOp::TableScan { table_slot: slot, columns: cols, pushed: None },
        )
        .with_relation(format!("t{slot}"))
        .with_estimates(10.0, 100.0)
    }

    #[test]
    fn schema_propagation_through_joins_and_filters() {
        let left = scan(0, vec![0, 1]);
        let right = scan(1, vec![0]);
        let join = PlanNode::new(
            NodeType::NestedLoopJoin,
            PlanOp::NestedLoopJoin { conds: vec![], residual: None },
        )
        .with_child(left)
        .with_child(right);
        let schema = join.output_schema();
        assert_eq!(schema.columns(), &[(0, 0), (0, 1), (1, 0)]);

        let filter = PlanNode::new(
            NodeType::Filter,
            PlanOp::Filter { predicate: BoundExpr::Literal(Value::Int(1)) },
        )
        .with_child(join);
        assert_eq!(filter.output_schema().len(), 3);
    }

    #[test]
    fn node_count_and_height() {
        let tree = PlanNode::new(
            NodeType::Filter,
            PlanOp::Filter { predicate: BoundExpr::Literal(Value::Int(1)) },
        )
        .with_child(scan(0, vec![0]));
        assert_eq!(tree.node_count(), 2);
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.count_type(NodeType::TableScan), 1);
        assert_eq!(tree.count_type(NodeType::HashJoin), 0);
    }

    #[test]
    fn explain_json_matches_paper_shape() {
        let node = scan(0, vec![0]).with_estimates(2.75, 25.0);
        let j = node.explain_json();
        assert_eq!(j["Node Type"], "Table Scan");
        assert_eq!(j["Relation Name"], "t0");
        assert_eq!(j["Total Cost"], 2.75);
        assert_eq!(j["Plan Rows"], 25);
        assert!(j.get("Plans").is_none());
    }

    #[test]
    fn explain_json_nests_children() {
        let tree = PlanNode::new(
            NodeType::Filter,
            PlanOp::Filter { predicate: BoundExpr::Literal(Value::Int(1)) },
        )
        .with_estimates(5.0, 10.0)
        .with_child(scan(0, vec![0]));
        let j = tree.explain_json();
        assert_eq!(j["Plans"][0]["Node Type"], "Table Scan");
    }

    #[test]
    fn node_type_strings_match_paper() {
        assert_eq!(NodeType::NestedLoopJoin.as_str(), "Nested loop inner join");
        assert_eq!(NodeType::HashJoin.as_str(), "Inner hash join");
        assert_eq!(NodeType::GroupAggregate.as_str(), "Group aggregate");
        assert_eq!(NodeType::HashAggregate.as_str(), "Aggregate");
        assert_eq!(NodeType::Hash.as_str(), "Hash");
    }

    #[test]
    fn ordinals_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in NodeType::ALL {
            assert!(seen.insert(t.ordinal()));
            assert_eq!(NodeType::ALL[t.ordinal()], t);
        }
    }

    #[test]
    fn explain_text_renders_tree() {
        let tree = PlanNode::new(
            NodeType::Filter,
            PlanOp::Filter { predicate: BoundExpr::Literal(Value::Int(1)) },
        )
        .with_detail("x = 1")
        .with_child(scan(0, vec![0]));
        let text = tree.explain_text();
        assert!(text.contains("-> Filter"));
        assert!(text.contains("[x = 1]"));
        assert!(text.contains("  -> Table Scan on t0"));
    }

    #[test]
    fn join_classifier() {
        assert!(NodeType::HashJoin.is_join());
        assert!(NodeType::IndexNLJoin.is_join());
        assert!(!NodeType::Hash.is_join());
    }
}
