//! Dual-format storage: a row store with B-tree indexes (TP side) and a
//! column store (AP side), both loaded from the same generated data.
//!
//! The paper's ByteHTAP keeps a row-oriented copy for the TP engine and a
//! column-oriented copy for the AP engine with high data freshness; here both
//! copies are built once at load time and are immutable afterwards (the
//! explanation framework only ever reads).

pub mod col_store;
pub mod index;
pub mod row_store;

pub use col_store::{ColumnData, ColumnTable};
pub use index::{BTreeIndex, KeyVal};
pub use row_store::RowTable;

use crate::tpch::GeneratedTable;
use qpe_sql::catalog::TableDef;

/// Both physical representations of one logical table.
#[derive(Debug)]
pub struct StoredTable {
    /// Row-oriented copy with indexes (TP engine).
    pub rows: RowTable,
    /// Column-oriented copy (AP engine).
    pub cols: ColumnTable,
}

impl StoredTable {
    /// Builds both representations from generated column-major data.
    pub fn load(def: &TableDef, data: &GeneratedTable) -> Self {
        let cols = ColumnTable::from_columns(&def.name, &data.columns);
        let rows = RowTable::from_columns(def, &data.columns);
        StoredTable { rows, cols }
    }

    /// Row count (identical in both representations).
    pub fn row_count(&self) -> usize {
        self.rows.row_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::catalog::{ColumnDef, DataType};
    use qpe_sql::value::Value;

    fn tiny_table() -> (TableDef, GeneratedTable) {
        let def = TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "k".into(), data_type: DataType::Int, ndv: 4 },
                ColumnDef { name: "s".into(), data_type: DataType::Str, ndv: 2 },
            ],
            row_count: 4,
            indexed_columns: vec!["s".into()],
            primary_key: "k".into(),
        };
        let data = GeneratedTable {
            name: "t".into(),
            columns: vec![
                vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
                vec![
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                ],
            ],
        };
        (def, data)
    }

    #[test]
    fn both_representations_agree() {
        let (def, data) = tiny_table();
        let st = StoredTable::load(&def, &data);
        assert_eq!(st.row_count(), 4);
        for r in 0..4 {
            for c in 0..2 {
                assert_eq!(st.rows.row(r)[c], st.cols.value(c, r));
            }
        }
    }
}
