//! Dual-format mutable storage: a row store with B-tree indexes (TP side)
//! and a column store with a versioned delta region (AP side), kept in sync
//! by applying every write to both.
//!
//! The paper's ByteHTAP keeps a row-oriented copy for the TP engine and a
//! column-oriented copy for the AP engine *with high data freshness*. Here
//! that freshness mechanism is explicit:
//!
//! * the **row store** applies writes directly — inserts append, deletes
//!   tombstone, updates relocate the tuple (heap-update style) — and every
//!   B-tree index is maintained in place on each write;
//! * the **column store** keeps its base columns immutable and buffers all
//!   writes in an append-friendly **delta region** (typed column builders
//!   plus a deleted-rid bitmap) stamped with a monotonically increasing
//!   version; [`crate::storage::col_store::ColumnTable::compact`] merges the
//!   delta into fresh base columns.
//!
//! Both representations share one physical rid space at all times (inserts
//! append at the same rid, deletes tombstone the same rid, updates relocate
//! to the same new rid, and [`StoredTable::compact`] re-packs both sides
//! together), so the DML executor locates rows once — on the row store —
//! and applies the change to both copies. AP scans read base + delta through
//! selection vectors, which is why a committed write is visible to the next
//! analytical query *before* any compaction runs.
//!
//! # Blocks, zone maps and encodings (AP base segment)
//!
//! The column store's base segment is block-structured: each fixed-size
//! block (sized adaptively per table by [`zone::default_block_rows`], ~64
//! blocks per segment) carries a per-column stats header
//! ([`zone::BlockZone`] — min/max, NULL count, constant hint) built at load
//! and rebuilt by compaction. AP scans whose plan pushed a filter
//! conjunction into the scan node consult the headers through
//! [`zone::ScanPruner`] and skip refuted blocks wholesale. Base columns may
//! additionally be dictionary-encoded (low-cardinality strings — equality
//! compares `u32` codes) or run-length-encoded (run-heavy ints/dates); see
//! [`col_store`].
//!
//! **Pruning-safety rule for delta rows:** zone maps cover *only* the
//! immutable base. The delta region and the tombstone bitmap change on
//! every write, so delta rids are always scanned (never pruned), and base
//! headers — which deletes can only make conservatively loose, never wrong
//! — are refreshed by the same `compact()` that folds the delta in. A
//! pruned scan and an unpruned scan therefore return identical rows at any
//! point of the DML timeline (`tests/dml_props.rs` sweeps this).

pub mod col_store;
pub mod index;
pub mod row_store;
pub mod zone;

pub use col_store::{ColRef, ColumnData, ColumnTable, DictColumn, RleRuns};
pub use index::{BTreeIndex, KeyVal};
pub use row_store::RowTable;
pub use zone::{BlockZone, PruneOutcome, ScanPruner, DEFAULT_BLOCK_ROWS};

use crate::tpch::GeneratedTable;
use qpe_sql::catalog::TableDef;
use qpe_sql::value::Value;
use serde::{Deserialize, Serialize};

/// Per-table freshness snapshot: how far the column store's delta region has
/// drifted from its base since the last compaction. Surfaced to the system
/// facade and the explainer's evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableFreshness {
    /// Table name.
    pub table: String,
    /// Monotonic write-version stamp (bumps on every write and compaction).
    pub version: u64,
    /// Rows in the immutable base segment.
    pub base_rows: usize,
    /// Rows buffered in the delta region since the last compaction
    /// (tombstoned delta rows included — this is the physical backlog).
    pub delta_rows: usize,
    /// Delta rows still live (not deleted again since insertion).
    pub live_delta_rows: usize,
    /// Rids tombstoned since the last compaction.
    pub deleted_rows: usize,
}

impl TableFreshness {
    /// Fraction of *live* data residing in the delta region (0.0 = fully
    /// compacted). A row inserted and then deleted contributes nothing.
    pub fn delta_fraction(&self) -> f64 {
        let live = (self.base_rows + self.delta_rows).saturating_sub(self.deleted_rows);
        if live == 0 {
            0.0
        } else {
            self.live_delta_rows.min(live) as f64 / live as f64
        }
    }
}

/// Both physical representations of one logical table.
#[derive(Debug)]
pub struct StoredTable {
    /// Row-oriented copy with indexes (TP engine).
    pub rows: RowTable,
    /// Column-oriented copy with the delta region (AP engine).
    pub cols: ColumnTable,
}

impl StoredTable {
    /// Builds both representations from generated column-major data.
    pub fn load(def: &TableDef, data: &GeneratedTable) -> Self {
        let cols = ColumnTable::from_columns(&def.name, &data.columns);
        let rows = RowTable::from_columns(def, &data.columns);
        StoredTable { rows, cols }
    }

    /// Live row count (identical in both representations).
    pub fn row_count(&self) -> usize {
        debug_assert_eq!(self.rows.row_count(), self.cols.row_count());
        self.rows.row_count()
    }

    /// Applies one insert to both copies. Returns the shared new rid.
    pub fn insert(&mut self, row: Vec<Value>) -> u32 {
        let rid_cols = self.cols.insert(&row);
        let rid_rows = self.rows.insert(row);
        debug_assert_eq!(rid_rows, rid_cols);
        rid_rows
    }

    /// Applies one delete to both copies. Returns whether the rid was live.
    pub fn delete(&mut self, rid: u32) -> bool {
        let was_live = self.rows.delete(rid);
        if was_live {
            self.cols.delete(rid);
        }
        was_live
    }

    /// Applies one update to both copies. Returns the row's shared new rid.
    pub fn update(&mut self, rid: u32, new_row: Vec<Value>) -> u32 {
        let rid_cols = self.cols.update(rid, &new_row);
        let rid_rows = self.rows.update(rid, new_row);
        debug_assert_eq!(rid_rows, rid_cols);
        rid_rows
    }

    /// Compacts both copies together: the column store merges its delta into
    /// the base, the row store drops tombstones, and the shared rid space
    /// re-packs to `0..row_count()`.
    pub fn compact(&mut self) {
        self.cols.compact();
        self.rows.compact();
        debug_assert_eq!(self.rows.physical_len(), self.cols.physical_len());
    }

    /// Current freshness snapshot of the column-store side.
    pub fn freshness(&self) -> TableFreshness {
        TableFreshness {
            table: self.cols.name().to_string(),
            version: self.cols.version(),
            base_rows: self.cols.physical_len() - self.cols.delta_len(),
            delta_rows: self.cols.delta_len(),
            live_delta_rows: self.cols.live_delta_len(),
            deleted_rows: self.cols.deleted_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::catalog::{ColumnDef, DataType};
    use qpe_sql::value::Value;

    fn tiny_table() -> (TableDef, GeneratedTable) {
        let def = TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "k".into(), data_type: DataType::Int, ndv: 4 },
                ColumnDef { name: "s".into(), data_type: DataType::Str, ndv: 2 },
            ],
            row_count: 4,
            indexed_columns: vec!["s".into()],
            primary_key: "k".into(),
        };
        let data = GeneratedTable {
            name: "t".into(),
            columns: vec![
                vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
                vec![
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                ],
            ],
        };
        (def, data)
    }

    #[test]
    fn both_representations_agree() {
        let (def, data) = tiny_table();
        let st = StoredTable::load(&def, &data);
        assert_eq!(st.row_count(), 4);
        for r in 0..4 {
            for c in 0..2 {
                assert_eq!(st.rows.row(r)[c], st.cols.value(c, r));
            }
        }
    }

    /// The load-bearing invariant of the mutable design: after any write
    /// sequence, both copies hold the same live rows at the same rids.
    fn assert_aligned(st: &StoredTable) {
        assert_eq!(st.rows.physical_len(), st.cols.physical_len());
        assert_eq!(st.rows.row_count(), st.cols.row_count());
        for rid in 0..st.rows.physical_len() {
            assert_eq!(st.rows.is_deleted(rid), st.cols.is_deleted(rid));
            if !st.rows.is_deleted(rid) {
                for c in 0..st.rows.width() {
                    assert_eq!(st.rows.row(rid)[c], st.cols.value(c, rid));
                }
            }
        }
    }

    #[test]
    fn writes_keep_copies_rid_aligned() {
        let (def, data) = tiny_table();
        let mut st = StoredTable::load(&def, &data);
        let rid = st.insert(vec![Value::Int(5), Value::Str("c".into())]);
        assert_eq!(rid, 4);
        assert_aligned(&st);
        assert!(st.delete(1));
        assert!(!st.delete(1));
        assert_aligned(&st);
        let new_rid = st.update(0, vec![Value::Int(10), Value::Str("a2".into())]);
        assert_eq!(new_rid, 5);
        assert_aligned(&st);
        assert_eq!(st.row_count(), 4);
        // indexes track the writes
        assert_eq!(st.rows.index_on(0).unwrap().lookup(&Value::Int(10)), &[5]);
        assert!(st.rows.index_on(0).unwrap().lookup(&Value::Int(1)).is_empty());
    }

    #[test]
    fn compact_realigns_both_sides() {
        let (def, data) = tiny_table();
        let mut st = StoredTable::load(&def, &data);
        st.insert(vec![Value::Int(5), Value::Str("c".into())]);
        st.delete(2);
        st.update(0, vec![Value::Int(11), Value::Str("z".into())]);
        let fresh = st.freshness();
        assert_eq!(fresh.delta_rows, 2);
        assert_eq!(fresh.deleted_rows, 2);
        assert!(fresh.delta_fraction() > 0.0);
        st.compact();
        assert_aligned(&st);
        assert_eq!(st.row_count(), 4);
        let fresh = st.freshness();
        assert_eq!(fresh.delta_rows, 0);
        assert_eq!(fresh.deleted_rows, 0);
        assert_eq!(fresh.delta_fraction(), 0.0);
        // index rids re-packed with the shared rid space
        assert_eq!(st.rows.index_on(0).unwrap().lookup(&Value::Int(11)), &[3]);
    }
}
