//! Dual-format mutable storage — row store + column store sharing one rid
//! space — plus the durability subsystem (WAL, segments, manifest,
//! checkpoints) that makes that state survive a kill.
//!
//! # The in-memory pair
//!
//! The paper's ByteHTAP keeps a row-oriented copy for the TP engine and a
//! column-oriented copy for the AP engine *with high data freshness*. Here
//! that freshness mechanism is explicit:
//!
//! * the **row store** applies writes directly — inserts append, deletes
//!   tombstone, updates relocate the tuple (heap-update style) — and every
//!   B-tree index is maintained in place on each write;
//! * the **column store** keeps its base columns immutable (block-structured
//!   with [`zone::BlockZone`] headers, compressed where a cost rule fires —
//!   see below) and buffers all writes in an append-friendly **delta
//!   region** versioned per row: the table's monotonically increasing
//!   version stamp doubles as the **visibility epoch**, and every physical
//!   row carries a begin version (the epoch its insert committed) and an
//!   end version (the epoch a delete/relocating-update retired it;
//!   `u64::MAX` while live). A row is visible at epoch `E` iff
//!   `begin <= E < end`. Compaction merges the delta into fresh base
//!   columns, drops retired versions, and advances the **history floor** —
//!   the oldest epoch a version view can still be reconstructed at.
//!
//! Both representations share one physical rid space at all times, so the
//! DML executor locates rows once — on the row store — and applies the
//! change to both copies. AP scans read base + delta through selection
//! vectors; zone maps cover only the immutable base (delta rids are always
//! scanned, never pruned), which keeps block skipping correct under DML.
//!
//! # MVCC snapshot reads
//!
//! Column state lives behind `Arc`s, so pinning a snapshot is cheap: every
//! read statement's AP side (and `HtapSystem::pin_snapshot` explicitly)
//! clones those `Arc`s at the current epoch under a briefly-held read lock,
//! then executes with no lock at all. Writers mutate through
//! `Arc::make_mut` — copy-on-write when an outstanding snapshot still
//! references the state, in-place when nobody does — so readers never block
//! writers and vice versa. Because delta begin stamps are monotone, a
//! snapshot truncates its delta view at the pin epoch (`view_at`), making
//! its physical shape identical to a table that simply stopped there: work
//! counters, pruning and encodings all match the committed-prefix oracle,
//! not just the row set. Old versions are reclaimed by `Arc` drop when the
//! last snapshot holding them goes away — there is no separate vacuum.
//! Begin/end stamps are assigned deterministically in commit order, so WAL
//! replay after a crash reproduces them byte-identically (v2 segments
//! persist the vectors and the floor).
//!
//! # Base-segment encodings (and why the delta stays plain)
//!
//! Because the base is immutable between compactions, it is the one place
//! compression pays for itself: encode once at (re)build time, scan many
//! times. [`col_store`] picks a representation per column when a base is
//! built, in cost-rule order:
//!
//! * **Dictionary** ([`DictColumn`]): string columns whose distinct count is
//!   small relative to the row count. Scans, hash joins and group-bys then
//!   work on the `u32` codes — equality/IN compare codes, joins hash codes
//!   and translate probe-side codes through a build-side remap — and decode
//!   strings only at materialization.
//! * **Run-length** ([`RleRuns`]): int/date columns whose average run length
//!   clears the break-even point. Predicate kernels evaluate once per *run*,
//!   not once per row, then fan the verdict out to the covered rids.
//! * **Frame-of-reference** ([`col_store::ForInt`]): int columns that are
//!   neither low-cardinality nor run-heavy but locally narrow — each
//!   [`col_store::FOR_BLOCK_ROWS`]-row block stores one reference value plus
//!   bit-packed deltas, provided the packed widths actually undercut plain
//!   `i64` storage. Point access stays O(1) (shift + mask), and range
//!   predicates translate into the packed domain once per block.
//! * **Plain** typed vectors otherwise; nullable columns carry a null mask
//!   rather than demoting to generic values.
//!
//! The **delta region never encodes**: it is append-hot (every write would
//! re-run the cost rule), too small to amortize a dictionary or reference
//! frame, and scanned in full anyway because zone maps don't cover it.
//! Encoding it would buy nothing and cost every DML statement; compaction is
//! the moment delta rows earn a compressed representation. A per-table
//! [`col_store::EncodingPolicy`] can force one representation everywhere
//! (tests sweep the full matrix; compaction preserves the pinned policy).
//!
//! # Per-block bloom filters
//!
//! Zone min/max headers refute *range* predicates but are weak against
//! point predicates over unclustered keys (a block spanning the whole key
//! domain refutes nothing). Each base block therefore also carries a small
//! bloom filter over the column's hashed values ([`zone::BlockZone`]), and
//! the [`ScanPruner`] consults it for `=` and `IN` conjuncts. The safety
//! argument is one-sided: a bloom answers "definitely absent" or "maybe
//! present" — false *positives* merely scan a block that min/max would have
//! scanned anyway (pure, bounded overhead: one probe per block per
//! conjunct), while false *negatives* cannot occur, so a pruned block
//! provably contains no match and results are unchanged. Delta rows are
//! never bloom-pruned (same rule as zone maps), filters are recomputed —
//! not persisted — whenever a base is (re)built or recovered, and literals
//! that cannot equal any stored value under SQL comparison semantics (e.g.
//! fractional floats probing an int column) skip the filter rather than
//! hash incompatibly.
//!
//! # Durability lifecycle: WAL → segments → manifest → checkpoint
//!
//! Nothing above survives a process kill by itself; the durability layer
//! arranges that recovery rebuilds the *identical* physical state:
//!
//! 1. **WAL** ([`wal`]): every DML statement appends its logical operations
//!    ([`TableOp`] batches, plus [`wal::WalRecord::Compact`] markers) to a
//!    checksummed log *while holding the database write lock* — record
//!    order equals apply order — and is acknowledged only after a batched
//!    group-commit fsync ([`wal::Wal::commit`]) that runs off the lock.
//! 2. **Segments** ([`persist`]): a checkpoint snapshots every table's
//!    physical column-store state (shared-`Arc` base + copied delta +
//!    bitmap) and serializes it, off the lock, to per-table segment files
//!    (`<table>.v<N>.seg`, CRC-trailed). The row store is *not* persisted:
//!    it is derivable — tuples decode from the column state, indexes
//!    rebuild from the catalog — and recovery does exactly that.
//! 3. **Manifest** (`manifest.json`): the catalog, statistics, config and
//!    segment list publish atomically via write-temp + rename. The manifest
//!    names the WAL generation (`wal.<N>`) replay starts from.
//! 4. **Checkpoint** ([`crate::engine::HtapSystem::checkpoint`]): rotates
//!    the WAL onto a fresh generation file (cutting it with a
//!    [`wal::WalRecord::Checkpoint`]), writes segments + manifest for the
//!    rotation point, then deletes older generations and segments. A crash
//!    anywhere in that sequence is safe: until the rename lands, the *old*
//!    manifest + old WAL generation — whose replay continues seamlessly
//!    into the new generation file — still reconstruct everything.
//!
//! **Recovery** ([`crate::engine::HtapSystem::open`]) loads the manifest's
//! segments, rebuilds row tables/indexes/zones from them, then replays the
//! WAL generation chain, truncating any torn tail the checksums expose.
//! Because replay re-runs the same `apply_*`/`compact` entry points the
//! live system used, the recovered row store, column store, delta region
//! and statistics are byte-identical to the pre-crash committed state
//! (`tests/crash_recovery.rs` pins this against an oracle, across all
//! executors).
//!
//! # Background compaction
//!
//! [`StoredTable::begin_background_compact`] snapshots a dirty table in
//! O(delta) under the lock; a worker thread then gathers/re-encodes the new
//! base, rebuilds indexes, zones and stats *offline*, and the swap installs
//! the result under a brief lock. Writes arriving during the build are
//! captured in a window (and WAL-logged through a [`RidRemap`] into the
//! post-compaction rid space) and re-applied on top of the swapped state;
//! a synchronous `compact()` racing the build bumps an epoch so the stale
//! swap aborts harmlessly. Writers therefore never stall for O(table) work
//! — the bench pins p99 write latency during a concurrent compaction.
//!
//! # Error handling: retry, then degrade — never lose an acked write
//!
//! Durable I/O distinguishes three failure classes:
//!
//! * **Transient** I/O errors (a flaky fsync, a hiccuping filesystem —
//!   simulated by [`durable_io::FailPoints::arm_errors`], which makes a
//!   site fail N times then heal). These are absorbed by a bounded
//!   [`durable_io::RetryPolicy`] (exponential backoff + deterministic
//!   jitter): the WAL retries only the *fsync* step — the record batch is
//!   written to the page cache once, and a failed flush keeps the pending
//!   buffer intact, so a retry re-flushes the same prefix-consistent bytes
//!   and the log never holds a torn or duplicated record. Segment seals and
//!   the manifest swap retry by idempotent re-creation of the whole file.
//! * **Non-retryable** errors — ENOSPC-class I/O errors, simulated crashes
//!   ([`DurabilityError::Crashed`]), checksum corruption
//!   ([`DurabilityError::Corrupt`]). Retrying cannot help; they fail
//!   immediately ([`durable_io::RetryPolicy::is_retryable`]).
//! * **Exhausted** retries, which collapse into the non-retryable outcome.
//!
//! Either terminal outcome trips the engine's **read-only degraded mode**
//! ([`crate::engine::HtapError::ReadOnly`]): the WAL latches dead with the
//! root cause, in-flight followers are woken with that cause, and every
//! subsequent write statement fails fast — while reads and MVCC snapshots,
//! which never touch durable I/O, keep serving lock-free. No acked write is
//! ever lost: a statement is acknowledged only after its commit fsync, so
//! everything before the fault is durable and everything after it errored
//! structurally. [`crate::engine::HtapSystem::resume_writes`] revives the
//! WAL, probes it with an appended + committed no-op record, and lifts the
//! degradation only if the probe round-trips.
//!
//! **Poison recovery**: locks guarding this state are acquired through
//! recover-don't-propagate helpers (`durable_io::lock_unpoisoned` and the
//! engine's database-lock twins). This is safe, not optimistic: readers
//! only ever observe committed copy-on-write state (a panicking writer
//! cannot expose a torn row or column), and the database write lock —
//! where a mid-statement panic *could* mean a statement applied but never
//! logged — additionally trips degraded mode on first recovery, forcing an
//! explicit `resume_writes()` decision before any further write.

pub mod col_store;
pub(crate) mod codec;
pub mod durable_io;
pub mod index;
pub mod persist;
pub mod row_store;
pub mod wal;
pub mod zone;

pub use col_store::{ColRef, ColumnData, ColumnTable, ColumnTableSnapshot, DictColumn, RleRuns};
pub use durable_io::{crc32, DurabilityError, DurableFile, FailPoints};
pub use index::{BTreeIndex, KeyVal};
pub use row_store::RowTable;
pub use wal::{SyncPolicy, Wal, WalRecord, WalStats};
pub use zone::{BlockZone, PruneOutcome, ScanPruner, DEFAULT_BLOCK_ROWS};

use crate::stats::TableStats;
use crate::tpch::GeneratedTable;
use col_store::CompactedCols;
use qpe_sql::catalog::TableDef;
use qpe_sql::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-table freshness snapshot: how far the column store's delta region has
/// drifted from its base since the last compaction. Surfaced to the system
/// facade and the explainer's evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableFreshness {
    /// Table name.
    pub table: String,
    /// Monotonic write-version stamp (bumps on every write and compaction).
    pub version: u64,
    /// Rows in the immutable base segment.
    pub base_rows: usize,
    /// Rows buffered in the delta region since the last compaction
    /// (tombstoned delta rows included — this is the physical backlog).
    pub delta_rows: usize,
    /// Delta rows still live (not deleted again since insertion).
    pub live_delta_rows: usize,
    /// Rids tombstoned since the last compaction.
    pub deleted_rows: usize,
}

impl TableFreshness {
    /// Fraction of *live* data residing in the delta region (0.0 = fully
    /// compacted). A row inserted and then deleted contributes nothing.
    pub fn delta_fraction(&self) -> f64 {
        let live = (self.base_rows + self.delta_rows).saturating_sub(self.deleted_rows);
        if live == 0 {
            0.0
        } else {
            self.live_delta_rows.min(live) as f64 / live as f64
        }
    }
}

/// One statement's worth of logical operations against one table — the unit
/// the WAL logs and replay re-applies. Batched (a multi-row INSERT is one
/// op) so that replay triggers lazy stats refreshes at the *same* points of
/// the timeline the live run did.
#[derive(Debug, Clone, PartialEq)]
pub enum TableOp {
    /// Validated full-width rows appended by one statement.
    Insert {
        /// The rows, in insertion order.
        rows: Vec<Vec<Value>>,
    },
    /// Rids tombstoned by one statement (only *effective* deletes — rids
    /// that were live — are recorded, so replay flips exactly the same
    /// bits).
    Delete {
        /// The tombstoned rids.
        rids: Vec<u32>,
    },
    /// Relocating updates applied by one statement.
    Update {
        /// `(old rid, full new row)` pairs, in application order.
        changes: Vec<(u32, Vec<Value>)>,
    },
}

impl TableOp {
    /// Rewrites every rid through `remap` (used when an op recorded against
    /// the pre-compaction rid space must be logged/applied in the
    /// post-compaction space).
    pub(crate) fn translate(&self, remap: &RidRemap) -> TableOp {
        match self {
            TableOp::Insert { rows } => TableOp::Insert { rows: rows.clone() },
            TableOp::Delete { rids } => TableOp::Delete {
                rids: rids.iter().map(|&r| remap.translate_rid(r)).collect(),
            },
            TableOp::Update { changes } => TableOp::Update {
                changes: changes
                    .iter()
                    .map(|(r, row)| (remap.translate_rid(*r), row.clone()))
                    .collect(),
            },
        }
    }
}

/// Rid translation from a pre-compaction physical space into the space the
/// compaction produces: live pre-snapshot rids pack down to `0..n_live` in
/// ascending order, and rids appended after the snapshot follow
/// contiguously. Both the WAL (logging during a background build) and the
/// swap (re-applying the captured window) translate through the same map,
/// which is why replayed logs and the live timeline land on identical
/// physical states.
#[derive(Debug)]
pub struct RidRemap {
    /// Pre-snapshot physical rid → packed rid (`u32::MAX` = dead at
    /// snapshot; such rids can never appear in a captured op).
    map: Vec<u32>,
    /// Physical length at snapshot time.
    snap_phys: u32,
    /// Live rows at snapshot time (= first post-snapshot packed rid).
    n_live: u32,
}

impl RidRemap {
    /// Builds the packing map from a snapshot's tombstone bitmap.
    pub(crate) fn from_deleted(deleted: &[bool]) -> RidRemap {
        let mut map = Vec::with_capacity(deleted.len());
        let mut next = 0u32;
        for &dead in deleted {
            if dead {
                map.push(u32::MAX);
            } else {
                map.push(next);
                next += 1;
            }
        }
        RidRemap { map, snap_phys: deleted.len() as u32, n_live: next }
    }

    /// Translates one rid. Must only be fed rids that are live post-snapshot
    /// (captured ops guarantee this).
    pub(crate) fn translate_rid(&self, rid: u32) -> u32 {
        if rid < self.snap_phys {
            let packed = self.map[rid as usize];
            debug_assert_ne!(packed, u32::MAX, "op touched a rid dead at snapshot");
            packed
        } else {
            self.n_live + (rid - self.snap_phys)
        }
    }
}

/// Background-compaction bookkeeping of one table.
#[derive(Debug, Default)]
struct BgState {
    /// Bumps on every compaction (sync or background swap); a build whose
    /// snapshot epoch is stale aborts its swap.
    epoch: u64,
    /// A background build is running for this table.
    in_flight: bool,
    /// Ops applied since the snapshot (old rid space), re-applied on top of
    /// the swapped state.
    window: Option<Vec<TableOp>>,
    /// Translation for WAL records written during the build, so the log
    /// stays consistent with the `Compact` record at the snapshot point.
    wal_remap: Option<Arc<RidRemap>>,
}

/// Both physical representations of one logical table.
#[derive(Debug)]
pub struct StoredTable {
    /// Row-oriented copy with indexes (TP engine).
    pub rows: RowTable,
    /// Column-oriented copy with the delta region (AP engine).
    pub cols: ColumnTable,
    /// Background-compaction state.
    bg: BgState,
    /// Physical-design epoch: bumps whenever this table's plan-relevant
    /// physical design changes (index creation, encoding policy, zone block
    /// size, bloom toggles). The plan cache records the epochs a statement
    /// was planned under and revalidates on hit, so a design change on one
    /// table no longer evicts every other table's cached plans.
    design_epoch: u64,
}

impl StoredTable {
    /// Builds both representations from generated column-major data.
    pub fn load(def: &TableDef, data: &GeneratedTable) -> Self {
        let cols = ColumnTable::from_columns(&def.name, &data.columns);
        let rows = RowTable::from_columns(def, &data.columns);
        StoredTable { rows, cols, bg: BgState::default(), design_epoch: 0 }
    }

    /// A read-only AP view of this table pinned at the current epoch: the
    /// column store is [`ColumnTable::view_at`] the head version (O(width)
    /// `Arc` shares), the row store is an empty shell — AP plans never
    /// touch rows or indexes, and snapshot reads are AP-only.
    pub(crate) fn ap_view(&self, def: &TableDef) -> StoredTable {
        let cols = self
            .cols
            .view_at(self.cols.version())
            .expect("head epoch is always pinnable");
        StoredTable {
            rows: RowTable::from_physical(def, Vec::new(), Vec::new(), &[]),
            cols,
            bg: BgState::default(),
            design_epoch: self.design_epoch,
        }
    }

    /// Current physical-design epoch (see the field docs).
    pub fn design_epoch(&self) -> u64 {
        self.design_epoch
    }

    /// Marks a plan-relevant physical-design change.
    pub(crate) fn bump_design_epoch(&mut self) {
        self.design_epoch += 1;
    }

    /// Rebuilds a table from a recovered column-store segment: the row
    /// store decodes from the same physical slots (tombstoned slots keep
    /// their last tuple, like the live table) and indexes rebuild over live
    /// rows per the catalog.
    pub(crate) fn from_recovered(def: &TableDef, cols: ColumnTable) -> Self {
        let phys = cols.physical_len();
        let width = cols.width();
        let mut rows = Vec::with_capacity(phys);
        let mut deleted = Vec::with_capacity(phys);
        for rid in 0..phys {
            rows.push((0..width).map(|ci| cols.value(ci, rid)).collect());
            deleted.push(cols.is_deleted(rid));
        }
        let indexed: Vec<usize> = def
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| def.has_index(&c.name))
            .map(|(ci, _)| ci)
            .collect();
        let rows = RowTable::from_physical(def, rows, deleted, &indexed);
        StoredTable { rows, cols, bg: BgState::default(), design_epoch: 0 }
    }

    /// Live row count (identical in both representations).
    pub fn row_count(&self) -> usize {
        debug_assert_eq!(self.rows.row_count(), self.cols.row_count());
        self.rows.row_count()
    }

    /// Applies one insert to both copies. Returns the shared new rid.
    pub fn insert(&mut self, row: Vec<Value>) -> u32 {
        let rid_cols = self.cols.insert(&row);
        let rid_rows = self.rows.insert(row);
        debug_assert_eq!(rid_rows, rid_cols);
        rid_rows
    }

    /// Applies one delete to both copies. Returns whether the rid was live.
    pub fn delete(&mut self, rid: u32) -> bool {
        let was_live = self.rows.delete(rid);
        if was_live {
            self.cols.delete(rid);
        }
        was_live
    }

    /// Applies one update to both copies. Returns the row's shared new rid.
    pub fn update(&mut self, rid: u32, new_row: Vec<Value>) -> u32 {
        let rid_cols = self.cols.update(rid, &new_row);
        let rid_rows = self.rows.update(rid, new_row);
        debug_assert_eq!(rid_rows, rid_cols);
        rid_rows
    }

    /// Compacts both copies together: the column store merges its delta into
    /// the base, the row store drops tombstones, and the shared rid space
    /// re-packs to `0..row_count()`. A racing background build (if any) is
    /// invalidated: its snapshot epoch goes stale, so its swap aborts.
    pub fn compact(&mut self) {
        self.cols.compact();
        self.rows.compact();
        debug_assert_eq!(self.rows.physical_len(), self.cols.physical_len());
        // The rid spaces reconverge here (live rows pack identically from
        // either lineage), so pending window/translation state is obsolete.
        self.bg.epoch += 1;
        self.bg.window = None;
        self.bg.wal_remap = None;
    }

    /// True when DML against this table must be recorded into a
    /// background-build window.
    pub(crate) fn captures_window(&self) -> bool {
        self.bg.window.is_some()
    }

    /// Records one applied op into the build window, if one is open.
    pub(crate) fn record_op(&mut self, op: &TableOp) {
        if let Some(w) = &mut self.bg.window {
            w.push(op.clone());
        }
    }

    /// Rid translation WAL records must apply while a durable background
    /// build is in flight.
    pub(crate) fn wal_remap(&self) -> Option<&Arc<RidRemap>> {
        self.bg.wal_remap.as_ref()
    }

    /// True when the table has compaction debt (delta rows or tombstones).
    pub fn is_dirty(&self) -> bool {
        !self.cols.is_clean() || self.rows.has_deletions()
    }

    /// Compaction debt in rows: delta-region rows plus tombstoned slots.
    /// The background compactor triggers on this.
    pub fn compaction_debt(&self) -> usize {
        self.cols.delta_len() + (self.rows.physical_len() - self.rows.row_count())
    }

    /// Opens a background compaction: snapshots the column-store state in
    /// O(delta), starts window capture, and (when `durable`) arms the WAL
    /// rid translation. Returns `None` when the table is clean or a build
    /// is already in flight.
    pub(crate) fn begin_background_compact(
        &mut self,
        def: &TableDef,
        durable: bool,
    ) -> Option<CompactSnapshot> {
        if self.bg.in_flight || !self.is_dirty() {
            return None;
        }
        let cols = self.cols.snapshot();
        let remap = Arc::new(RidRemap::from_deleted(&cols.deleted_mask()));
        self.bg.in_flight = true;
        self.bg.window = Some(Vec::new());
        if durable {
            self.bg.wal_remap = Some(Arc::clone(&remap));
        }
        Some(CompactSnapshot { cols, def: def.clone(), remap, epoch: self.bg.epoch })
    }

    /// Rolls back [`StoredTable::begin_background_compact`] before anything
    /// escaped the lock (e.g. the WAL append of the `Compact` marker
    /// failed): no window was exposed, nothing to translate.
    pub(crate) fn abort_background_compact(&mut self) {
        self.bg.in_flight = false;
        self.bg.window = None;
        self.bg.wal_remap = None;
    }

    /// Swaps in an offline-built compaction. Returns the captured window
    /// (old rid space) + the offline stats + the remap to re-apply it with,
    /// or `None` when a synchronous compact invalidated the build.
    pub(crate) fn finish_background_compact(
        &mut self,
        built: CompactedTable,
    ) -> Option<(Vec<TableOp>, TableStats, Arc<RidRemap>)> {
        self.bg.in_flight = false;
        if built.epoch != self.bg.epoch {
            // A sync compact already reconverged the rid spaces and cleared
            // the window/remap; the stale build is simply dropped.
            return None;
        }
        let window = self.bg.window.take().unwrap_or_default();
        self.bg.wal_remap = None;
        self.bg.epoch += 1;
        self.cols.install_compacted(built.cols);
        self.rows.install_compacted(built.rows, built.indexes);
        debug_assert_eq!(self.rows.physical_len(), self.cols.physical_len());
        Some((window, built.stats, built.remap))
    }

    /// Current freshness snapshot of the column-store side.
    pub fn freshness(&self) -> TableFreshness {
        TableFreshness {
            table: self.cols.name().to_string(),
            version: self.cols.version(),
            base_rows: self.cols.physical_len() - self.cols.delta_len(),
            delta_rows: self.cols.delta_len(),
            live_delta_rows: self.cols.live_delta_len(),
            deleted_rows: self.cols.deleted_len(),
        }
    }
}

/// Everything a background compaction build needs, captured under the write
/// lock in O(delta) time. [`CompactSnapshot::build`] runs off-lock.
#[derive(Debug)]
pub(crate) struct CompactSnapshot {
    cols: ColumnTableSnapshot,
    def: TableDef,
    remap: Arc<RidRemap>,
    epoch: u64,
}

impl CompactSnapshot {
    /// The rid translation for ops logged while this build runs.
    #[cfg(test)]
    pub(crate) fn remap(&self) -> &Arc<RidRemap> {
        &self.remap
    }

    /// The expensive part, off the lock: gather live rows, re-run the
    /// encoding cost rule, rebuild zones, decode tuples for the row store,
    /// rebuild indexes, and recompute table statistics — byte-for-byte what
    /// a synchronous [`StoredTable::compact`] at snapshot time produces.
    pub(crate) fn build(self) -> CompactedTable {
        let live = self.cols.live_rids();
        let n_live = live.len();
        let width = self.cols.width();
        let mut base = Vec::with_capacity(width);
        for ci in 0..width {
            base.push(
                self.cols
                    .column_ref(ci)
                    .gather_rows(&live)
                    .encoded_with(self.cols.encoding_policy),
            );
        }
        let block_rows = self
            .cols
            .block_rows_override
            .unwrap_or_else(|| zone::default_block_rows(n_live));
        let zones = base.iter().map(|c| zone::column_zones(c, block_rows)).collect();
        let blooms = if self.cols.blooms_enabled {
            base.iter().map(|c| zone::column_blooms(c, block_rows)).collect()
        } else {
            Vec::new()
        };
        // Decode columns once; rows, indexes and stats all derive from it.
        let decoded: Vec<Vec<Value>> = base
            .iter()
            .map(|c| (0..n_live).map(|i| c.get(i)).collect())
            .collect();
        let rows: Vec<Vec<Value>> = (0..n_live)
            .map(|r| decoded.iter().map(|col| col[r].clone()).collect())
            .collect();
        let mut indexes = HashMap::new();
        for (ci, col) in self.def.columns.iter().enumerate() {
            if self.def.has_index(&col.name) {
                indexes.insert(ci, BTreeIndex::build(&decoded[ci]));
            }
        }
        let stats = TableStats::collect(self.cols.name.as_str(), &decoded);
        CompactedTable {
            cols: CompactedCols {
                base,
                n_live,
                block_rows,
                zones,
                blooms,
                new_version: self.cols.version + 1,
            },
            rows,
            indexes,
            stats,
            remap: self.remap,
            epoch: self.epoch,
        }
    }
}

/// The offline-built result of a background compaction, ready for
/// [`StoredTable::finish_background_compact`].
#[derive(Debug)]
pub(crate) struct CompactedTable {
    cols: CompactedCols,
    rows: Vec<Vec<Value>>,
    indexes: HashMap<usize, BTreeIndex>,
    stats: TableStats,
    remap: Arc<RidRemap>,
    epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::catalog::{ColumnDef, DataType};
    use qpe_sql::value::Value;

    fn tiny_table() -> (TableDef, GeneratedTable) {
        let def = TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "k".into(), data_type: DataType::Int, ndv: 4 },
                ColumnDef { name: "s".into(), data_type: DataType::Str, ndv: 2 },
            ],
            row_count: 4,
            indexed_columns: vec!["s".into()],
            primary_key: "k".into(),
        };
        let data = GeneratedTable {
            name: "t".into(),
            columns: vec![
                vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
                vec![
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                ],
            ],
        };
        (def, data)
    }

    #[test]
    fn both_representations_agree() {
        let (def, data) = tiny_table();
        let st = StoredTable::load(&def, &data);
        assert_eq!(st.row_count(), 4);
        for r in 0..4 {
            for c in 0..2 {
                assert_eq!(st.rows.row(r)[c], st.cols.value(c, r));
            }
        }
    }

    /// The load-bearing invariant of the mutable design: after any write
    /// sequence, both copies hold the same live rows at the same rids.
    fn assert_aligned(st: &StoredTable) {
        assert_eq!(st.rows.physical_len(), st.cols.physical_len());
        assert_eq!(st.rows.row_count(), st.cols.row_count());
        for rid in 0..st.rows.physical_len() {
            assert_eq!(st.rows.is_deleted(rid), st.cols.is_deleted(rid));
            if !st.rows.is_deleted(rid) {
                for c in 0..st.rows.width() {
                    assert_eq!(st.rows.row(rid)[c], st.cols.value(c, rid));
                }
            }
        }
    }

    #[test]
    fn writes_keep_copies_rid_aligned() {
        let (def, data) = tiny_table();
        let mut st = StoredTable::load(&def, &data);
        let rid = st.insert(vec![Value::Int(5), Value::Str("c".into())]);
        assert_eq!(rid, 4);
        assert_aligned(&st);
        assert!(st.delete(1));
        assert!(!st.delete(1));
        assert_aligned(&st);
        let new_rid = st.update(0, vec![Value::Int(10), Value::Str("a2".into())]);
        assert_eq!(new_rid, 5);
        assert_aligned(&st);
        assert_eq!(st.row_count(), 4);
        // indexes track the writes
        assert_eq!(st.rows.index_on(0).unwrap().lookup(&Value::Int(10)), &[5]);
        assert!(st.rows.index_on(0).unwrap().lookup(&Value::Int(1)).is_empty());
    }

    #[test]
    fn compact_realigns_both_sides() {
        let (def, data) = tiny_table();
        let mut st = StoredTable::load(&def, &data);
        st.insert(vec![Value::Int(5), Value::Str("c".into())]);
        st.delete(2);
        st.update(0, vec![Value::Int(11), Value::Str("z".into())]);
        let fresh = st.freshness();
        assert_eq!(fresh.delta_rows, 2);
        assert_eq!(fresh.deleted_rows, 2);
        assert!(fresh.delta_fraction() > 0.0);
        st.compact();
        assert_aligned(&st);
        assert_eq!(st.row_count(), 4);
        let fresh = st.freshness();
        assert_eq!(fresh.delta_rows, 0);
        assert_eq!(fresh.deleted_rows, 0);
        assert_eq!(fresh.delta_fraction(), 0.0);
        // index rids re-packed with the shared rid space
        assert_eq!(st.rows.index_on(0).unwrap().lookup(&Value::Int(11)), &[3]);
    }

    #[test]
    fn rid_remap_packs_live_and_extends_tail() {
        let remap = RidRemap::from_deleted(&[false, true, false, true, false]);
        assert_eq!(remap.translate_rid(0), 0);
        assert_eq!(remap.translate_rid(2), 1);
        assert_eq!(remap.translate_rid(4), 2);
        // Post-snapshot appends continue contiguously after the packed live.
        assert_eq!(remap.translate_rid(5), 3);
        assert_eq!(remap.translate_rid(7), 5);
    }

    /// Background compaction must land on the exact state a synchronous
    /// compaction (then the same ops) would produce — including when writes
    /// arrive between snapshot and swap.
    #[test]
    fn background_build_with_window_matches_sync_compact() {
        let (def, data) = tiny_table();
        // Build two identical tables.
        let mut bg = StoredTable::load(&def, &data);
        let mut sync = StoredTable::load(&def, &data);
        for st in [&mut bg, &mut sync] {
            st.insert(vec![Value::Int(5), Value::Str("c".into())]);
            st.delete(1);
        }
        // bg: snapshot, then apply window ops *before* the swap.
        let snap = bg.begin_background_compact(&def, false).expect("dirty table");
        assert!(bg.captures_window());
        let window_ops = [
            TableOp::Insert { rows: vec![vec![Value::Int(6), Value::Str("d".into())]] },
            TableOp::Delete { rids: vec![0] },
            TableOp::Update { changes: vec![(4, vec![Value::Int(50), Value::Str("e".into())])] },
        ];
        // Apply + record, the way the engine's apply_* entry points do.
        bg.insert(vec![Value::Int(6), Value::Str("d".into())]);
        bg.delete(0);
        bg.update(4, vec![Value::Int(50), Value::Str("e".into())]);
        for op in &window_ops {
            bg.record_op(op);
        }
        // sync: compact at the snapshot point, then the same ops replayed
        // through the remap (the swap path below does exactly this).
        sync.compact();
        let remap = Arc::clone(snap.remap());
        for op in &window_ops {
            match op.translate(&remap) {
                TableOp::Insert { rows } => {
                    for r in rows {
                        sync.insert(r);
                    }
                }
                TableOp::Delete { rids } => {
                    for r in rids {
                        sync.delete(r);
                    }
                }
                TableOp::Update { changes } => {
                    for (r, row) in changes {
                        sync.update(r, row);
                    }
                }
            }
        }
        // Swap the offline build in and re-apply the captured window.
        let built = snap.build();
        let (window, _stats, remap2) = bg.finish_background_compact(built).expect("fresh epoch");
        assert_eq!(window.len(), 3);
        for op in &window {
            match op.translate(&remap2) {
                TableOp::Insert { rows } => {
                    for r in rows {
                        bg.insert(r);
                    }
                }
                TableOp::Delete { rids } => {
                    for r in rids {
                        bg.delete(r);
                    }
                }
                TableOp::Update { changes } => {
                    for (r, row) in changes {
                        bg.update(r, row);
                    }
                }
            }
        }
        assert_aligned(&bg);
        assert_aligned(&sync);
        assert_eq!(bg.rows.physical_len(), sync.rows.physical_len());
        for rid in 0..bg.rows.physical_len() {
            assert_eq!(bg.rows.is_deleted(rid), sync.rows.is_deleted(rid));
            if !bg.rows.is_deleted(rid) {
                assert_eq!(bg.rows.row(rid), sync.rows.row(rid));
            }
        }
        assert_eq!(bg.cols.version(), sync.cols.version());
    }

    #[test]
    fn stale_background_build_aborts_after_sync_compact() {
        let (def, data) = tiny_table();
        let mut st = StoredTable::load(&def, &data);
        st.delete(0);
        let snap = st.begin_background_compact(&def, true).expect("dirty");
        assert!(st.wal_remap().is_some());
        // A synchronous compact intervenes: epoch bumps, window clears.
        st.compact();
        assert!(st.wal_remap().is_none());
        assert!(!st.captures_window());
        let built = snap.build();
        assert!(st.finish_background_compact(built).is_none(), "stale build must abort");
        // The table is usable and a new build can start after more writes.
        st.insert(vec![Value::Int(9), Value::Str("z".into())]);
        assert!(st.begin_background_compact(&def, false).is_some());
    }
}
