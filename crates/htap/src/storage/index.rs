//! B-tree secondary indexes for the row store.
//!
//! Indexes map a column value to the row ids holding it. The TP optimizer
//! uses them for equality/IN lookups and for ordered (range / top-N) access;
//! the AP engine deliberately has none — the asymmetry the paper's expert
//! explanations repeatedly hinge on ("TP has to use nested loop join with no
//! index available").

use qpe_sql::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A total-order wrapper so [`Value`] can key a `BTreeMap`.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyVal(pub Value);

impl Eq for KeyVal {}

impl PartialOrd for KeyVal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyVal {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A B-tree index from column value to row ids (row ids ascending).
#[derive(Debug, Default)]
pub struct BTreeIndex {
    map: BTreeMap<KeyVal, Vec<u32>>,
    entries: usize,
}

impl BTreeIndex {
    /// Builds an index over `values`, where position = row id.
    pub fn build(values: &[Value]) -> Self {
        let mut map: BTreeMap<KeyVal, Vec<u32>> = BTreeMap::new();
        for (rid, v) in values.iter().enumerate() {
            map.entry(KeyVal(v.clone())).or_default().push(rid as u32);
        }
        let entries = values.len();
        BTreeIndex { map, entries }
    }

    /// Adds one `(key, rid)` entry, keeping per-key rid lists ascending.
    /// This is the in-place write path: every row-store insert/update/delete
    /// maintains its indexes eagerly, so index reads never see stale rids.
    pub fn insert(&mut self, key: Value, rid: u32) {
        let rids = self.map.entry(KeyVal(key)).or_default();
        match rids.binary_search(&rid) {
            Ok(_) => return, // already present (idempotent)
            Err(pos) => rids.insert(pos, rid),
        }
        self.entries += 1;
    }

    /// Removes one `(key, rid)` entry; returns whether it was present.
    pub fn remove(&mut self, key: &Value, rid: u32) -> bool {
        let Some(rids) = self.map.get_mut(&KeyVal(key.clone())) else {
            return false;
        };
        let Ok(pos) = rids.binary_search(&rid) else {
            return false;
        };
        rids.remove(pos);
        if rids.is_empty() {
            self.map.remove(&KeyVal(key.clone()));
        }
        self.entries -= 1;
        true
    }

    /// Row ids with exactly this key.
    pub fn lookup(&self, key: &Value) -> &[u32] {
        self.map
            .get(&KeyVal(key.clone()))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Row ids for any of `keys` (deduplicated, ascending).
    pub fn lookup_many(&self, keys: &[Value]) -> Vec<u32> {
        self.lookup_many_refs(keys.iter())
    }

    /// [`BTreeIndex::lookup_many`] over borrowed keys — the executor's index
    /// scans resolve plan terms to references, no per-execution key clones.
    pub fn lookup_many_refs<'a>(&self, keys: impl Iterator<Item = &'a Value>) -> Vec<u32> {
        let mut out: Vec<u32> = keys.flat_map(|k| self.lookup(k).iter().copied()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Row ids whose key lies in `[low, high]` (either bound optional).
    pub fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<u32> {
        // An inverted range (e.g. BETWEEN 300 AND 1) matches nothing;
        // BTreeMap::range panics on start > end instead of returning empty.
        if let (Some(l), Some(h)) = (low, high) {
            if l.total_cmp(h) == std::cmp::Ordering::Greater {
                return Vec::new();
            }
        }
        let lo = match low {
            Some(v) => Bound::Included(KeyVal(v.clone())),
            None => Bound::Unbounded,
        };
        let hi = match high {
            Some(v) => Bound::Included(KeyVal(v.clone())),
            None => Bound::Unbounded,
        };
        self.map
            .range((lo, hi))
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// Row ids in key order (ascending or descending) — used for
    /// index-ordered top-N scans.
    pub fn ordered_row_ids(&self, descending: bool) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.entries);
        if descending {
            for (_, rids) in self.map.iter().rev() {
                out.extend_from_slice(rids);
            }
        } else {
            for rids in self.map.values() {
                out.extend_from_slice(rids);
            }
        }
        out
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeIndex {
        BTreeIndex::build(&[
            Value::Int(5),
            Value::Int(3),
            Value::Int(5),
            Value::Int(1),
            Value::Int(4),
        ])
    }

    #[test]
    fn lookup_finds_all_duplicates() {
        let idx = sample();
        assert_eq!(idx.lookup(&Value::Int(5)), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Int(99)), &[] as &[u32]);
    }

    #[test]
    fn lookup_many_dedups_and_sorts() {
        let idx = sample();
        let rids = idx.lookup_many(&[Value::Int(5), Value::Int(1), Value::Int(5)]);
        assert_eq!(rids, vec![0, 2, 3]);
    }

    #[test]
    fn range_is_inclusive() {
        let idx = sample();
        let rids = idx.range(Some(&Value::Int(3)), Some(&Value::Int(5)));
        // keys 3,4,5 → rows 1,4,0,2 in key order
        assert_eq!(rids, vec![1, 4, 0, 2]);
    }

    #[test]
    fn inverted_range_is_empty_not_a_panic() {
        // e.g. `WHERE k BETWEEN 5 AND 3` planned as an index range: matches
        // nothing (BTreeMap::range would panic on start > end).
        let idx = sample();
        assert!(idx.range(Some(&Value::Int(5)), Some(&Value::Int(3))).is_empty());
        assert_eq!(idx.range(Some(&Value::Int(3)), Some(&Value::Int(3))), vec![1]);
    }

    #[test]
    fn open_ranges() {
        let idx = sample();
        assert_eq!(idx.range(None, Some(&Value::Int(1))), vec![3]);
        assert_eq!(idx.range(Some(&Value::Int(5)), None), vec![0, 2]);
        assert_eq!(idx.range(None, None).len(), 5);
    }

    #[test]
    fn ordered_row_ids_both_directions() {
        let idx = sample();
        assert_eq!(idx.ordered_row_ids(false), vec![3, 1, 4, 0, 2]);
        assert_eq!(idx.ordered_row_ids(true), vec![0, 2, 4, 1, 3]);
    }

    #[test]
    fn counts() {
        let idx = sample();
        assert_eq!(idx.distinct_keys(), 4);
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        assert!(BTreeIndex::build(&[]).is_empty());
    }

    #[test]
    fn insert_and_remove_maintain_entries() {
        let mut idx = sample();
        idx.insert(Value::Int(5), 7);
        assert_eq!(idx.lookup(&Value::Int(5)), &[0, 2, 7]);
        assert_eq!(idx.len(), 6);
        // duplicate insert is idempotent
        idx.insert(Value::Int(5), 7);
        assert_eq!(idx.len(), 6);
        assert!(idx.remove(&Value::Int(5), 2));
        assert_eq!(idx.lookup(&Value::Int(5)), &[0, 7]);
        assert!(!idx.remove(&Value::Int(5), 2));
        assert!(!idx.remove(&Value::Int(99), 0));
        assert_eq!(idx.len(), 5);
        // removing the last rid of a key drops the key entirely
        assert!(idx.remove(&Value::Int(3), 1));
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn string_keys_order_lexicographically() {
        let idx = BTreeIndex::build(&[
            Value::Str("b".into()),
            Value::Str("a".into()),
            Value::Str("c".into()),
        ]);
        assert_eq!(idx.ordered_row_ids(false), vec![1, 0, 2]);
    }
}
