//! Crash-aware file I/O: the thin layer every durable byte passes through.
//!
//! Durability code is only as trustworthy as its failure testing, so this
//! module makes the failure model *explicit and injectable*:
//!
//! * [`DurableFile`] simulates the page cache: `write` buffers bytes in
//!   memory and only [`DurableFile::flush`] moves them to the OS file and
//!   `fsync`s. A crash between `write` and `flush` therefore loses exactly
//!   the unflushed suffix — the same contract a real kernel gives a real
//!   database after a power cut.
//! * [`FailPoints`] is a per-system registry of armed crash sites. Every
//!   flush (and a few non-file control points like the manifest rename)
//!   consults it; when a site fires, the file persists only a prefix of the
//!   pending bytes (a *torn write*) and the whole registry trips into a
//!   poisoned state where every further I/O returns
//!   [`DurabilityError::Crashed`] — the process is "dead" from the storage
//!   layer's point of view, even though the test harness keeps running and
//!   can immediately re-open the directory to exercise recovery.
//!
//! Fail points are deliberately per-system (not global) so crash tests run
//! in parallel, and [`crc32`] is the checksum every WAL record and segment
//! file carries so recovery can *detect* the torn suffixes this module
//! creates.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Errors from the durability layer (WAL, segments, manifest, recovery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// Underlying filesystem error.
    Io(String),
    /// A simulated crash fired (or the system is poisoned by an earlier
    /// one): no further I/O will succeed until the directory is re-opened.
    Crashed,
    /// Persistent state failed validation (checksum mismatch, bad magic,
    /// truncated payload, undecodable record).
    Corrupt(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "io: {e}"),
            DurabilityError::Crashed => write!(f, "simulated crash (storage poisoned)"),
            DurabilityError::Corrupt(e) => write!(f, "corrupt persistent state: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e.to_string())
    }
}

/// One armed crash site.
#[derive(Debug, Clone)]
struct ArmedPoint {
    /// Fire on the n-th hit (1 = the very next hit).
    countdown: u32,
    /// Fraction of pending bytes that still reach the file at a flush site
    /// before the crash (0.0 = nothing, 0.5 = torn in half, 1.0 = the flush
    /// itself completes and the crash lands just after).
    keep_fraction: f64,
}

#[derive(Debug, Default)]
struct FailPointsInner {
    armed: Mutex<HashMap<String, ArmedPoint>>,
    crashed: AtomicBool,
}

/// Injectable crash-site registry, shared by every durable file of one
/// system. Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct FailPoints {
    inner: Arc<FailPointsInner>,
}

impl FailPoints {
    /// Arms `site` to crash on its `countdown`-th hit, persisting none of
    /// the bytes pending at that point.
    pub fn arm(&self, site: &str, countdown: u32) {
        self.arm_partial(site, countdown, 0.0);
    }

    /// Arms `site` to crash on its `countdown`-th hit after persisting
    /// `keep_fraction` of the pending bytes — the torn-write case recovery
    /// checksums exist for.
    pub fn arm_partial(&self, site: &str, countdown: u32, keep_fraction: f64) {
        let mut armed = lock_unpoisoned(&self.inner.armed);
        armed.insert(
            site.to_string(),
            ArmedPoint { countdown: countdown.max(1), keep_fraction: keep_fraction.clamp(0.0, 1.0) },
        );
    }

    /// True once any armed site has fired (every later I/O call fails).
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Trips the crashed state directly (an "anywhere" kill, no site).
    pub fn trip(&self) {
        self.inner.crashed.store(true, Ordering::SeqCst);
    }

    /// Records a hit on `site`. Returns `Some(keep_fraction)` when the site
    /// fires now (and poisons the registry), `Err` when already poisoned.
    pub(crate) fn observe(&self, site: &str) -> Result<Option<f64>, DurabilityError> {
        if self.crashed() {
            return Err(DurabilityError::Crashed);
        }
        let mut armed = lock_unpoisoned(&self.inner.armed);
        let Some(point) = armed.get_mut(site) else {
            return Ok(None);
        };
        point.countdown -= 1;
        if point.countdown > 0 {
            return Ok(None);
        }
        let keep = point.keep_fraction;
        armed.remove(site);
        self.inner.crashed.store(true, Ordering::SeqCst);
        Ok(Some(keep))
    }

    /// Control-point check for non-file sites (e.g. around the manifest
    /// rename): errors if the site fires or the registry is poisoned.
    pub(crate) fn hit(&self, site: &str) -> Result<(), DurabilityError> {
        match self.observe(site)? {
            Some(_) => Err(DurabilityError::Crashed),
            None => Ok(()),
        }
    }
}

fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bytes the log-tuned constructors grow the file by ahead of the append
/// point. Appends inside the preallocated region never change the file's
/// size, so each flush's `fdatasync` skips the metadata journal — the size
/// update (and its fsync) is paid once per chunk instead of once per
/// commit.
const LOG_PREALLOC_CHUNK: u64 = 1 << 20;

/// `O_DSYNC` on Linux: every `write(2)` returns only once the data is
/// durable, collapsing the write + `fdatasync` pair into one syscall.
#[cfg(target_os = "linux")]
const O_DSYNC: i32 = 0x1000;

/// A file whose writes buffer in memory (the simulated page cache) until
/// [`DurableFile::flush`] pushes them down with an `fsync`. All durability
/// code writes through this type so the crash harness controls exactly
/// which bytes survive.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    /// Bytes written but not yet flushed — lost on crash.
    pending: Vec<u8>,
    fp: FailPoints,
    /// Fail-point site consulted by every flush of this file.
    site: &'static str,
    /// Durable bytes written through this handle (the file cursor).
    pos: u64,
    /// Current preallocated file length; flushes extend it chunk-wise.
    prealloc: u64,
    /// Preallocation chunk size (0 = plain file, never preallocated).
    chunk: u64,
    /// File opened `O_DSYNC`: writes are synchronous, flush skips the
    /// separate `fdatasync`.
    dsync: bool,
}

impl DurableFile {
    /// Creates (truncating) a file for writing.
    pub fn create(
        path: &Path,
        fp: FailPoints,
        site: &'static str,
    ) -> Result<DurableFile, DurabilityError> {
        if fp.crashed() {
            return Err(DurabilityError::Crashed);
        }
        let file = File::create(path)?;
        Ok(DurableFile {
            file,
            pending: Vec::new(),
            fp,
            site,
            pos: 0,
            prealloc: 0,
            chunk: 0,
            dsync: false,
        })
    }

    /// Creates (truncating) an append-only log file with the WAL tuning:
    /// chunk-wise preallocation and `O_DSYNC`-style synchronous appends
    /// (where the platform offers the flag). Crash semantics are identical
    /// to [`DurableFile::create`] — only the syscall count per flush drops.
    pub fn create_log(
        path: &Path,
        fp: FailPoints,
        site: &'static str,
    ) -> Result<DurableFile, DurabilityError> {
        Self::open_log(path, fp, site, true)
    }

    /// Opens a log file for appending (recovery re-opens the tail WAL file
    /// after truncating its torn suffix), with the same tuning as
    /// [`DurableFile::create_log`].
    pub fn open_append(
        path: &Path,
        fp: FailPoints,
        site: &'static str,
    ) -> Result<DurableFile, DurabilityError> {
        Self::open_log(path, fp, site, false)
    }

    fn open_log(
        path: &Path,
        fp: FailPoints,
        site: &'static str,
        truncate: bool,
    ) -> Result<DurableFile, DurabilityError> {
        if fp.crashed() {
            return Err(DurabilityError::Crashed);
        }
        let mut opts = OpenOptions::new();
        opts.write(true).create(true).truncate(truncate);
        #[cfg(target_os = "linux")]
        {
            use std::os::unix::fs::OpenOptionsExt;
            opts.custom_flags(O_DSYNC);
        }
        let mut file = opts.open(path)?;
        let pos = file.seek(SeekFrom::End(0))?;
        Ok(DurableFile {
            file,
            pending: Vec::new(),
            fp,
            site,
            pos,
            prealloc: pos,
            chunk: LOG_PREALLOC_CHUNK,
            dsync: cfg!(target_os = "linux"),
        })
    }

    /// Buffers bytes (nothing durable yet).
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), DurabilityError> {
        if self.fp.crashed() {
            return Err(DurabilityError::Crashed);
        }
        self.pending.extend_from_slice(bytes);
        Ok(())
    }

    /// Extends the preallocated region when the pending flush would write
    /// past it, syncing the new size once — steady-state flushes then never
    /// touch file metadata.
    fn reserve(&mut self, add: u64) -> Result<(), DurabilityError> {
        if self.chunk == 0 || self.pos + add <= self.prealloc {
            return Ok(());
        }
        self.prealloc = (self.pos + add).div_ceil(self.chunk) * self.chunk;
        self.file.set_len(self.prealloc)?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Pushes pending bytes to the file and `fsync`s. If the flush site is
    /// armed, only the configured prefix of the pending bytes reaches the
    /// file (torn write) and the call fails with
    /// [`DurabilityError::Crashed`].
    pub fn flush(&mut self) -> Result<(), DurabilityError> {
        match self.fp.observe(self.site)? {
            None => {
                self.reserve(self.pending.len() as u64)?;
                self.file.write_all(&self.pending)?;
                if !self.dsync {
                    self.file.sync_data()?;
                }
                self.pos += self.pending.len() as u64;
                self.pending.clear();
                Ok(())
            }
            Some(keep_fraction) => {
                let keep = (self.pending.len() as f64 * keep_fraction).floor() as usize;
                let keep = keep.min(self.pending.len());
                // Best-effort torn write: the prefix that "made it to disk"
                // before the kill.
                let _ = self.file.write_all(&self.pending[..keep]);
                let _ = self.file.sync_data();
                self.pending.clear();
                Err(DurabilityError::Crashed)
            }
        }
    }

    /// Bytes buffered but not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

// NOTE: no flush-on-Drop. A dropped DurableFile loses its pending bytes —
// exactly the crash semantics the harness relies on.

const CRC32_POLY: u32 = 0xEDB8_8320;

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { CRC32_POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// IEEE CRC-32 (the zlib polynomial), table-driven. Every WAL record and
/// segment file carries one so recovery can tell a torn tail from good data.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn unflushed_writes_are_lost_and_flush_persists() {
        let dir = std::env::temp_dir().join(format!("qpe_dio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f1");
        let fp = FailPoints::default();
        let mut f = DurableFile::create(&path, fp.clone(), "t").unwrap();
        f.write(b"hello").unwrap();
        assert_eq!(f.pending_len(), 5);
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        f.flush().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        f.write(b" world").unwrap();
        drop(f); // crash before flush: suffix lost
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn armed_flush_tears_the_write_and_poisons_everything() {
        let dir = std::env::temp_dir().join(format!("qpe_dio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f2");
        let fp = FailPoints::default();
        fp.arm_partial("t", 2, 0.5);
        let mut f = DurableFile::create(&path, fp.clone(), "t").unwrap();
        f.write(b"aaaa").unwrap();
        f.flush().unwrap(); // hit 1: survives
        f.write(b"bbbb").unwrap();
        assert_eq!(f.flush(), Err(DurabilityError::Crashed)); // hit 2: torn
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaabb");
        assert!(fp.crashed());
        // Everything is poisoned from here on.
        assert_eq!(f.write(b"x"), Err(DurabilityError::Crashed));
        assert!(DurableFile::create(&path, fp.clone(), "t").is_err());
        assert_eq!(fp.hit("other"), Err(DurabilityError::Crashed));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn countdown_and_plain_sites() {
        let fp = FailPoints::default();
        fp.arm("ctl", 3);
        assert!(fp.hit("ctl").is_ok());
        assert!(fp.hit("other").is_ok());
        assert!(fp.hit("ctl").is_ok());
        assert_eq!(fp.hit("ctl"), Err(DurabilityError::Crashed));
        assert!(fp.crashed());
    }
}
