//! Crash-aware file I/O: the thin layer every durable byte passes through.
//!
//! Durability code is only as trustworthy as its failure testing, so this
//! module makes the failure model *explicit and injectable*:
//!
//! * [`DurableFile`] simulates the page cache: `write` buffers bytes in
//!   memory and only [`DurableFile::flush`] moves them to the OS file and
//!   `fsync`s. A crash between `write` and `flush` therefore loses exactly
//!   the unflushed suffix — the same contract a real kernel gives a real
//!   database after a power cut.
//! * [`FailPoints`] is a per-system registry of armed crash sites. Every
//!   flush (and a few non-file control points like the manifest rename)
//!   consults it; when a site fires, the file persists only a prefix of the
//!   pending bytes (a *torn write*) and the whole registry trips into a
//!   poisoned state where every further I/O returns
//!   [`DurabilityError::Crashed`] — the process is "dead" from the storage
//!   layer's point of view, even though the test harness keeps running and
//!   can immediately re-open the directory to exercise recovery.
//!
//! Beyond crashes, the registry models two further failure classes:
//!
//! * **Transient errors** ([`FailPoints::arm_errors`]): a site returns
//!   [`DurabilityError::Io`] for its next N hits and then heals — the disk
//!   hiccup / EINTR / throttled-volume class. Unlike a crash, nothing is
//!   poisoned and *no bytes move*: an armed flush fails before writing, so
//!   the pending buffer survives intact and a retry re-flushes exactly the
//!   same data. [`RetryPolicy`] is the bounded exponential-backoff loop the
//!   engine wraps around every durable write to absorb this class.
//! * **Injected panics** ([`FailPoints::arm_panic`]): a one-shot panic at a
//!   named control point, used to prove statement containment (a panicking
//!   statement must not take the system down with it).
//!
//! Fail points are deliberately per-system (not global) so crash tests run
//! in parallel, and [`crc32`] is the checksum every WAL record and segment
//! file carries so recovery can *detect* the torn suffixes this module
//! creates.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Errors from the durability layer (WAL, segments, manifest, recovery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// Underlying filesystem error.
    Io(String),
    /// A simulated crash fired (or the system is poisoned by an earlier
    /// one): no further I/O will succeed until the directory is re-opened.
    Crashed,
    /// Persistent state failed validation (checksum mismatch, bad magic,
    /// truncated payload, undecodable record).
    Corrupt(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "io: {e}"),
            DurabilityError::Crashed => write!(f, "simulated crash (storage poisoned)"),
            DurabilityError::Corrupt(e) => write!(f, "corrupt persistent state: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e.to_string())
    }
}

/// One armed crash site.
#[derive(Debug, Clone)]
struct ArmedPoint {
    /// Fire on the n-th hit (1 = the very next hit).
    countdown: u32,
    /// Fraction of pending bytes that still reach the file at a flush site
    /// before the crash (0.0 = nothing, 0.5 = torn in half, 1.0 = the flush
    /// itself completes and the crash lands just after).
    keep_fraction: f64,
}

#[derive(Debug, Default)]
struct FailPointsInner {
    armed: Mutex<HashMap<String, ArmedPoint>>,
    crashed: AtomicBool,
    /// Sites armed to return transient `Io` errors: remaining error count.
    err_armed: Mutex<HashMap<String, u32>>,
    /// Sites armed to panic exactly once.
    panic_armed: Mutex<HashSet<String>>,
}

/// Injectable crash-site registry, shared by every durable file of one
/// system. Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct FailPoints {
    inner: Arc<FailPointsInner>,
}

impl FailPoints {
    /// Arms `site` to crash on its `countdown`-th hit, persisting none of
    /// the bytes pending at that point.
    pub fn arm(&self, site: &str, countdown: u32) {
        self.arm_partial(site, countdown, 0.0);
    }

    /// Arms `site` to crash on its `countdown`-th hit after persisting
    /// `keep_fraction` of the pending bytes — the torn-write case recovery
    /// checksums exist for.
    pub fn arm_partial(&self, site: &str, countdown: u32, keep_fraction: f64) {
        let mut armed = lock_unpoisoned(&self.inner.armed);
        armed.insert(
            site.to_string(),
            ArmedPoint { countdown: countdown.max(1), keep_fraction: keep_fraction.clamp(0.0, 1.0) },
        );
    }

    /// True once any armed site has fired (every later I/O call fails).
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Trips the crashed state directly (an "anywhere" kill, no site).
    pub fn trip(&self) {
        self.inner.crashed.store(true, Ordering::SeqCst);
    }

    /// Records a hit on `site`. Returns `Some(keep_fraction)` when the site
    /// fires now (and poisons the registry), `Err` when already poisoned.
    pub(crate) fn observe(&self, site: &str) -> Result<Option<f64>, DurabilityError> {
        if self.crashed() {
            return Err(DurabilityError::Crashed);
        }
        let mut armed = lock_unpoisoned(&self.inner.armed);
        let Some(point) = armed.get_mut(site) else {
            return Ok(None);
        };
        point.countdown -= 1;
        if point.countdown > 0 {
            return Ok(None);
        }
        let keep = point.keep_fraction;
        armed.remove(site);
        self.inner.crashed.store(true, Ordering::SeqCst);
        Ok(Some(keep))
    }

    /// Control-point check for non-file sites (e.g. around the manifest
    /// rename): errors if the site fires or the registry is poisoned.
    pub(crate) fn hit(&self, site: &str) -> Result<(), DurabilityError> {
        if let Some(e) = self.transient_error(site) {
            return Err(e);
        }
        match self.observe(site)? {
            Some(_) => Err(DurabilityError::Crashed),
            None => Ok(()),
        }
    }

    /// Arms `site` to return [`DurabilityError::Io`] for its next `count`
    /// hits, then heal. Unlike [`FailPoints::arm`], nothing is poisoned and
    /// no bytes are torn — the failing operation leaves its pending state
    /// intact, so a retry can succeed once the site heals.
    pub fn arm_errors(&self, site: &str, count: u32) {
        let mut errs = lock_unpoisoned(&self.inner.err_armed);
        if count == 0 {
            errs.remove(site);
        } else {
            errs.insert(site.to_string(), count);
        }
    }

    /// Heals `site` immediately, discarding any remaining transient-error
    /// budget (a disk that recovered faster than expected).
    pub fn heal(&self, site: &str) {
        lock_unpoisoned(&self.inner.err_armed).remove(site);
    }

    /// Remaining transient-error count armed at `site` (0 = healed).
    pub fn transient_remaining(&self, site: &str) -> u32 {
        lock_unpoisoned(&self.inner.err_armed).get(site).copied().unwrap_or(0)
    }

    /// Consumes one transient-error charge at `site`, if armed.
    pub(crate) fn transient_error(&self, site: &str) -> Option<DurabilityError> {
        let mut errs = lock_unpoisoned(&self.inner.err_armed);
        let n = errs.get_mut(site)?;
        *n -= 1;
        if *n == 0 {
            errs.remove(site);
        }
        Some(DurabilityError::Io(format!("injected transient I/O error at {site}")))
    }

    /// Arms `site` to panic on its next [`FailPoints::panic_if_armed`] — a
    /// one-shot statement-containment probe.
    pub fn arm_panic(&self, site: &str) {
        lock_unpoisoned(&self.inner.panic_armed).insert(site.to_string());
    }

    /// Panics if `site` is armed (consuming the arming). Callers place this
    /// at the control point whose panic behavior they want to prove safe.
    pub fn panic_if_armed(&self, site: &str) {
        if lock_unpoisoned(&self.inner.panic_armed).remove(site) {
            panic!("injected panic at {site}");
        }
    }
}

/// Locks a mutex, recovering from poisoning. Safe for the registries and
/// counters this crate guards with it: their state is updated atomically
/// (insert/remove/increment), so a panicking holder cannot leave them
/// half-written.
pub(crate) fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bounded retry with exponential backoff + jitter for transient durable-I/O
/// failures. This is the engine's *only* tolerance for I/O errors: an
/// operation that still fails after `max_attempts` (or fails non-retryably)
/// escalates to the caller, which trips read-only degraded mode.
///
/// What is retryable: plain [`DurabilityError::Io`] — the EINTR / hiccuping
/// volume class. What is not: `Io` carrying an ENOSPC-class message ("No
/// space left"), which retrying cannot fix; [`DurabilityError::Crashed`]
/// (the harness's simulated process death); and
/// [`DurabilityError::Corrupt`] (retrying would re-read the same bad bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first failure escalates).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Whether `e` is worth retrying at all.
    pub fn is_retryable(e: &DurabilityError) -> bool {
        match e {
            DurabilityError::Io(msg) => !msg.contains("No space left"),
            DurabilityError::Crashed | DurabilityError::Corrupt(_) => false,
        }
    }

    /// Runs `op` under the policy. Returns the final result plus the number
    /// of retries consumed (0 = first attempt succeeded or failed
    /// non-retryably).
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, DurabilityError>,
    ) -> (Result<T, DurabilityError>, u32) {
        let mut backoff = self.base_backoff;
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) => {
                    if retries + 1 >= self.max_attempts || !Self::is_retryable(&e) {
                        return (Err(e), retries);
                    }
                    retries += 1;
                    if !backoff.is_zero() {
                        // Full backoff plus up to 50% jitter so colliding
                        // writers decorrelate.
                        let half = (backoff.as_nanos() as u64 / 2).max(1);
                        std::thread::sleep(backoff + Duration::from_nanos(jitter_below(half)));
                    }
                    backoff = (backoff * 2).min(self.max_backoff);
                }
            }
        }
    }
}

/// Cheap process-wide jitter source (splitmix64 over an atomic counter) —
/// decorrelates concurrent retry loops without threading RNG state through
/// the storage layer.
fn jitter_below(bound: u64) -> u64 {
    static SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let mut z = SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % bound.max(1)
}

/// Bytes the log-tuned constructors grow the file by ahead of the append
/// point. Appends inside the preallocated region never change the file's
/// size, so each flush's `fdatasync` skips the metadata journal — the size
/// update (and its fsync) is paid once per chunk instead of once per
/// commit.
const LOG_PREALLOC_CHUNK: u64 = 1 << 20;

/// `O_DSYNC` on Linux: every `write(2)` returns only once the data is
/// durable, collapsing the write + `fdatasync` pair into one syscall.
#[cfg(target_os = "linux")]
const O_DSYNC: i32 = 0x1000;

/// A file whose writes buffer in memory (the simulated page cache) until
/// [`DurableFile::flush`] pushes them down with an `fsync`. All durability
/// code writes through this type so the crash harness controls exactly
/// which bytes survive.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    /// Bytes written but not yet flushed — lost on crash.
    pending: Vec<u8>,
    fp: FailPoints,
    /// Fail-point site consulted by every flush of this file.
    site: &'static str,
    /// Durable bytes written through this handle (the file cursor).
    pos: u64,
    /// Current preallocated file length; flushes extend it chunk-wise.
    prealloc: u64,
    /// Preallocation chunk size (0 = plain file, never preallocated).
    chunk: u64,
    /// File opened `O_DSYNC`: writes are synchronous, flush skips the
    /// separate `fdatasync`.
    dsync: bool,
}

impl DurableFile {
    /// Creates (truncating) a file for writing.
    pub fn create(
        path: &Path,
        fp: FailPoints,
        site: &'static str,
    ) -> Result<DurableFile, DurabilityError> {
        if fp.crashed() {
            return Err(DurabilityError::Crashed);
        }
        let file = File::create(path)?;
        Ok(DurableFile {
            file,
            pending: Vec::new(),
            fp,
            site,
            pos: 0,
            prealloc: 0,
            chunk: 0,
            dsync: false,
        })
    }

    /// Creates (truncating) an append-only log file with the WAL tuning:
    /// chunk-wise preallocation and `O_DSYNC`-style synchronous appends
    /// (where the platform offers the flag). Crash semantics are identical
    /// to [`DurableFile::create`] — only the syscall count per flush drops.
    pub fn create_log(
        path: &Path,
        fp: FailPoints,
        site: &'static str,
    ) -> Result<DurableFile, DurabilityError> {
        Self::open_log(path, fp, site, true)
    }

    /// Opens a log file for appending (recovery re-opens the tail WAL file
    /// after truncating its torn suffix), with the same tuning as
    /// [`DurableFile::create_log`].
    pub fn open_append(
        path: &Path,
        fp: FailPoints,
        site: &'static str,
    ) -> Result<DurableFile, DurabilityError> {
        Self::open_log(path, fp, site, false)
    }

    fn open_log(
        path: &Path,
        fp: FailPoints,
        site: &'static str,
        truncate: bool,
    ) -> Result<DurableFile, DurabilityError> {
        if fp.crashed() {
            return Err(DurabilityError::Crashed);
        }
        let mut opts = OpenOptions::new();
        opts.write(true).create(true).truncate(truncate);
        #[cfg(target_os = "linux")]
        {
            use std::os::unix::fs::OpenOptionsExt;
            opts.custom_flags(O_DSYNC);
        }
        let mut file = opts.open(path)?;
        let pos = file.seek(SeekFrom::End(0))?;
        Ok(DurableFile {
            file,
            pending: Vec::new(),
            fp,
            site,
            pos,
            prealloc: pos,
            chunk: LOG_PREALLOC_CHUNK,
            dsync: cfg!(target_os = "linux"),
        })
    }

    /// Buffers bytes (nothing durable yet).
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), DurabilityError> {
        if self.fp.crashed() {
            return Err(DurabilityError::Crashed);
        }
        self.pending.extend_from_slice(bytes);
        Ok(())
    }

    /// Extends the preallocated region when the pending flush would write
    /// past it, syncing the new size once — steady-state flushes then never
    /// touch file metadata.
    fn reserve(&mut self, add: u64) -> Result<(), DurabilityError> {
        if self.chunk == 0 || self.pos + add <= self.prealloc {
            return Ok(());
        }
        self.prealloc = (self.pos + add).div_ceil(self.chunk) * self.chunk;
        self.file.set_len(self.prealloc)?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Pushes pending bytes to the file and `fsync`s. If the flush site is
    /// armed, only the configured prefix of the pending bytes reaches the
    /// file (torn write) and the call fails with
    /// [`DurabilityError::Crashed`].
    pub fn flush(&mut self) -> Result<(), DurabilityError> {
        if let Some(e) = self.fp.transient_error(self.site) {
            // Transient failure: fail *before* any byte moves, keeping the
            // pending buffer intact so a retry re-flushes the same data and
            // the file never holds a torn prefix.
            return Err(e);
        }
        match self.fp.observe(self.site)? {
            None => {
                self.reserve(self.pending.len() as u64)?;
                self.file.write_all(&self.pending)?;
                if !self.dsync {
                    self.file.sync_data()?;
                }
                self.pos += self.pending.len() as u64;
                self.pending.clear();
                Ok(())
            }
            Some(keep_fraction) => {
                let keep = (self.pending.len() as f64 * keep_fraction).floor() as usize;
                let keep = keep.min(self.pending.len());
                // Best-effort torn write: the prefix that "made it to disk"
                // before the kill.
                let _ = self.file.write_all(&self.pending[..keep]);
                let _ = self.file.sync_data();
                self.pending.clear();
                Err(DurabilityError::Crashed)
            }
        }
    }

    /// Bytes buffered but not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

// NOTE: no flush-on-Drop. A dropped DurableFile loses its pending bytes —
// exactly the crash semantics the harness relies on.

const CRC32_POLY: u32 = 0xEDB8_8320;

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { CRC32_POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// IEEE CRC-32 (the zlib polynomial), table-driven. Every WAL record and
/// segment file carries one so recovery can tell a torn tail from good data.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn unflushed_writes_are_lost_and_flush_persists() {
        let dir = std::env::temp_dir().join(format!("qpe_dio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f1");
        let fp = FailPoints::default();
        let mut f = DurableFile::create(&path, fp.clone(), "t").unwrap();
        f.write(b"hello").unwrap();
        assert_eq!(f.pending_len(), 5);
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        f.flush().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        f.write(b" world").unwrap();
        drop(f); // crash before flush: suffix lost
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn armed_flush_tears_the_write_and_poisons_everything() {
        let dir = std::env::temp_dir().join(format!("qpe_dio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f2");
        let fp = FailPoints::default();
        fp.arm_partial("t", 2, 0.5);
        let mut f = DurableFile::create(&path, fp.clone(), "t").unwrap();
        f.write(b"aaaa").unwrap();
        f.flush().unwrap(); // hit 1: survives
        f.write(b"bbbb").unwrap();
        assert_eq!(f.flush(), Err(DurabilityError::Crashed)); // hit 2: torn
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaabb");
        assert!(fp.crashed());
        // Everything is poisoned from here on.
        assert_eq!(f.write(b"x"), Err(DurabilityError::Crashed));
        assert!(DurableFile::create(&path, fp.clone(), "t").is_err());
        assert_eq!(fp.hit("other"), Err(DurabilityError::Crashed));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transient_errors_heal_and_keep_pending_intact() {
        let dir = std::env::temp_dir().join(format!("qpe_dio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f3");
        let fp = FailPoints::default();
        fp.arm_errors("t", 2);
        let mut f = DurableFile::create(&path, fp.clone(), "t").unwrap();
        f.write(b"data").unwrap();
        assert!(matches!(f.flush(), Err(DurabilityError::Io(_))));
        assert!(matches!(f.flush(), Err(DurabilityError::Io(_))));
        // Not a crash: nothing is poisoned, nothing was torn.
        assert!(!fp.crashed());
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        assert_eq!(f.pending_len(), 4);
        // Healed: the retry flushes the full original payload.
        f.flush().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"data");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn retry_policy_absorbs_transient_errors_within_budget() {
        let fp = FailPoints::default();
        fp.arm_errors("ctl", 3);
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let (res, retries) = policy.run(|| fp.hit("ctl"));
        assert!(res.is_ok());
        assert_eq!(retries, 3);
    }

    #[test]
    fn retry_policy_exhausts_and_skips_non_retryable() {
        let fp = FailPoints::default();
        fp.arm_errors("ctl", 10);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let (res, retries) = policy.run(|| fp.hit("ctl"));
        assert!(matches!(res, Err(DurabilityError::Io(_))));
        assert_eq!(retries, 2);
        // ENOSPC-class and crashes are not retried at all.
        assert!(!RetryPolicy::is_retryable(&DurabilityError::Io(
            "No space left on device (os error 28)".into()
        )));
        assert!(!RetryPolicy::is_retryable(&DurabilityError::Crashed));
        let (res, retries) = policy.run(|| -> Result<(), _> { Err(DurabilityError::Crashed) });
        assert_eq!(res, Err(DurabilityError::Crashed));
        assert_eq!(retries, 0);
    }

    #[test]
    fn armed_panic_fires_once() {
        let fp = FailPoints::default();
        fp.arm_panic("stmt");
        let fp2 = fp.clone();
        let r = std::panic::catch_unwind(move || fp2.panic_if_armed("stmt"));
        assert!(r.is_err());
        // One-shot: the next hit is clean.
        fp.panic_if_armed("stmt");
    }

    #[test]
    fn countdown_and_plain_sites() {
        let fp = FailPoints::default();
        fp.arm("ctl", 3);
        assert!(fp.hit("ctl").is_ok());
        assert!(fp.hit("other").is_ok());
        assert!(fp.hit("ctl").is_ok());
        assert_eq!(fp.hit("ctl"), Err(DurabilityError::Crashed));
        assert!(fp.crashed());
    }
}
