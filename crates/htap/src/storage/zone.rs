//! Zone maps and the scan pruner.
//!
//! The column store's base segment is logically divided into fixed-size
//! **blocks** (the storage stays physically contiguous — blocks are metadata
//! views, like pages inside one Parquet column chunk). Each block carries a
//! small stats header ([`BlockZone`]): per-column min/max (computed over
//! non-NULL values with [`Value::total_cmp`], the same total order the
//! executors compare with), a NULL count, and a constant-block hint. Headers
//! are built when a table loads and rebuilt by `compact()` — never on the
//! write path, which is what keeps them cheap and also why they are only an
//! *over-approximation* after deletes (a tombstone can shrink the true range;
//! the stale header stays conservative, so pruning remains safe).
//!
//! [`ScanPruner`] consumes the filter conjunction a plan pushed into its
//! scan node and refutes whole blocks against these headers: a block whose
//! min/max proves no row can satisfy some conjunct is skipped without
//! touching a single cell. Two safety rules are load-bearing:
//!
//! * **delta rows are never pruned** — the delta region has no zone maps
//!   (it changes on every write), so buffered inserts/updates are always
//!   scanned and DML visibility is preserved;
//! * **refutation mirrors executor semantics exactly** — range checks use
//!   the same `total_cmp` the filter kernels use, equality additionally
//!   admits `sql_eq` boundary hits (`-0.0` vs `+0.0`), and NULL-bearing
//!   literals never prune (comparisons with NULL are false row-by-row, so
//!   the ordinary filter already rejects them).
//!
//! Pruning therefore never changes results — only which blocks are read —
//! and the savings surface in `WorkCounters` (`blocks_pruned`,
//! `cells_scanned`) where the latency model and router features see them.

use super::col_store::{ColumnData, ColumnTable};
use qpe_sql::ast::BinaryOp;
use qpe_sql::binder::BoundExpr;
use qpe_sql::value::Value;
use std::cmp::Ordering;

// ---------------------------------------------------------------------------
// Per-block bloom filters
// ---------------------------------------------------------------------------

/// Bloom bits for blocks of up to 512 rows (512 bytes per block/column) —
/// the floor of the adaptive sizing below.
pub const BLOOM_BITS: usize = 4096;
const BLOOM_PROBES: u32 = 3;

/// Filter size for a block of `block_rows` rows: ~8 bits per row, rounded
/// to a power of two, never below [`BLOOM_BITS`]. [`default_block_rows`]
/// grows blocks to 4096 rows on big segments; a fixed-size filter would
/// saturate there (every probe a false positive, so the pruner keeps — and
/// pays sel-vector assembly for — every block). Scaling with the block
/// keeps the fill factor ≤3/8 and the false-positive rate ≈5% at any size.
fn bloom_bits_for(block_rows: usize) -> usize {
    block_rows.saturating_mul(8).next_power_of_two().max(BLOOM_BITS)
}

/// A small bloom filter over one block of one column (sized to the block by
/// [`bloom_bits_for`]), built at
/// load/compact beside the [`BlockZone`] headers (and, like them, never
/// persisted — recomputed deterministically from the base). It answers
/// "might a row equal to this value live in the block?" for `=`/`IN`
/// pruning on high-cardinality unclustered columns, where min/max always
/// straddles the literal. A false positive only costs reading the block; a
/// false negative is forbidden — every row value is inserted at build time,
/// and probing is restricted to literal types whose `sql_eq` matches are
/// guaranteed hash-identical (see [`bloom_probe_hash`]).
#[derive(Debug, Clone)]
pub struct BlockBloom {
    words: Box<[u64]>,
    /// `bits - 1`; the bit count is a power of two, so masking replaces `%`.
    mask: usize,
}

impl BlockBloom {
    fn new(block_rows: usize) -> Self {
        let bits = bloom_bits_for(block_rows);
        BlockBloom { words: vec![0u64; bits / 64].into_boxed_slice(), mask: bits - 1 }
    }

    /// Sets the `BLOOM_PROBES` bits derived from `h` (double hashing with an
    /// odd stride, so probes stay distinct without rehashing).
    #[inline]
    fn insert(&mut self, h: u64) {
        let stride = (h >> 32) | 1;
        let mut g = h;
        for _ in 0..BLOOM_PROBES {
            let bit = (g as usize) & self.mask;
            self.words[bit / 64] |= 1 << (bit % 64);
            g = g.wrapping_add(stride);
        }
    }

    /// True unless some probe bit is clear (which proves absence).
    #[inline]
    pub fn may_contain(&self, h: u64) -> bool {
        let stride = (h >> 32) | 1;
        let mut g = h;
        for _ in 0..BLOOM_PROBES {
            let bit = (g as usize) & self.mask;
            if self.words[bit / 64] & (1 << (bit % 64)) == 0 {
                return false;
            }
            g = g.wrapping_add(stride);
        }
        true
    }
}

/// splitmix64 finalizer — the shared scalar mixer under every bloom hash.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Integer-domain bloom hash. Int and Date rows share this domain because
/// `sql_eq` equates them numerically (`Date(5) = 5` is true), so an Int
/// literal probing a date bloom must hash identically to the day it matches.
#[inline]
fn bloom_hash_i64(x: i64) -> u64 {
    mix64(x as u64)
}

/// String-domain bloom hash (FNV-1a over the bytes, then mixed).
fn bloom_hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// Hash of a predicate literal for bloom probing, or `None` when the literal
/// must not probe at all. Float literals are excluded: `sql_eq` compares
/// them to int rows through `as_float`, and above 2^53 several distinct i64
/// rows round to one float — a hash probe would refute a block that holds a
/// genuine match. NULL literals never prune anywhere. (Cross-domain probes
/// — a Str literal against an int bloom — are safe: `sql_eq` is false for
/// every such row, so refuting the block cannot drop a match.)
pub(crate) fn bloom_probe_hash(lit: &Value) -> Option<u64> {
    match lit {
        Value::Int(x) => Some(bloom_hash_i64(*x)),
        Value::Date(d) => Some(bloom_hash_i64(*d as i64)),
        Value::Str(s) => Some(bloom_hash_str(s)),
        _ => None,
    }
}

/// Builds the per-block bloom filters for one column, or `None` for column
/// types equality blooms do not cover (Float rows because of the rounding
/// edge above, Nullable/Mixed to keep the build path simple — those columns
/// still prune through their zone headers).
pub(crate) fn column_blooms(col: &ColumnData, block_rows: usize) -> Option<Vec<BlockBloom>> {
    let n = col.len();
    let step = block_rows.max(1);
    let n_blocks = n.div_ceil(step);
    let mut out = Vec::with_capacity(n_blocks);
    // Dict values hash once per distinct string, not once per row.
    let dict_hashes: Option<Vec<u64>> = match col {
        ColumnData::Dict(d) => Some(d.values.iter().map(|s| bloom_hash_str(s)).collect()),
        _ => None,
    };
    for b in 0..n_blocks {
        let range = b * step..((b + 1) * step).min(n);
        let mut bloom = BlockBloom::new(step);
        match col {
            ColumnData::Int(v) => {
                for &x in &v[range] {
                    bloom.insert(bloom_hash_i64(x));
                }
            }
            ColumnData::Date(v) => {
                for &x in &v[range] {
                    bloom.insert(bloom_hash_i64(x as i64));
                }
            }
            ColumnData::Str(v) => {
                for s in &v[range] {
                    bloom.insert(bloom_hash_str(s));
                }
            }
            ColumnData::Dict(d) => {
                let hashes = dict_hashes.as_ref().unwrap();
                for i in range {
                    bloom.insert(hashes[d.codes[i] as usize]);
                }
            }
            ColumnData::RleInt(r) => {
                for i in range {
                    bloom.insert(bloom_hash_i64(r.get(i)));
                }
            }
            ColumnData::RleDate(r) => {
                for i in range {
                    bloom.insert(bloom_hash_i64(r.get(i) as i64));
                }
            }
            ColumnData::ForInt(f) => {
                for i in range {
                    bloom.insert(bloom_hash_i64(f.get(i)));
                }
            }
            ColumnData::Float(_) | ColumnData::Nullable { .. } | ColumnData::Mixed(_) => {
                return None;
            }
        }
        out.push(bloom);
    }
    Some(out)
}

/// Smallest zone-map block (tiny tables still get real skipping).
pub const MIN_BLOCK_ROWS: usize = 16;
/// Largest zone-map block (production-style page size).
pub const MAX_BLOCK_ROWS: usize = 4096;
/// Default block size for mid-size tables; kept as the name tests and docs
/// reference, though [`default_block_rows`] adapts per table.
pub const DEFAULT_BLOCK_ROWS: usize = 64;

/// Adaptive block size: target ~64 blocks per base segment (rounded to a
/// power of two, clamped to `[MIN_BLOCK_ROWS, MAX_BLOCK_ROWS]`). Laptop-scale
/// tables get fine blocks so a 300-row bench table still prunes ~18/19 of
/// itself on a point predicate, while big segments keep headers cheap: the
/// per-scan header-check cost stays O(64) per column regardless of row
/// count. Header overhead is ~100 bytes per block/column.
pub fn default_block_rows(base_rows: usize) -> usize {
    (base_rows / 64)
        .next_power_of_two()
        .clamp(MIN_BLOCK_ROWS, MAX_BLOCK_ROWS)
}

/// Per-block, per-column stats header.
#[derive(Debug, Clone)]
pub struct BlockZone {
    /// Smallest non-NULL value in the block (by [`Value::total_cmp`]).
    pub min: Option<Value>,
    /// Largest non-NULL value in the block.
    pub max: Option<Value>,
    /// NULLs in the block.
    pub null_count: u32,
    /// Rows covered by the block.
    pub rows: u32,
}

impl BlockZone {
    fn empty() -> Self {
        BlockZone { min: None, max: None, null_count: 0, rows: 0 }
    }

    /// Distinct-ness hint: every row holds the same non-NULL value. Lets the
    /// pruner refute `<>` conjuncts and the encoder spot RLE-friendly data.
    pub fn is_constant(&self) -> bool {
        self.null_count == 0
            && match (&self.min, &self.max) {
                (Some(a), Some(b)) => a.total_cmp(b) == Ordering::Equal,
                _ => false,
            }
    }
}

/// Builds the zone headers for one column, one entry per `block_rows` rows.
/// Typed columns track min/max without per-row `Value` cloning; only the two
/// winners per block materialize as `Value`s.
pub(crate) fn column_zones(col: &ColumnData, block_rows: usize) -> Vec<BlockZone> {
    let n = col.len();
    let step = block_rows.max(1);
    let n_blocks = n.div_ceil(step);
    let mut out = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let range = b * step..((b + 1) * step).min(n);
        out.push(block_zone(col, range));
    }
    out
}

fn block_zone(col: &ColumnData, range: std::ops::Range<usize>) -> BlockZone {
    let rows = range.len() as u32;
    // Copy-free scans for the typed representations; the `Value`-based
    // fallback handles Nullable/Mixed (rare in base segments).
    macro_rules! numeric_zone {
        ($v:expr, $wrap:expr, $cmp:expr) => {{
            let mut min = None;
            let mut max = None;
            for x in &$v[range] {
                min = Some(match min {
                    None => *x,
                    Some(m) => {
                        if $cmp(x, &m) == Ordering::Less {
                            *x
                        } else {
                            m
                        }
                    }
                });
                max = Some(match max {
                    None => *x,
                    Some(m) => {
                        if $cmp(x, &m) == Ordering::Greater {
                            *x
                        } else {
                            m
                        }
                    }
                });
            }
            BlockZone { min: min.map($wrap), max: max.map($wrap), null_count: 0, rows }
        }};
    }
    match col {
        ColumnData::Int(v) => numeric_zone!(v, Value::Int, |a: &i64, b: &i64| a.cmp(b)),
        ColumnData::Date(v) => numeric_zone!(v, Value::Date, |a: &i32, b: &i32| a.cmp(b)),
        ColumnData::Float(v) => {
            numeric_zone!(v, Value::Float, |a: &f64, b: &f64| a.total_cmp(b))
        }
        ColumnData::RleInt(r) => {
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            for i in range.clone() {
                let x = r.get(i);
                min = min.min(x);
                max = max.max(x);
            }
            if range.is_empty() {
                BlockZone::empty()
            } else {
                BlockZone {
                    min: Some(Value::Int(min)),
                    max: Some(Value::Int(max)),
                    null_count: 0,
                    rows,
                }
            }
        }
        ColumnData::RleDate(r) => {
            let mut min = i32::MAX;
            let mut max = i32::MIN;
            for i in range.clone() {
                let x = r.get(i);
                min = min.min(x);
                max = max.max(x);
            }
            if range.is_empty() {
                BlockZone::empty()
            } else {
                BlockZone {
                    min: Some(Value::Date(min)),
                    max: Some(Value::Date(max)),
                    null_count: 0,
                    rows,
                }
            }
        }
        ColumnData::ForInt(f) => {
            if range.is_empty() {
                return BlockZone::empty();
            }
            // When the zone block nests inside FOR blocks, the stored
            // per-FOR-block min/max bound it; exact only when aligned, so
            // fall back to scanning values otherwise.
            use super::col_store::FOR_BLOCK_ROWS;
            let (fb_lo, fb_hi) = (range.start / FOR_BLOCK_ROWS, (range.end - 1) / FOR_BLOCK_ROWS);
            let aligned = range.start.is_multiple_of(FOR_BLOCK_ROWS)
                && (range.end.is_multiple_of(FOR_BLOCK_ROWS) || range.end == f.len());
            let (min, max) = if aligned {
                let min = (fb_lo..=fb_hi).map(|b| f.refs[b]).min().unwrap();
                let max = (fb_lo..=fb_hi).map(|b| f.maxs[b]).max().unwrap();
                (min, max)
            } else {
                let mut min = i64::MAX;
                let mut max = i64::MIN;
                for i in range {
                    let x = f.get(i);
                    min = min.min(x);
                    max = max.max(x);
                }
                (min, max)
            };
            BlockZone {
                min: Some(Value::Int(min)),
                max: Some(Value::Int(max)),
                null_count: 0,
                rows,
            }
        }
        ColumnData::Str(v) => {
            let mut min: Option<&str> = None;
            let mut max: Option<&str> = None;
            for s in &v[range] {
                track_str(&mut min, &mut max, s);
            }
            BlockZone {
                min: min.map(|s| Value::Str(s.to_string())),
                max: max.map(|s| Value::Str(s.to_string())),
                null_count: 0,
                rows,
            }
        }
        ColumnData::Dict(d) => {
            let mut min: Option<&str> = None;
            let mut max: Option<&str> = None;
            for i in range.clone() {
                track_str(&mut min, &mut max, d.get(i));
            }
            BlockZone {
                min: min.map(|s| Value::Str(s.to_string())),
                max: max.map(|s| Value::Str(s.to_string())),
                null_count: 0,
                rows,
            }
        }
        ColumnData::Nullable { nulls, values } => {
            let mut zone = BlockZone::empty();
            zone.rows = rows;
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            for i in range.clone() {
                if nulls[i] {
                    zone.null_count += 1;
                    continue;
                }
                let v = values.get(i);
                track_value(&mut min, &mut max, v);
            }
            zone.min = min;
            zone.max = max;
            zone
        }
        ColumnData::Mixed(v) => {
            let mut zone = BlockZone::empty();
            zone.rows = rows;
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            for val in &v[range] {
                if val.is_null() {
                    zone.null_count += 1;
                    continue;
                }
                track_value(&mut min, &mut max, val.clone());
            }
            zone.min = min;
            zone.max = max;
            zone
        }
    }
}

fn track_str<'a>(min: &mut Option<&'a str>, max: &mut Option<&'a str>, s: &'a str) {
    match min {
        None => *min = Some(s),
        Some(m) if s < *m => *min = Some(s),
        _ => {}
    }
    match max {
        None => *max = Some(s),
        Some(m) if s > *m => *max = Some(s),
        _ => {}
    }
}

fn track_value(min: &mut Option<Value>, max: &mut Option<Value>, v: Value) {
    let lower = match min {
        None => true,
        Some(m) => v.total_cmp(m) == Ordering::Less,
    };
    if lower {
        *min = Some(v.clone());
    }
    let higher = match max {
        None => true,
        Some(m) => v.total_cmp(m) == Ordering::Greater,
    };
    if higher {
        *max = Some(v);
    }
}

// ---------------------------------------------------------------------------
// Scan pruning
// ---------------------------------------------------------------------------

/// One zone-map-refutable conjunct of a pushed predicate.
enum Conjunct<'a> {
    /// `col OP literal` comparison (already oriented column-first).
    Cmp { ci: usize, op: BinaryOp, lit: &'a Value },
    /// `col BETWEEN lo AND hi` with literal bounds.
    Between { ci: usize, lo: &'a Value, hi: &'a Value },
    /// `col IN (literals)` (non-negated only).
    InList { ci: usize, items: &'a [Value] },
    /// `col IS [NOT] NULL`.
    IsNull { ci: usize, negated: bool },
}

/// Evaluates a scan's pushed filter conjunction against block stats headers
/// to skip whole base blocks. Constructed per scan from the plan's pushed
/// predicate; holds only the conjunct shapes zone maps can refute (the rest
/// of the predicate still runs row-wise in the Filter above, so an
/// unrecognized conjunct merely prunes nothing).
pub struct ScanPruner<'a> {
    conjuncts: Vec<Conjunct<'a>>,
}

/// What a pruned scan reads.
pub struct PruneOutcome {
    /// Surviving physical rids in ascending order, or `None` for the dense
    /// zero-copy scan (clean table, nothing pruned).
    pub sel: Option<Vec<u32>>,
    /// Live rows the scan will touch (selection length, or the live count
    /// for a dense scan).
    pub survivors: usize,
    /// Base blocks whose stats headers were consulted.
    pub blocks_checked: u64,
    /// Base blocks skipped outright.
    pub blocks_pruned: u64,
    /// Dense positions in `sel` where the selection jumps a storage
    /// discontinuity (a pruned gap or the base→delta boundary) — the cut
    /// points morsel splitting respects.
    pub sel_cuts: Vec<usize>,
}

impl<'a> ScanPruner<'a> {
    /// Collects the refutable conjuncts of `pushed` that reference bare
    /// columns of table slot `slot`.
    pub fn for_scan(pushed: &'a BoundExpr, slot: usize) -> Self {
        let mut p = ScanPruner { conjuncts: Vec::new() };
        p.collect(pushed, slot);
        p
    }

    /// True when no conjunct can drive block skipping.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    fn collect(&mut self, e: &'a BoundExpr, slot: usize) {
        let bare = |x: &BoundExpr| -> Option<usize> {
            x.as_bare_column()
                .filter(|c| c.table_slot == slot)
                .map(|c| c.column_idx)
        };
        match e {
            BoundExpr::Binary { left, op: BinaryOp::And, right } => {
                self.collect(left, slot);
                self.collect(right, slot);
            }
            BoundExpr::Binary { left, op, right }
                if matches!(
                    op,
                    BinaryOp::Eq
                        | BinaryOp::NotEq
                        | BinaryOp::Lt
                        | BinaryOp::LtEq
                        | BinaryOp::Gt
                        | BinaryOp::GtEq
                ) =>
            {
                // Orient column-first; NULL literals never prune (the filter
                // rejects every row itself, block stats can't say it safer).
                if let (Some(ci), BoundExpr::Literal(lit)) = (bare(left), right.as_ref()) {
                    if !lit.is_null() {
                        self.conjuncts.push(Conjunct::Cmp { ci, op: *op, lit });
                    }
                } else if let (BoundExpr::Literal(lit), Some(ci)) = (left.as_ref(), bare(right)) {
                    if !lit.is_null() {
                        let flipped = match op {
                            BinaryOp::Lt => BinaryOp::Gt,
                            BinaryOp::LtEq => BinaryOp::GtEq,
                            BinaryOp::Gt => BinaryOp::Lt,
                            BinaryOp::GtEq => BinaryOp::LtEq,
                            other => *other,
                        };
                        self.conjuncts.push(Conjunct::Cmp { ci, op: flipped, lit });
                    }
                }
            }
            BoundExpr::Between { expr, low, high } => {
                if let (Some(ci), BoundExpr::Literal(lo), BoundExpr::Literal(hi)) =
                    (bare(expr), low.as_ref(), high.as_ref())
                {
                    if !lo.is_null() && !hi.is_null() {
                        self.conjuncts.push(Conjunct::Between { ci, lo, hi });
                    }
                }
            }
            BoundExpr::InList { expr, list, negated: false } => {
                if let Some(ci) = bare(expr) {
                    self.conjuncts.push(Conjunct::InList { ci, items: list });
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                if let Some(ci) = bare(expr) {
                    self.conjuncts.push(Conjunct::IsNull { ci, negated: *negated });
                }
            }
            _ => {}
        }
    }

    /// Applies the conjuncts to `table`'s block headers and assembles the
    /// surviving selection: live rids of kept base blocks in ascending
    /// order, then every live delta rid (the delta is never pruned).
    pub fn prune(&self, table: &ColumnTable) -> PruneOutcome {
        let n_blocks = table.n_blocks();
        let base_rows = table.base_len();
        let phys = table.physical_len();
        // Equality/IN literals hash once per scan; per block only bloom bits
        // are tested. `None` = this conjunct cannot drive bloom refutation.
        let probes: Vec<Option<Vec<u64>>> = self
            .conjuncts
            .iter()
            .map(|c| match c {
                Conjunct::Cmp { op: BinaryOp::Eq, lit, .. } => {
                    bloom_probe_hash(lit).map(|h| vec![h])
                }
                Conjunct::InList { items, .. } => {
                    let non_null = items.iter().filter(|v| !v.is_null());
                    let hs: Vec<u64> =
                        non_null.clone().filter_map(bloom_probe_hash).collect();
                    // Every non-NULL item must be hashable, or a block
                    // holding an unhashable match could be refuted.
                    (hs.len() == non_null.count()).then_some(hs)
                }
                _ => None,
            })
            .collect();
        let mut keep = vec![true; n_blocks];
        let mut pruned = 0u64;
        for (b, k) in keep.iter_mut().enumerate() {
            for (idx, c) in self.conjuncts.iter().enumerate() {
                let ci = match c {
                    Conjunct::Cmp { ci, .. }
                    | Conjunct::Between { ci, .. }
                    | Conjunct::InList { ci, .. }
                    | Conjunct::IsNull { ci, .. } => *ci,
                };
                let Some(zone) = table.zones(ci).get(b) else {
                    continue;
                };
                if !conjunct_may_match(c, zone) {
                    *k = false;
                    pruned += 1;
                    break;
                }
                // Zone min/max kept the block; a bloom miss on every
                // equality candidate still proves no row matches. Base
                // blocks only — the delta below is never pruned.
                if let (Some(hashes), Some(blooms)) = (&probes[idx], table.blooms(ci)) {
                    if let Some(bloom) = blooms.get(b) {
                        if hashes.iter().all(|h| !bloom.may_contain(*h)) {
                            *k = false;
                            pruned += 1;
                            break;
                        }
                    }
                }
            }
        }

        if pruned == 0 && table.is_clean() {
            // Dense zero-copy fast path preserved.
            return PruneOutcome {
                sel: None,
                survivors: table.row_count(),
                blocks_checked: n_blocks as u64,
                blocks_pruned: 0,
                sel_cuts: Vec::new(),
            };
        }

        let mut sel: Vec<u32> = Vec::new();
        let mut cuts: Vec<usize> = Vec::new();
        let mut expected = 0usize;
        for (b, k) in keep.iter().enumerate() {
            if !k {
                continue;
            }
            let range = table.block_range(b);
            if range.start != expected && !sel.is_empty() {
                cuts.push(sel.len());
            }
            for rid in range.clone() {
                if !table.is_deleted(rid) {
                    sel.push(rid as u32);
                }
            }
            expected = range.end;
        }
        if phys > base_rows {
            if !sel.is_empty() {
                cuts.push(sel.len());
            }
            for rid in base_rows..phys {
                if !table.is_deleted(rid) {
                    sel.push(rid as u32);
                }
            }
        }
        let survivors = sel.len();
        PruneOutcome {
            sel: Some(sel),
            survivors,
            blocks_checked: n_blocks as u64,
            blocks_pruned: pruned,
            sel_cuts: cuts,
        }
    }
}

/// Can any row of a block with header `z` satisfy conjunct `c`? Must err
/// toward `true` — a wrong `false` silently drops rows.
fn conjunct_may_match(c: &Conjunct<'_>, z: &BlockZone) -> bool {
    let (min, max) = match (&z.min, &z.max) {
        (Some(a), Some(b)) => (a, b),
        // No non-NULL value in the block: every comparison/IN conjunct is
        // false row-by-row; only `IS NULL` can still match.
        _ => return matches!(c, Conjunct::IsNull { negated: false, .. }) && z.null_count > 0,
    };
    match c {
        Conjunct::Cmp { op, lit, .. } => match op {
            BinaryOp::Eq => value_in_range(lit, min, max),
            // A constant block refutes `<>` only when the constant equals
            // the literal under the executor's own equality (sql_eq also
            // guards the NaN case, where total_cmp and `==` disagree).
            BinaryOp::NotEq => !(z.is_constant() && min.sql_eq(lit)),
            BinaryOp::Lt => min.total_cmp(lit) == Ordering::Less,
            BinaryOp::LtEq => min.total_cmp(lit) != Ordering::Greater,
            BinaryOp::Gt => max.total_cmp(lit) == Ordering::Greater,
            BinaryOp::GtEq => max.total_cmp(lit) != Ordering::Less,
            _ => true,
        },
        Conjunct::Between { lo, hi, .. } => {
            max.total_cmp(lo) != Ordering::Less && min.total_cmp(hi) != Ordering::Greater
        }
        Conjunct::InList { items, .. } => items
            .iter()
            .any(|v| !v.is_null() && value_in_range(v, min, max)),
        Conjunct::IsNull { negated: false, .. } => z.null_count > 0,
        Conjunct::IsNull { negated: true, .. } => z.null_count < z.rows,
    }
}

/// Could a row equal to `lit` (under `sql_eq`) live inside `[min, max]`?
/// The range test uses `total_cmp` like the executors; the extra boundary
/// `sql_eq` checks admit the one case where the two orders disagree on
/// equality (`-0.0` vs `+0.0`), keeping equality pruning exact.
fn value_in_range(lit: &Value, min: &Value, max: &Value) -> bool {
    (lit.total_cmp(min) != Ordering::Less && lit.total_cmp(max) != Ordering::Greater)
        || lit.sql_eq(min)
        || lit.sql_eq(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::binder::Binder;
    use qpe_sql::catalog::{ColumnDef, DataType, MemoryCatalog, TableDef};

    fn zone(min: Value, max: Value) -> BlockZone {
        BlockZone { min: Some(min), max: Some(max), null_count: 0, rows: 4 }
    }

    fn bind_filter(sql_where: &str) -> BoundExpr {
        let mut cat = MemoryCatalog::new();
        cat.add_table(TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "a".into(), data_type: DataType::Int, ndv: 10 },
                ColumnDef { name: "s".into(), data_type: DataType::Str, ndv: 4 },
            ],
            row_count: 10,
            indexed_columns: vec![],
            primary_key: "a".into(),
        });
        let q = Binder::new(&cat)
            .bind_sql(&format!("SELECT * FROM t WHERE {sql_where}"))
            .unwrap();
        let mut it = q.filters.iter().map(|f| f.expr.clone());
        let first = it.next().unwrap();
        it.fold(first, |acc, e| BoundExpr::Binary {
            left: Box::new(acc),
            op: BinaryOp::And,
            right: Box::new(e),
        })
    }

    fn may_match(sql_where: &str, z: &BlockZone) -> bool {
        let pred = bind_filter(sql_where);
        let pruner = ScanPruner::for_scan(&pred, 0);
        assert!(!pruner.is_empty(), "conjunct not recognized: {sql_where}");
        pruner
            .conjuncts
            .iter()
            .all(|c| conjunct_may_match(c, z))
    }

    #[test]
    fn range_and_equality_refutation() {
        let z = zone(Value::Int(10), Value::Int(20));
        assert!(may_match("a = 15", &z));
        assert!(!may_match("a = 9", &z));
        assert!(!may_match("a = 21", &z));
        assert!(may_match("a >= 20", &z));
        assert!(!may_match("a > 20", &z));
        assert!(may_match("a < 11", &z));
        assert!(!may_match("a < 10", &z));
        assert!(may_match("25 > a", &z), "flipped orientation recognized");
        assert!(!may_match("5 >= a", &z), "flipped orientation prunes too");
        assert!(may_match("a BETWEEN 18 AND 30", &z));
        assert!(!may_match("a BETWEEN 21 AND 30", &z));
        assert!(may_match("a IN (1, 2, 12)", &z));
        assert!(!may_match("a IN (1, 2, 30)", &z));
    }

    #[test]
    fn string_zones_refute_string_predicates() {
        let z = zone(Value::Str("building".into()), Value::Str("machinery".into()));
        assert!(may_match("s = 'household'", &z));
        assert!(!may_match("s = 'automobile'", &z));
        assert!(!may_match("s = 'steel'", &z));
    }

    #[test]
    fn cross_type_literals_prune_via_rank_order() {
        // Int literal against a string block: sql_eq is always false, and
        // the rank order the executors compare with puts Int below Str — so
        // the block is refutable.
        let z = zone(Value::Str("a".into()), Value::Str("b".into()));
        assert!(!may_match("s = 5", &z));
    }

    #[test]
    fn constant_blocks_refute_not_equal() {
        let constant = zone(Value::Int(7), Value::Int(7));
        assert!(!may_match("a <> 7", &constant));
        assert!(may_match("a <> 8", &constant));
        let varied = zone(Value::Int(7), Value::Int(9));
        assert!(may_match("a <> 7", &varied));
    }

    #[test]
    fn null_blocks_and_is_null() {
        let all_null = BlockZone { min: None, max: None, null_count: 4, rows: 4 };
        assert!(may_match("a IS NULL", &all_null));
        assert!(!may_match("a IS NOT NULL", &all_null));
        assert!(!may_match("a = 1", &all_null));
        let no_null = zone(Value::Int(1), Value::Int(2));
        assert!(!may_match("a IS NULL", &no_null));
        assert!(may_match("a IS NOT NULL", &no_null));
    }

    #[test]
    fn signed_zero_boundary_is_not_pruned() {
        let z = zone(Value::Float(-1.0), Value::Float(-0.0));
        // +0.0 sorts above -0.0 in total_cmp, but sql_eq equates them — the
        // boundary check must keep the block.
        assert!(may_match("a = 0.0", &z));
    }

    #[test]
    fn unrecognized_shapes_prune_nothing() {
        let pred = bind_filter("s LIKE 'x%'");
        assert!(ScanPruner::for_scan(&pred, 0).is_empty());
        let pred = bind_filter("a + 1 = 2");
        assert!(ScanPruner::for_scan(&pred, 0).is_empty());
        // Conjuncts of other table slots are ignored.
        let pred = bind_filter("a = 1");
        assert!(ScanPruner::for_scan(&pred, 3).is_empty());
    }

    #[test]
    fn zones_cover_blocks_and_track_minmax() {
        let col = ColumnData::Int((0..10).collect());
        let zones = column_zones(&col, 4);
        assert_eq!(zones.len(), 3);
        assert_eq!(zones[0].min, Some(Value::Int(0)));
        assert_eq!(zones[0].max, Some(Value::Int(3)));
        assert_eq!(zones[2].min, Some(Value::Int(8)));
        assert_eq!(zones[2].rows, 2);
        assert!(!zones[0].is_constant());
        let constant = column_zones(&ColumnData::Int(vec![5; 8]), 4);
        assert!(constant.iter().all(BlockZone::is_constant));
    }

    #[test]
    fn zones_skip_nulls_in_minmax() {
        let col = ColumnData::from_values(&[
            Value::Null,
            Value::Int(3),
            Value::Int(1),
            Value::Null,
        ]);
        let zones = column_zones(&col, 4);
        assert_eq!(zones[0].null_count, 2);
        assert_eq!(zones[0].min, Some(Value::Int(1)));
        assert_eq!(zones[0].max, Some(Value::Int(3)));
    }
}
