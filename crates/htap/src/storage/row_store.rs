//! Row-oriented storage for the TP engine.
//!
//! Rows are materialized `Vec<Value>` tuples; every access touches the whole
//! row (the latency model charges full tuple width per row read), which is
//! what makes wide analytical scans expensive on this side.

use super::index::BTreeIndex;
use crate::tpch::GeneratedTable;
use qpe_sql::catalog::TableDef;
use qpe_sql::value::Value;
use std::collections::HashMap;

/// A row-store table: tuples plus B-tree indexes on the primary key and any
/// declared secondary columns.
#[derive(Debug)]
pub struct RowTable {
    name: String,
    rows: Vec<Vec<Value>>,
    /// column index -> B-tree index
    indexes: HashMap<usize, BTreeIndex>,
    width: usize,
}

impl RowTable {
    /// Builds the table (and its indexes) from column-major data.
    pub fn from_columns(def: &TableDef, columns: &[Vec<Value>]) -> Self {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        let width = columns.len();
        let mut rows = Vec::with_capacity(n);
        for r in 0..n {
            let mut row = Vec::with_capacity(width);
            for col in columns {
                row.push(col[r].clone());
            }
            rows.push(row);
        }
        let mut indexes = HashMap::new();
        for (ci, col) in def.columns.iter().enumerate() {
            if def.has_index(&col.name) {
                indexes.insert(ci, BTreeIndex::build(&columns[ci]));
            }
        }
        RowTable {
            name: def.name.clone(),
            rows,
            indexes,
            width,
        }
    }

    /// Loads from a [`GeneratedTable`] (convenience for tests).
    pub fn from_generated(def: &TableDef, data: &GeneratedTable) -> Self {
        Self::from_columns(def, &data.columns)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Borrow a full row by id.
    pub fn row(&self, rid: usize) -> &[Value] {
        &self.rows[rid]
    }

    /// All rows (sequential scan order).
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// The B-tree index on column `ci`, if one exists.
    pub fn index_on(&self, ci: usize) -> Option<&BTreeIndex> {
        self.indexes.get(&ci)
    }

    /// Column indexes that have B-tree indexes.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.indexes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Adds a secondary index at runtime (mirrors the paper's "an additional
    /// index has been created on c_phone" user context).
    pub fn create_index(&mut self, ci: usize) {
        if self.indexes.contains_key(&ci) {
            return;
        }
        let col: Vec<Value> = self.rows.iter().map(|r| r[ci].clone()).collect();
        self.indexes.insert(ci, BTreeIndex::build(&col));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::catalog::{ColumnDef, DataType};

    fn def() -> TableDef {
        TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "k".into(), data_type: DataType::Int, ndv: 3 },
                ColumnDef { name: "v".into(), data_type: DataType::Str, ndv: 3 },
            ],
            row_count: 3,
            indexed_columns: vec![],
            primary_key: "k".into(),
        }
    }

    fn data() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(10), Value::Int(20), Value::Int(30)],
            vec![
                Value::Str("x".into()),
                Value::Str("y".into()),
                Value::Str("z".into()),
            ],
        ]
    }

    #[test]
    fn builds_rows_from_columns() {
        let t = RowTable::from_columns(&def(), &data());
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.width(), 2);
        assert_eq!(t.row(1), &[Value::Int(20), Value::Str("y".into())]);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn primary_key_is_indexed_automatically() {
        let t = RowTable::from_columns(&def(), &data());
        assert_eq!(t.indexed_columns(), vec![0]);
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(20)), &[1]);
        assert!(t.index_on(1).is_none());
    }

    #[test]
    fn create_index_at_runtime() {
        let mut t = RowTable::from_columns(&def(), &data());
        t.create_index(1);
        assert_eq!(t.index_on(1).unwrap().lookup(&Value::Str("z".into())), &[2]);
        // idempotent
        t.create_index(1);
        assert_eq!(t.indexed_columns(), vec![0, 1]);
    }
}
