//! Row-oriented storage for the TP engine.
//!
//! Rows are materialized `Vec<Value>` tuples; every access touches the whole
//! row (the latency model charges full tuple width per row read), which is
//! what makes wide analytical scans expensive on this side.
//!
//! The row store is the *write-applying* side of the HTAP pair: inserts
//! append, deletes tombstone the slot (rids stay stable for the indexes),
//! updates relocate the tuple (tombstone + append, the classic heap-update
//! discipline), and every B-tree index is maintained in place on each write.
//! [`RowTable::compact`] drops tombstones and rebuilds the indexes over the
//! re-packed rid space.

use super::index::BTreeIndex;
use crate::tpch::GeneratedTable;
use qpe_sql::catalog::TableDef;
use qpe_sql::value::Value;
use std::collections::HashMap;

/// A row-store table: tuples plus B-tree indexes on the primary key and any
/// declared secondary columns.
#[derive(Debug)]
pub struct RowTable {
    name: String,
    rows: Vec<Vec<Value>>,
    /// Tombstone flags, positionally aligned with `rows`.
    deleted: Vec<bool>,
    /// Number of tombstoned slots (`live = rows.len() - n_deleted`).
    n_deleted: usize,
    /// column index -> B-tree index
    indexes: HashMap<usize, BTreeIndex>,
    width: usize,
}

impl RowTable {
    /// Builds the table (and its indexes) from column-major data.
    pub fn from_columns(def: &TableDef, columns: &[Vec<Value>]) -> Self {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        let width = columns.len();
        let mut rows = Vec::with_capacity(n);
        for r in 0..n {
            let mut row = Vec::with_capacity(width);
            for col in columns {
                row.push(col[r].clone());
            }
            rows.push(row);
        }
        let mut indexes = HashMap::new();
        for (ci, col) in def.columns.iter().enumerate() {
            if def.has_index(&col.name) {
                indexes.insert(ci, BTreeIndex::build(&columns[ci]));
            }
        }
        RowTable {
            name: def.name.clone(),
            rows,
            deleted: vec![false; n],
            n_deleted: 0,
            indexes,
            width,
        }
    }

    /// Loads from a [`GeneratedTable`] (convenience for tests).
    pub fn from_generated(def: &TableDef, data: &GeneratedTable) -> Self {
        Self::from_columns(def, &data.columns)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of *live* rows.
    pub fn row_count(&self) -> usize {
        self.rows.len() - self.n_deleted
    }

    /// Number of physical slots (live rows plus tombstones); rids live in
    /// `0..physical_len()`.
    pub fn physical_len(&self) -> usize {
        self.rows.len()
    }

    /// True when some slots are tombstoned.
    pub fn has_deletions(&self) -> bool {
        self.n_deleted > 0
    }

    /// True when slot `rid` is tombstoned.
    pub fn is_deleted(&self, rid: usize) -> bool {
        self.deleted[rid]
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Borrow a full row by id (tombstoned slots keep their last tuple; the
    /// scan paths and indexes never hand out tombstoned rids).
    pub fn row(&self, rid: usize) -> &[Value] {
        &self.rows[rid]
    }

    /// All physical slots in rid order, tombstones included — pair with
    /// [`RowTable::has_deletions`] / [`RowTable::is_deleted`], or use
    /// [`RowTable::iter_live`] for scan semantics.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Live rows in rid order (sequential scan order).
    pub fn iter_live(&self) -> impl Iterator<Item = (usize, &Vec<Value>)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|&(rid, _)| !self.deleted[rid])
    }

    /// The B-tree index on column `ci`, if one exists.
    pub fn index_on(&self, ci: usize) -> Option<&BTreeIndex> {
        self.indexes.get(&ci)
    }

    /// Column indexes that have B-tree indexes.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.indexes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of B-tree indexes on this table.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Appends a row, maintaining every index. Returns the new rid.
    pub fn insert(&mut self, row: Vec<Value>) -> u32 {
        debug_assert_eq!(row.len(), self.width);
        let rid = self.rows.len() as u32;
        for (&ci, idx) in self.indexes.iter_mut() {
            idx.insert(row[ci].clone(), rid);
        }
        self.rows.push(row);
        self.deleted.push(false);
        rid
    }

    /// Tombstones a row, removing it from every index. Returns false when
    /// the rid was already deleted.
    pub fn delete(&mut self, rid: u32) -> bool {
        let r = rid as usize;
        if self.deleted[r] {
            return false;
        }
        for (&ci, idx) in self.indexes.iter_mut() {
            idx.remove(&self.rows[r][ci], rid);
        }
        self.deleted[r] = true;
        self.n_deleted += 1;
        true
    }

    /// Relocating update (tombstone + append): returns the row's new rid.
    pub fn update(&mut self, rid: u32, new_row: Vec<Value>) -> u32 {
        self.delete(rid);
        self.insert(new_row)
    }

    /// Drops tombstones, re-packing rids to `0..row_count()` and rebuilding
    /// every index over the new rid space.
    pub fn compact(&mut self) {
        if self.n_deleted == 0 {
            return;
        }
        let mut rows = Vec::with_capacity(self.row_count());
        for (rid, row) in self.rows.drain(..).enumerate() {
            if !self.deleted[rid] {
                rows.push(row);
            }
        }
        self.rows = rows;
        self.deleted = vec![false; self.rows.len()];
        self.n_deleted = 0;
        let indexed = self.indexed_columns();
        for ci in indexed {
            self.rebuild_index(ci);
        }
    }

    fn rebuild_index(&mut self, ci: usize) {
        let mut idx = BTreeIndex::default();
        for (rid, row) in self.rows.iter().enumerate() {
            if !self.deleted[rid] {
                idx.insert(row[ci].clone(), rid as u32);
            }
        }
        self.indexes.insert(ci, idx);
    }

    /// Adds a secondary index at runtime (mirrors the paper's "an additional
    /// index has been created on c_phone" user context). Only live rows are
    /// indexed.
    pub fn create_index(&mut self, ci: usize) {
        if self.indexes.contains_key(&ci) {
            return;
        }
        self.rebuild_index(ci);
    }

    /// Rebuilds a row table from recovered *physical* state: all slots in
    /// rid order with their tombstone flags (tombstoned slots keep their
    /// last tuple, exactly like the live table). Indexes cover live rows
    /// only, matching incremental index maintenance.
    pub(crate) fn from_physical(
        def: &TableDef,
        rows: Vec<Vec<Value>>,
        deleted: Vec<bool>,
        indexed: &[usize],
    ) -> Self {
        debug_assert_eq!(rows.len(), deleted.len());
        let n_deleted = deleted.iter().filter(|&&d| d).count();
        let width = def.columns.len();
        let mut t = RowTable {
            name: def.name.clone(),
            rows,
            deleted,
            n_deleted,
            indexes: HashMap::new(),
            width,
        };
        for &ci in indexed {
            t.rebuild_index(ci);
        }
        t
    }

    /// Atomically installs compacted state built offline by background
    /// compaction: re-packed live rows and their rebuilt indexes.
    pub(crate) fn install_compacted(
        &mut self,
        rows: Vec<Vec<Value>>,
        indexes: HashMap<usize, BTreeIndex>,
    ) {
        self.deleted = vec![false; rows.len()];
        self.n_deleted = 0;
        self.rows = rows;
        self.indexes = indexes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::catalog::{ColumnDef, DataType};

    fn def() -> TableDef {
        TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "k".into(), data_type: DataType::Int, ndv: 3 },
                ColumnDef { name: "v".into(), data_type: DataType::Str, ndv: 3 },
            ],
            row_count: 3,
            indexed_columns: vec![],
            primary_key: "k".into(),
        }
    }

    fn data() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(10), Value::Int(20), Value::Int(30)],
            vec![
                Value::Str("x".into()),
                Value::Str("y".into()),
                Value::Str("z".into()),
            ],
        ]
    }

    #[test]
    fn builds_rows_from_columns() {
        let t = RowTable::from_columns(&def(), &data());
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.width(), 2);
        assert_eq!(t.row(1), &[Value::Int(20), Value::Str("y".into())]);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn primary_key_is_indexed_automatically() {
        let t = RowTable::from_columns(&def(), &data());
        assert_eq!(t.indexed_columns(), vec![0]);
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(20)), &[1]);
        assert!(t.index_on(1).is_none());
    }

    #[test]
    fn create_index_at_runtime() {
        let mut t = RowTable::from_columns(&def(), &data());
        t.create_index(1);
        assert_eq!(t.index_on(1).unwrap().lookup(&Value::Str("z".into())), &[2]);
        // idempotent
        t.create_index(1);
        assert_eq!(t.indexed_columns(), vec![0, 1]);
    }

    #[test]
    fn insert_appends_and_indexes() {
        let mut t = RowTable::from_columns(&def(), &data());
        let rid = t.insert(vec![Value::Int(40), Value::Str("w".into())]);
        assert_eq!(rid, 3);
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(40)), &[3]);
    }

    #[test]
    fn delete_tombstones_and_unindexes() {
        let mut t = RowTable::from_columns(&def(), &data());
        assert!(t.delete(1));
        assert!(!t.delete(1)); // already gone
        assert_eq!(t.row_count(), 2);
        assert!(t.has_deletions());
        assert!(t.is_deleted(1));
        assert!(t.index_on(0).unwrap().lookup(&Value::Int(20)).is_empty());
        let live: Vec<usize> = t.iter_live().map(|(rid, _)| rid).collect();
        assert_eq!(live, vec![0, 2]);
    }

    #[test]
    fn update_relocates_and_reindexes() {
        let mut t = RowTable::from_columns(&def(), &data());
        let new_rid = t.update(0, vec![Value::Int(11), Value::Str("x2".into())]);
        assert_eq!(new_rid, 3);
        assert_eq!(t.row_count(), 3);
        assert!(t.index_on(0).unwrap().lookup(&Value::Int(10)).is_empty());
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(11)), &[3]);
    }

    #[test]
    fn compact_repacks_rids_and_rebuilds_indexes() {
        let mut t = RowTable::from_columns(&def(), &data());
        t.create_index(1);
        t.delete(0);
        t.insert(vec![Value::Int(40), Value::Str("w".into())]);
        t.compact();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.physical_len(), 3);
        assert!(!t.has_deletions());
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(20)), &[0]);
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(40)), &[2]);
        assert_eq!(t.index_on(1).unwrap().lookup(&Value::Str("w".into())), &[2]);
    }
}
