//! Persistent column segments and the versioned manifest.
//!
//! A **segment file** (`<table>.v<version>.seg`) serializes one table's full
//! physical column-store state — base columns in their encoded
//! representation, delta builders, tombstone bitmap, version stamp — framed
//! as `magic + payload + crc32(payload)`. Recovery rejects anything whose
//! magic or checksum does not verify; a half-written segment therefore reads
//! as [`DurabilityError::Corrupt`], never as silently wrong data. Zone maps
//! are *not* persisted: they are deterministic over the base and recomputed
//! by [`ColumnTable::from_parts`], keeping segments smaller and the format
//! simpler.
//!
//! The **manifest** (`manifest.json`) is the durable root pointer: catalog,
//! statistics, generator config, the WAL generation replay starts from, and
//! the list of segment files that make up version `N`. It publishes
//! atomically — serialized to `manifest.tmp`, fsynced, then `rename`d over
//! the live file — so a crash at any point leaves either the old or the new
//! manifest fully intact, and every file the *old* manifest references is
//! only deleted (see [`clean_stale`]) after the rename lands.

use super::codec::{self, Reader};
use super::col_store::{ColumnData, ColumnTable, ColumnTableSnapshot, DictColumn, ForInt, RleRuns};
use super::durable_io::{crc32, DurabilityError, DurableFile, FailPoints};
use crate::stats::DbStats;
use crate::tpch::TpchConfig;
use qpe_sql::catalog::MemoryCatalog;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Segment file magic (8 bytes).
const SEGMENT_MAGIC: &[u8; 8] = b"QPESEG2\0";

/// Manifest schema version.
pub const MANIFEST_FORMAT: u32 = 1;

/// The manifest's on-disk file name.
pub const MANIFEST_FILE: &str = "manifest.json";

/// WAL file name of generation `gen` (`wal.<gen>`).
pub fn wal_file_name(gen: u64) -> String {
    format!("wal.{gen}")
}

/// The WAL generation encoded in a file name, if it is a WAL file.
fn parse_wal_gen(name: &str) -> Option<u64> {
    name.strip_prefix("wal.").and_then(|s| s.parse().ok())
}

/// Segment file name for one table at one manifest version.
pub fn segment_file_name(table: &str, version: u64) -> String {
    format!("{table}.v{version}.seg")
}

/// One table's segment file, as referenced by the manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentRef {
    /// Table name.
    pub table: String,
    /// Segment file name (relative to the database directory).
    pub file: String,
}

/// The durable root: everything recovery needs besides the segment files
/// and the WAL chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest schema version ([`MANIFEST_FORMAT`]).
    pub format: u32,
    /// Checkpoint version this manifest publishes.
    pub version: u64,
    /// WAL generation replay starts from (`wal.<wal_gen>`; later generations
    /// — left by a checkpoint that crashed before publishing — are replayed
    /// in sequence after it).
    pub wal_gen: u64,
    /// Table catalog, including runtime-created indexes.
    pub catalog: MemoryCatalog,
    /// Optimizer statistics as of the checkpoint (replay advances them
    /// exactly as the live run did).
    pub stats: DbStats,
    /// Dataset/generator configuration.
    pub config: TpchConfig,
    /// Segment file per table.
    pub tables: Vec<SegmentRef>,
}

// ---------------------------------------------------------------------------
// Column codec
// ---------------------------------------------------------------------------
// Tags: 0=Int 1=Float 2=Str 3=Date 4=Dict 5=RleInt 6=RleDate 7=Nullable
// 8=Mixed 9=ForInt. Encoded representations persist as-is — a recovered base
// must be *physically* identical to the pre-crash base, not merely equal
// after decoding, because scans, zone maps and bloom filters depend on the
// representation (zones and blooms themselves are recomputed, which is what
// makes them byte-identical after recovery: same base, same deterministic
// build).

fn put_col(buf: &mut Vec<u8>, col: &ColumnData) {
    match col {
        ColumnData::Int(v) => {
            codec::put_u8(buf, 0);
            codec::put_u32(buf, v.len() as u32);
            for x in v {
                codec::put_i64(buf, *x);
            }
        }
        ColumnData::Float(v) => {
            codec::put_u8(buf, 1);
            codec::put_u32(buf, v.len() as u32);
            for x in v {
                codec::put_f64(buf, *x);
            }
        }
        ColumnData::Str(v) => {
            codec::put_u8(buf, 2);
            codec::put_u32(buf, v.len() as u32);
            for s in v {
                codec::put_str(buf, s);
            }
        }
        ColumnData::Date(v) => {
            codec::put_u8(buf, 3);
            codec::put_u32(buf, v.len() as u32);
            for d in v {
                codec::put_i32(buf, *d);
            }
        }
        ColumnData::Dict(d) => {
            codec::put_u8(buf, 4);
            codec::put_u32(buf, d.codes.len() as u32);
            for c in &d.codes {
                codec::put_u32(buf, *c);
            }
            codec::put_u32(buf, d.values.len() as u32);
            for s in &d.values {
                codec::put_str(buf, s);
            }
        }
        ColumnData::RleInt(r) => {
            codec::put_u8(buf, 5);
            codec::put_u32(buf, r.ends.len() as u32);
            for e in &r.ends {
                codec::put_u32(buf, *e);
            }
            for v in &r.vals {
                codec::put_i64(buf, *v);
            }
        }
        ColumnData::RleDate(r) => {
            codec::put_u8(buf, 6);
            codec::put_u32(buf, r.ends.len() as u32);
            for e in &r.ends {
                codec::put_u32(buf, *e);
            }
            for v in &r.vals {
                codec::put_i32(buf, *v);
            }
        }
        ColumnData::Nullable { nulls, values } => {
            codec::put_u8(buf, 7);
            codec::put_u32(buf, nulls.len() as u32);
            for &n in nulls {
                codec::put_u8(buf, n as u8);
            }
            put_col(buf, values);
        }
        ColumnData::Mixed(v) => {
            codec::put_u8(buf, 8);
            codec::put_u32(buf, v.len() as u32);
            for val in v {
                codec::put_value(buf, val);
            }
        }
        ColumnData::ForInt(f) => {
            codec::put_u8(buf, 9);
            codec::put_u64(buf, f.len() as u64);
            codec::put_u32(buf, f.refs.len() as u32);
            for x in &f.refs {
                codec::put_i64(buf, *x);
            }
            for x in &f.maxs {
                codec::put_i64(buf, *x);
            }
            for w in &f.widths {
                codec::put_u8(buf, *w);
            }
            for o in &f.offsets {
                codec::put_u32(buf, *o);
            }
            codec::put_u32(buf, f.packed.len() as u32);
            for w in &f.packed {
                codec::put_u64(buf, *w);
            }
        }
    }
}

/// Reads one column, validating every structural invariant the readers rely
/// on (dictionary codes in range, RLE run ends strictly ascending, null mask
/// aligned with its typed vector) so corrupt bytes surface here as
/// [`DurabilityError::Corrupt`] rather than as a panic in a scan.
fn read_col(r: &mut Reader<'_>, allow_nullable: bool) -> Result<ColumnData, DurabilityError> {
    Ok(match r.u8()? {
        0 => {
            let n = r.count(8)?;
            ColumnData::Int((0..n).map(|_| r.i64()).collect::<Result<_, _>>()?)
        }
        1 => {
            let n = r.count(8)?;
            ColumnData::Float((0..n).map(|_| r.f64()).collect::<Result<_, _>>()?)
        }
        2 => {
            let n = r.count(4)?;
            ColumnData::Str((0..n).map(|_| r.str_()).collect::<Result<_, _>>()?)
        }
        3 => {
            let n = r.count(4)?;
            ColumnData::Date((0..n).map(|_| r.i32()).collect::<Result<_, _>>()?)
        }
        4 => {
            let n = r.count(4)?;
            let codes: Vec<u32> = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
            let m = r.count(4)?;
            let values: Vec<String> = (0..m).map(|_| r.str_()).collect::<Result<_, _>>()?;
            if codes.iter().any(|&c| c as usize >= values.len()) {
                return Err(DurabilityError::Corrupt(
                    "dictionary code out of range".into(),
                ));
            }
            ColumnData::Dict(DictColumn { codes, values })
        }
        5 => {
            let n = r.count(12)?;
            let ends: Vec<u32> = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
            check_runs(&ends)?;
            let vals: Vec<i64> = (0..n).map(|_| r.i64()).collect::<Result<_, _>>()?;
            ColumnData::RleInt(RleRuns { ends, vals })
        }
        6 => {
            let n = r.count(8)?;
            let ends: Vec<u32> = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
            check_runs(&ends)?;
            let vals: Vec<i32> = (0..n).map(|_| r.i32()).collect::<Result<_, _>>()?;
            ColumnData::RleDate(RleRuns { ends, vals })
        }
        7 if allow_nullable => {
            let n = r.count(1)?;
            let nulls: Vec<bool> = (0..n)
                .map(|_| r.u8().map(|b| b != 0))
                .collect::<Result<_, _>>()?;
            let values = read_col(r, false)?;
            if values.len() != n {
                return Err(DurabilityError::Corrupt(
                    "null mask and typed vector lengths differ".into(),
                ));
            }
            ColumnData::Nullable { nulls, values: Box::new(values) }
        }
        8 => {
            let n = r.count(1)?;
            ColumnData::Mixed((0..n).map(|_| codec::read_value(r)).collect::<Result<_, _>>()?)
        }
        9 => {
            let n_rows = r.u64()? as usize;
            let nb = r.count(21)?;
            let refs: Vec<i64> = (0..nb).map(|_| r.i64()).collect::<Result<_, _>>()?;
            let maxs: Vec<i64> = (0..nb).map(|_| r.i64()).collect::<Result<_, _>>()?;
            let widths: Vec<u8> = (0..nb).map(|_| r.u8()).collect::<Result<_, _>>()?;
            let offsets: Vec<u32> = (0..nb).map(|_| r.u32()).collect::<Result<_, _>>()?;
            let np = r.count(8)?;
            let packed: Vec<u64> = (0..np).map(|_| r.u64()).collect::<Result<_, _>>()?;
            ColumnData::ForInt(
                ForInt::from_parts(n_rows, refs, maxs, widths, offsets, packed)
                    .map_err(|e| DurabilityError::Corrupt(e.into()))?,
            )
        }
        t => {
            return Err(DurabilityError::Corrupt(format!(
                "unknown column tag {t}"
            )))
        }
    })
}

fn check_runs(ends: &[u32]) -> Result<(), DurabilityError> {
    let ascending = ends.windows(2).all(|w| w[0] < w[1]);
    if !ascending || ends.first() == Some(&0) {
        return Err(DurabilityError::Corrupt("RLE run ends not ascending".into()));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

/// Serializes one table's snapshot to `path` through the crash-injectable
/// file layer (flush site `"seg"`), framed `magic + payload + crc32`.
pub fn write_segment(
    path: &Path,
    snap: &ColumnTableSnapshot,
    fp: FailPoints,
) -> Result<(), DurabilityError> {
    let mut payload = Vec::new();
    codec::put_str(&mut payload, &snap.name);
    codec::put_u64(&mut payload, snap.version);
    codec::put_u64(&mut payload, snap.history_floor);
    match snap.block_rows_override {
        Some(b) => {
            codec::put_u8(&mut payload, 1);
            codec::put_u64(&mut payload, b as u64);
        }
        None => codec::put_u8(&mut payload, 0),
    }
    codec::put_u64(&mut payload, snap.base_rows as u64);
    codec::put_u64(&mut payload, snap.delta_rows as u64);
    codec::put_u32(&mut payload, snap.width() as u32);
    for col in snap.base.iter() {
        put_col(&mut payload, col);
    }
    for col in snap.delta.iter() {
        put_col(&mut payload, col);
    }
    // Per-row MVCC version stamps (begin/end) over the physical rid space;
    // replay on top of a recovered segment must see the exact visibility
    // history the live table had at checkpoint time.
    codec::put_u32(&mut payload, snap.row_begin.len() as u32);
    for &b in snap.row_begin.iter() {
        codec::put_u64(&mut payload, b);
    }
    for &e in snap.row_end.iter() {
        codec::put_u64(&mut payload, e);
    }
    let mut f = DurableFile::create(path, fp, "seg")?;
    f.write(SEGMENT_MAGIC)?;
    f.write(&payload)?;
    f.write(&crc32(&payload).to_le_bytes())?;
    f.flush()
}

/// Reads and validates a segment file back into a [`ColumnTable`] (zones
/// recomputed). Any framing, checksum or structural violation is
/// [`DurabilityError::Corrupt`].
pub fn read_segment(path: &Path) -> Result<ColumnTable, DurabilityError> {
    let bytes = fs::read(path)?;
    if bytes.len() < SEGMENT_MAGIC.len() + 4 || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(DurabilityError::Corrupt(format!(
            "{}: bad segment magic or truncated file",
            path.display()
        )));
    }
    let payload = &bytes[SEGMENT_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(payload) != stored {
        return Err(DurabilityError::Corrupt(format!(
            "{}: segment checksum mismatch",
            path.display()
        )));
    }
    let mut r = Reader::new(payload);
    let name = r.str_()?;
    let version = r.u64()?;
    let history_floor = r.u64()?;
    if history_floor > version {
        return Err(DurabilityError::Corrupt(format!(
            "history floor {history_floor} exceeds version {version}"
        )));
    }
    let block_rows_override = match r.u8()? {
        0 => None,
        1 => Some(r.u64()? as usize),
        t => {
            return Err(DurabilityError::Corrupt(format!(
                "bad block-rows flag {t}"
            )))
        }
    };
    let base_rows = r.u64()? as usize;
    let delta_rows = r.u64()? as usize;
    let width = r.count(2)?;
    let mut base = Vec::with_capacity(width);
    for _ in 0..width {
        let col = read_col(&mut r, true)?;
        if col.len() != base_rows {
            return Err(DurabilityError::Corrupt(
                "base column length differs from header".into(),
            ));
        }
        base.push(col);
    }
    let mut delta = Vec::with_capacity(width);
    for _ in 0..width {
        let col = read_col(&mut r, true)?;
        if col.len() != delta_rows {
            return Err(DurabilityError::Corrupt(
                "delta column length differs from header".into(),
            ));
        }
        delta.push(col);
    }
    let n = r.count(1)?;
    if n != base_rows + delta_rows {
        return Err(DurabilityError::Corrupt(
            "row-version vector length differs from rid space".into(),
        ));
    }
    let row_begin: Vec<u64> = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
    let row_end: Vec<u64> = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
    for (&b, &e) in row_begin.iter().zip(&row_end) {
        if b > version || (e != u64::MAX && (e > version || e <= b)) {
            return Err(DurabilityError::Corrupt(
                "row version stamp out of range".into(),
            ));
        }
    }
    if !r.is_done() {
        return Err(DurabilityError::Corrupt("trailing bytes in segment".into()));
    }
    Ok(ColumnTable::from_parts(
        name,
        base,
        delta,
        row_begin,
        row_end,
        version,
        history_floor,
        block_rows_override,
    ))
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Atomically publishes a manifest: write `manifest.tmp` + fsync (flush site
/// `"manifest"`), then rename over [`MANIFEST_FILE`]. Control sites
/// `"manifest:pre_rename"` / `"manifest:post_rename"` bracket the rename for
/// the crash harness.
pub fn write_manifest(
    dir: &Path,
    manifest: &Manifest,
    fp: &FailPoints,
) -> Result<(), DurabilityError> {
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| DurabilityError::Io(format!("serialize manifest: {e}")))?;
    let tmp = dir.join("manifest.tmp");
    let mut f = DurableFile::create(&tmp, fp.clone(), "manifest")?;
    f.write(json.as_bytes())?;
    f.flush()?;
    fp.hit("manifest:pre_rename")?;
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    fp.hit("manifest:post_rename")?;
    // Durably record the rename itself (best-effort; not all platforms
    // support fsync on a directory handle).
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Loads the manifest, or `None` when the directory holds no database yet.
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, DurabilityError> {
    let path = dir.join(MANIFEST_FILE);
    let json = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let m: Manifest = serde_json::from_str(&json).map_err(|e| {
        DurabilityError::Corrupt(format!("{}: {e}", path.display()))
    })?;
    if m.format != MANIFEST_FORMAT {
        return Err(DurabilityError::Corrupt(format!(
            "unsupported manifest format {}",
            m.format
        )));
    }
    Ok(Some(m))
}

/// Best-effort removal of files the published manifest no longer references:
/// WAL generations before `manifest.wal_gen`, segment files not in the
/// table list, and a leftover `manifest.tmp`. Runs strictly *after* the
/// manifest rename, so a crash during cleanup only leaves garbage, never
/// dangling references.
pub fn clean_stale(dir: &Path, manifest: &Manifest) {
    let referenced: Vec<&str> = manifest.tables.iter().map(|t| t.file.as_str()).collect();
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match parse_wal_gen(name) {
            Some(gen) => gen < manifest.wal_gen,
            None => {
                name == "manifest.tmp"
                    || (name.ends_with(".seg") && !referenced.contains(&name))
            }
        };
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// WAL generation files present in `dir` from `from_gen` upward, in replay
/// order, stopping at the first gap (a missing generation means everything
/// later belongs to a different lineage and must be ignored).
pub fn wal_chain(dir: &Path, from_gen: u64) -> Vec<(u64, PathBuf)> {
    let mut chain = Vec::new();
    let mut gen = from_gen;
    loop {
        let path = dir.join(wal_file_name(gen));
        if !path.exists() {
            break;
        }
        chain.push((gen, path));
        gen += 1;
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::value::Value;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tempdir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qpe_persist_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create tempdir");
        dir
    }

    fn exotic_table() -> ColumnTable {
        // Exercise every ColumnData representation, plus a live delta and
        // tombstones, so the round trip covers the whole codec.
        let n = 128;
        let ints: Vec<Value> = (0..n).map(|i| Value::Int((i / 32) as i64)).collect();
        let floats: Vec<Value> = (0..n).map(|i| Value::Float(i as f64 / 2.0)).collect();
        let dates: Vec<Value> = (0..n).map(|i| Value::Date(i / 64)).collect();
        let dict: Vec<Value> = (0..n)
            .map(|i| Value::Str(["aa", "bb", "cc"][(i % 3) as usize].to_string()))
            .collect();
        let plain: Vec<Value> = (0..n).map(|i| Value::Str(format!("s{i}"))).collect();
        let nullable: Vec<Value> = (0..n)
            .map(|i| if i % 7 == 0 { Value::Null } else { Value::Int(i as i64) })
            .collect();
        let mixed: Vec<Value> = (0..n)
            .map(|i| if i % 2 == 0 { Value::Int(i as i64) } else { Value::Str("x".into()) })
            .collect();
        // Run-free but narrow-domain: rejected by RLE, accepted by FOR.
        let nar: Vec<Value> = (0..n).map(|i| Value::Int((i * 13 % 97) as i64)).collect();
        let mut t = ColumnTable::from_columns(
            "exotic",
            &[ints, floats, dates, dict, plain, nullable, mixed, nar],
        );
        assert!(
            matches!(t.column(7), ColumnData::ForInt(_)),
            "fixture column 7 must land on the FOR representation"
        );
        t.insert(&[
            Value::Int(999),
            Value::Float(0.25),
            Value::Date(77),
            Value::Str("dd".into()),
            Value::Str("tail".into()),
            Value::Null,
            Value::Float(1.5),
            Value::Int(42),
        ]);
        t.delete(3);
        t.delete(60);
        t
    }

    fn assert_tables_identical(a: &ColumnTable, b: &ColumnTable) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.version(), b.version());
        assert_eq!(a.physical_len(), b.physical_len());
        assert_eq!(a.delta_len(), b.delta_len());
        assert_eq!(a.deleted_len(), b.deleted_len());
        assert_eq!(a.width(), b.width());
        assert_eq!(a.block_rows(), b.block_rows());
        assert_eq!(a.history_floor(), b.history_floor());
        assert_eq!(
            a.row_versions(),
            b.row_versions(),
            "per-row begin/end versions changed across the round trip"
        );
        for ci in 0..a.width() {
            // Same representation, not merely equal values.
            assert_eq!(
                std::mem::discriminant(a.column(ci)),
                std::mem::discriminant(b.column(ci)),
                "column {ci} representation changed across the round trip"
            );
            for rid in 0..a.physical_len() {
                assert_eq!(a.is_deleted(rid), b.is_deleted(rid));
                assert_eq!(
                    a.value(ci, rid).total_cmp(&b.value(ci, rid)),
                    std::cmp::Ordering::Equal,
                    "cell ({ci},{rid})"
                );
            }
            assert_eq!(a.zones(ci).len(), b.zones(ci).len());
        }
    }

    #[test]
    fn segment_round_trips_every_representation() {
        let dir = tempdir("roundtrip");
        let t = exotic_table();
        let path = dir.join(segment_file_name("exotic", 1));
        write_segment(&path, &t.snapshot(), FailPoints::default()).expect("write");
        let back = read_segment(&path).expect("read");
        assert_tables_identical(&t, &back);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_or_tampered_segment_reads_as_corrupt_not_panic() {
        let dir = tempdir("torn");
        let t = exotic_table();
        let path = dir.join("t.v1.seg");
        // Torn write via the crash layer: only a prefix reaches disk.
        let fp = FailPoints::default();
        fp.arm_partial("seg", 1, 0.5);
        assert!(matches!(
            write_segment(&path, &t.snapshot(), fp),
            Err(DurabilityError::Crashed)
        ));
        assert!(matches!(
            read_segment(&path),
            Err(DurabilityError::Corrupt(_))
        ));
        // A full write with one flipped byte fails the checksum.
        write_segment(&path, &t.snapshot(), FailPoints::default()).expect("write");
        let mut bytes = fs::read(&path).expect("read bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).expect("tamper");
        assert!(matches!(
            read_segment(&path),
            Err(DurabilityError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    fn manifest_fixture() -> Manifest {
        Manifest {
            format: MANIFEST_FORMAT,
            version: 3,
            wal_gen: 3,
            catalog: MemoryCatalog::default(),
            stats: DbStats::default(),
            config: TpchConfig::default(),
            tables: vec![SegmentRef { table: "t".into(), file: "t.v3.seg".into() }],
        }
    }

    #[test]
    fn manifest_round_trips_and_missing_reads_as_none() {
        let dir = tempdir("manifest");
        assert!(read_manifest(&dir).expect("empty dir").is_none());
        let m = manifest_fixture();
        write_manifest(&dir, &m, &FailPoints::default()).expect("write");
        let back = read_manifest(&dir).expect("read").expect("present");
        assert_eq!(back.version, 3);
        assert_eq!(back.wal_gen, 3);
        assert_eq!(back.tables.len(), 1);
        assert_eq!(back.tables[0].file, "t.v3.seg");
        assert!(!dir.join("manifest.tmp").exists(), "tmp renamed away");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_rename_preserves_old_manifest() {
        let dir = tempdir("atomic");
        let mut m = manifest_fixture();
        write_manifest(&dir, &m, &FailPoints::default()).expect("v3");
        // Next publication dies between tmp-fsync and rename.
        m.version = 4;
        let fp = FailPoints::default();
        fp.arm("manifest:pre_rename", 1);
        assert!(write_manifest(&dir, &m, &fp).is_err());
        let back = read_manifest(&dir).expect("read").expect("still present");
        assert_eq!(back.version, 3, "old manifest must survive the crash");
        // The stranded tmp is swept on the next successful cycle.
        assert!(dir.join("manifest.tmp").exists());
        clean_stale(&dir, &back);
        assert!(!dir.join("manifest.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_stale_sweeps_only_unreferenced_files() {
        let dir = tempdir("sweep");
        let m = manifest_fixture(); // wal_gen = 3, references t.v3.seg
        for name in ["wal.1", "wal.2", "wal.3", "wal.4", "t.v2.seg", "t.v3.seg", "other.txt"] {
            fs::write(dir.join(name), b"x").expect("touch");
        }
        clean_stale(&dir, &m);
        let mut left: Vec<String> = fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        left.sort();
        assert_eq!(left, ["other.txt", "t.v3.seg", "wal.3", "wal.4"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_chain_follows_generations_until_first_gap() {
        let dir = tempdir("chain");
        for name in ["wal.2", "wal.3", "wal.5"] {
            fs::write(dir.join(name), b"x").expect("touch");
        }
        let chain = wal_chain(&dir, 2);
        let gens: Vec<u64> = chain.iter().map(|(g, _)| *g).collect();
        assert_eq!(gens, [2, 3], "generation 5 is beyond the gap");
        assert!(wal_chain(&dir, 7).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
