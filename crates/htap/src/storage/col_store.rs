//! Column-oriented storage for the AP engine.
//!
//! Columns are typed vectors; scans touch only the columns a query
//! references, and filters are evaluated vectorized over a selection vector.
//! This is the structural advantage the paper's expert explanations cite for
//! AP ("scan only relevant columns and apply filters before joining").
//!
//! # Delta region (write path)
//!
//! The base columns are immutable between compactions. Writes land in a
//! **delta region** — one append-only typed column builder per base column —
//! plus a deleted-rid bitmap over the combined `base + delta` rid space:
//!
//! * insert → append to the delta builders;
//! * delete → set the rid's bit;
//! * update → delete + append (out-of-place, the column-store discipline).
//!
//! A monotonically increasing **version stamp** advances on every write and
//! on compaction; it is the freshness signal the system surfaces per table.
//! [`ColumnTable::compact`] merges live delta rows into fresh base columns
//! and clears the bitmap, restoring the zero-copy clean-scan fast path.
//! Readers see every write immediately — scans cover both regions through
//! [`ColRef`] — so AP reads are always fresh without waiting for compaction.

use qpe_sql::value::Value;

/// Typed column data. Generated TPC-H data has no NULLs, but a NULL-tolerant
/// variant keeps the executor general.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// i64 column.
    Int(Vec<i64>),
    /// f64 column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<String>),
    /// Date column (days since epoch).
    Date(Vec<i32>),
    /// Mixed/NULL-bearing column (fallback representation).
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Builds typed storage from generic values, falling back to `Mixed` if
    /// the column is heterogeneous or contains NULLs.
    ///
    /// Single pass: the first value picks the candidate representation and
    /// ingestion proceeds directly into the typed vector, demoting to
    /// `Mixed` the moment a value disagrees (instead of pre-scanning the
    /// column once per candidate type).
    pub fn from_values(values: &[Value]) -> Self {
        let Some(first) = values.first() else {
            return ColumnData::Mixed(Vec::new());
        };
        match first {
            Value::Int(_) => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Int(x) => out.push(*x),
                        _ => return Self::demote(values, i),
                    }
                }
                ColumnData::Int(out)
            }
            Value::Float(_) => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Float(x) => out.push(*x),
                        _ => return Self::demote(values, i),
                    }
                }
                ColumnData::Float(out)
            }
            Value::Str(_) => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Str(x) => out.push(x.clone()),
                        _ => return Self::demote(values, i),
                    }
                }
                ColumnData::Str(out)
            }
            Value::Date(_) => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Date(x) => out.push(*x),
                        _ => return Self::demote(values, i),
                    }
                }
                ColumnData::Date(out)
            }
            Value::Null => ColumnData::Mixed(values.to_vec()),
        }
    }

    /// Cold path of [`ColumnData::from_values`]: a type mismatch was found at
    /// position `_at`; store the whole column as generic values.
    #[cold]
    fn demote(values: &[Value], _at: usize) -> Self {
        ColumnData::Mixed(values.to_vec())
    }

    /// An empty column of the same typed representation — the shape of a
    /// fresh delta builder for this base column.
    pub fn empty_like(&self) -> ColumnData {
        match self {
            ColumnData::Int(_) => ColumnData::Int(Vec::new()),
            ColumnData::Float(_) => ColumnData::Float(Vec::new()),
            ColumnData::Str(_) => ColumnData::Str(Vec::new()),
            ColumnData::Date(_) => ColumnData::Date(Vec::new()),
            ColumnData::Mixed(_) => ColumnData::Mixed(Vec::new()),
        }
    }

    /// Appends one value, demoting the whole column to `Mixed` when the
    /// value does not fit the typed representation (e.g. a NULL arriving in
    /// an `Int` delta builder).
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColumnData::Int(buf), Value::Int(x)) => buf.push(x),
            (ColumnData::Float(buf), Value::Float(x)) => buf.push(x),
            (ColumnData::Str(buf), Value::Str(s)) => buf.push(s),
            (ColumnData::Date(buf), Value::Date(d)) => buf.push(d),
            (ColumnData::Mixed(buf), v) => buf.push(v),
            (_, v) => {
                self.demote_in_place();
                self.push(v);
            }
        }
    }

    #[cold]
    fn demote_in_place(&mut self) {
        let values: Vec<Value> = match std::mem::replace(self, ColumnData::Mixed(Vec::new())) {
            ColumnData::Int(buf) => buf.into_iter().map(Value::Int).collect(),
            ColumnData::Float(buf) => buf.into_iter().map(Value::Float).collect(),
            ColumnData::Str(buf) => buf.into_iter().map(Value::Str).collect(),
            ColumnData::Date(buf) => buf.into_iter().map(Value::Date).collect(),
            ColumnData::Mixed(buf) => buf,
        };
        *self = ColumnData::Mixed(values);
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at position `i` as a generic [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Zero-copy typed view when the column stores `i64`.
    pub fn as_int_slice(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores `f64`.
    pub fn as_float_slice(&self) -> Option<&[f64]> {
        match self {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores strings.
    pub fn as_str_slice(&self) -> Option<&[String]> {
        match self {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores dates.
    pub fn as_date_slice(&self) -> Option<&[i32]> {
        match self {
            ColumnData::Date(v) => Some(v),
            _ => None,
        }
    }

    /// Splices `other` onto the end of `self`, preserving typed storage when
    /// the representations agree and demoting to `Mixed` otherwise — the
    /// reassembly step of morsel-parallel kernels, whose per-morsel outputs
    /// concatenate back into one dense column.
    pub fn append(&mut self, other: ColumnData) {
        match (&mut *self, other) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend(b),
            (ColumnData::Date(a), ColumnData::Date(b)) => a.extend(b),
            (ColumnData::Mixed(a), b) => a.extend((0..b.len()).map(|i| b.get(i))),
            (_, b) if b.is_empty() => {}
            (a, b) if a.is_empty() => *a = b,
            (_, b) => {
                self.demote_in_place();
                self.append(b);
            }
        }
    }

    /// Gathers the given physical positions into a new dense typed column,
    /// preserving the storage representation (no per-cell [`Value`] boxing
    /// for numeric columns).
    pub fn gather_rows(&self, idxs: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int(v) => {
                ColumnData::Int(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Float(v) => {
                ColumnData::Float(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(idxs.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Date(v) => {
                ColumnData::Date(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(idxs.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }
}

/// A borrowed view of one logical column that may span the immutable base
/// segment and the delta segment. Physical rids index the concatenation:
/// `rid < split` reads the base, `rid - split` reads the delta.
///
/// Clean tables hand out `Single` views (the zero-copy fast path the batch
/// executor borrows outright); dirty tables hand out `Chunked` views so
/// delta rows flow through the same selection-vector kernels without copying
/// the base.
#[derive(Debug, Clone, Copy)]
pub enum ColRef<'a> {
    /// One contiguous segment.
    Single(&'a ColumnData),
    /// Base + delta segments.
    Chunked {
        /// Immutable base segment.
        base: &'a ColumnData,
        /// Append-only delta segment.
        delta: &'a ColumnData,
    },
}

impl<'a> ColRef<'a> {
    /// Total physical length across segments.
    pub fn len(&self) -> usize {
        match self {
            ColRef::Single(c) => c.len(),
            ColRef::Chunked { base, delta } => base.len() + delta.len(),
        }
    }

    /// True when the view holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical position where the view crosses from base into delta, if
    /// it spans two segments — the chunk boundary morsel splits respect.
    pub fn split_point(&self) -> Option<usize> {
        match self {
            ColRef::Single(_) => None,
            ColRef::Chunked { base, .. } => Some(base.len()),
        }
    }

    /// The contiguous segment, when there is only one.
    pub fn as_single(&self) -> Option<&'a ColumnData> {
        match self {
            ColRef::Single(c) => Some(c),
            ColRef::Chunked { .. } => None,
        }
    }

    /// Value at physical position `rid` (cross-segment).
    pub fn get(&self, rid: usize) -> Value {
        match self {
            ColRef::Single(c) => c.get(rid),
            ColRef::Chunked { base, delta } => {
                let split = base.len();
                if rid < split {
                    base.get(rid)
                } else {
                    delta.get(rid - split)
                }
            }
        }
    }

    /// Gathers physical positions into a dense owned typed column,
    /// preserving typed storage when both segments agree on representation.
    pub fn gather_rows(&self, idxs: &[u32]) -> ColumnData {
        match self {
            ColRef::Single(c) => c.gather_rows(idxs),
            ColRef::Chunked { base, delta } => {
                let split = base.len();
                macro_rules! typed_gather {
                    ($variant:ident, $b:expr, $d:expr) => {
                        ColumnData::$variant(
                            idxs.iter()
                                .map(|&i| {
                                    let i = i as usize;
                                    if i < split {
                                        $b[i].clone()
                                    } else {
                                        $d[i - split].clone()
                                    }
                                })
                                .collect(),
                        )
                    };
                }
                match (base, delta) {
                    (ColumnData::Int(b), ColumnData::Int(d)) => typed_gather!(Int, b, d),
                    (ColumnData::Float(b), ColumnData::Float(d)) => typed_gather!(Float, b, d),
                    (ColumnData::Str(b), ColumnData::Str(d)) => typed_gather!(Str, b, d),
                    (ColumnData::Date(b), ColumnData::Date(d)) => typed_gather!(Date, b, d),
                    _ => ColumnData::Mixed(idxs.iter().map(|&i| self.get(i as usize)).collect()),
                }
            }
        }
    }

    /// Materializes the whole view as one dense owned column.
    pub fn to_dense(&self) -> ColumnData {
        match self {
            ColRef::Single(c) => (*c).clone(),
            ColRef::Chunked { .. } => {
                let all: Vec<u32> = (0..self.len() as u32).collect();
                self.gather_rows(&all)
            }
        }
    }
}

/// A column-store table: immutable typed base columns plus the delta region.
#[derive(Debug)]
pub struct ColumnTable {
    name: String,
    /// Base segment — immutable between compactions.
    base: Vec<ColumnData>,
    /// Delta segment — append-only typed builders, one per column.
    delta: Vec<ColumnData>,
    base_rows: usize,
    delta_rows: usize,
    /// Deleted-rid bitmap over the combined `base + delta` rid space.
    deleted: Vec<bool>,
    n_deleted: usize,
    /// Monotonically increasing write stamp (bumps on every insert, delete,
    /// update and compaction).
    version: u64,
}

impl ColumnTable {
    /// Builds typed columns from generic column-major data.
    pub fn from_columns(name: &str, columns: &[Vec<Value>]) -> Self {
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        let base: Vec<ColumnData> =
            columns.iter().map(|c| ColumnData::from_values(c)).collect();
        let delta = base.iter().map(|c| c.empty_like()).collect();
        ColumnTable {
            name: name.to_string(),
            base,
            delta,
            base_rows: rows,
            delta_rows: 0,
            deleted: vec![false; rows],
            n_deleted: 0,
            version: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of *live* rows.
    pub fn row_count(&self) -> usize {
        self.base_rows + self.delta_rows - self.n_deleted
    }

    /// Number of physical rids (`base + delta`, tombstones included).
    pub fn physical_len(&self) -> usize {
        self.base_rows + self.delta_rows
    }

    /// Rows currently in the delta region (the freshness backlog),
    /// tombstoned ones included.
    pub fn delta_len(&self) -> usize {
        self.delta_rows
    }

    /// Delta rows still live (inserted since the last compaction and not
    /// deleted again).
    pub fn live_delta_len(&self) -> usize {
        self.deleted[self.base_rows..]
            .iter()
            .filter(|&&d| !d)
            .count()
    }

    /// Rids currently tombstoned.
    pub fn deleted_len(&self) -> usize {
        self.n_deleted
    }

    /// Current version stamp.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True when scans can borrow base columns with no selection vector:
    /// empty delta and no tombstones.
    pub fn is_clean(&self) -> bool {
        self.delta_rows == 0 && self.n_deleted == 0
    }

    /// True when physical rid `rid` is tombstoned.
    pub fn is_deleted(&self, rid: usize) -> bool {
        self.deleted[rid]
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.base.len()
    }

    /// The *base segment* of column `ci` (zero-copy; pair with
    /// [`ColumnTable::is_clean`], or use [`ColumnTable::column_ref`] for the
    /// full delta-aware view).
    pub fn column(&self, ci: usize) -> &ColumnData {
        &self.base[ci]
    }

    /// Delta-aware view of column `ci`: `Single` (zero-copy base) when the
    /// delta is empty, `Chunked` otherwise.
    pub fn column_ref(&self, ci: usize) -> ColRef<'_> {
        if self.delta_rows == 0 {
            ColRef::Single(&self.base[ci])
        } else {
            ColRef::Chunked { base: &self.base[ci], delta: &self.delta[ci] }
        }
    }

    /// Generic value at (column, physical rid) — rid may point into either
    /// segment.
    pub fn value(&self, ci: usize, rid: usize) -> Value {
        if rid < self.base_rows {
            self.base[ci].get(rid)
        } else {
            self.delta[ci].get(rid - self.base_rows)
        }
    }

    /// Physical rids of live rows, ascending (base region first, then
    /// delta) — the selection vector a delta-aware scan starts from.
    pub fn live_rids(&self) -> Vec<u32> {
        (0..self.physical_len() as u32)
            .filter(|&rid| !self.deleted[rid as usize])
            .collect()
    }

    /// Appends a row to the delta region. Returns the new physical rid.
    pub fn insert(&mut self, row: &[Value]) -> u32 {
        debug_assert_eq!(row.len(), self.base.len());
        for (col, v) in self.delta.iter_mut().zip(row) {
            col.push(v.clone());
        }
        self.delta_rows += 1;
        self.deleted.push(false);
        self.version += 1;
        (self.physical_len() - 1) as u32
    }

    /// Tombstones a physical rid. Returns false when already deleted.
    pub fn delete(&mut self, rid: u32) -> bool {
        let r = rid as usize;
        if self.deleted[r] {
            return false;
        }
        self.deleted[r] = true;
        self.n_deleted += 1;
        self.version += 1;
        true
    }

    /// Out-of-place update: tombstone + delta append. Returns the new rid.
    pub fn update(&mut self, rid: u32, row: &[Value]) -> u32 {
        self.delete(rid);
        self.insert(row)
    }

    /// Merges live delta rows into fresh base columns and clears the bitmap
    /// — the freshness mechanism made explicit. Physical rids re-pack to
    /// `0..row_count()`; subsequent scans take the zero-copy clean path.
    pub fn compact(&mut self) {
        if self.is_clean() {
            return;
        }
        let live = self.live_rids();
        let mut new_base = Vec::with_capacity(self.base.len());
        for ci in 0..self.base.len() {
            new_base.push(self.column_ref(ci).gather_rows(&live));
        }
        self.base_rows = live.len();
        self.delta = new_base.iter().map(|c| c.empty_like()).collect();
        self.base = new_base;
        self.delta_rows = 0;
        self.deleted = vec![false; self.base_rows];
        self.n_deleted = 0;
        self.version += 1;
    }

    /// Materializes the selected physical rids restricted to `needed`
    /// columns; output row layout follows the order of `needed`.
    pub fn gather(&self, needed: &[usize], selection: &[u32]) -> Vec<Vec<Value>> {
        selection
            .iter()
            .map(|&rid| {
                needed
                    .iter()
                    .map(|&ci| self.value(ci, rid as usize))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_storage_chosen_per_column() {
        let cols = vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Float(0.5), Value::Float(1.5)],
            vec![Value::Str("a".into()), Value::Str("b".into())],
            vec![Value::Date(100), Value::Date(200)],
            vec![Value::Int(1), Value::Null],
        ];
        let t = ColumnTable::from_columns("t", &cols);
        assert!(matches!(t.column(0), ColumnData::Int(_)));
        assert!(matches!(t.column(1), ColumnData::Float(_)));
        assert!(matches!(t.column(2), ColumnData::Str(_)));
        assert!(matches!(t.column(3), ColumnData::Date(_)));
        assert!(matches!(t.column(4), ColumnData::Mixed(_)));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.width(), 5);
        assert_eq!(t.name(), "t");
        assert!(t.is_clean());
        assert_eq!(t.version(), 0);
    }

    #[test]
    fn get_round_trips_values() {
        let cols = vec![vec![Value::Int(7), Value::Int(9)]];
        let t = ColumnTable::from_columns("t", &cols);
        assert_eq!(t.value(0, 1), Value::Int(9));
        assert_eq!(t.column(0).len(), 2);
        assert!(!t.column(0).is_empty());
    }

    #[test]
    fn gather_respects_column_subset_and_order() {
        let cols = vec![
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            vec![
                Value::Str("a".into()),
                Value::Str("b".into()),
                Value::Str("c".into()),
            ],
        ];
        let t = ColumnTable::from_columns("t", &cols);
        let out = t.gather(&[1, 0], &[2, 0]);
        assert_eq!(
            out,
            vec![
                vec![Value::Str("c".into()), Value::Int(3)],
                vec![Value::Str("a".into()), Value::Int(1)],
            ]
        );
    }

    fn two_col_table() -> ColumnTable {
        ColumnTable::from_columns(
            "t",
            &[
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Str("a".into()), Value::Str("b".into())],
            ],
        )
    }

    #[test]
    fn insert_lands_in_delta_and_bumps_version() {
        let mut t = two_col_table();
        let rid = t.insert(&[Value::Int(3), Value::Str("c".into())]);
        assert_eq!(rid, 2);
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.delta_len(), 1);
        assert!(!t.is_clean());
        assert_eq!(t.version(), 1);
        assert_eq!(t.value(0, 2), Value::Int(3));
        // delta builder stays typed
        assert!(matches!(t.column_ref(0), ColRef::Chunked { .. }));
        assert_eq!(t.column_ref(0).get(2), Value::Int(3));
    }

    #[test]
    fn delete_masks_rid_and_update_relocates() {
        let mut t = two_col_table();
        assert!(t.delete(0));
        assert!(!t.delete(0));
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.live_rids(), vec![1]);
        let new_rid = t.update(1, &[Value::Int(20), Value::Str("b2".into())]);
        assert_eq!(new_rid, 2);
        assert_eq!(t.live_rids(), vec![2]);
        assert_eq!(t.value(0, 2), Value::Int(20));
    }

    #[test]
    fn null_insert_demotes_delta_builder_only() {
        let mut t = two_col_table();
        t.insert(&[Value::Null, Value::Str("c".into())]);
        assert!(matches!(t.column(0), ColumnData::Int(_))); // base untouched
        assert_eq!(t.column_ref(0).get(2), Value::Null);
    }

    #[test]
    fn compact_merges_delta_and_restores_clean_path() {
        let mut t = two_col_table();
        t.insert(&[Value::Int(3), Value::Str("c".into())]);
        t.delete(0);
        let v = t.version();
        t.compact();
        assert!(t.is_clean());
        assert_eq!(t.version(), v + 1);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.physical_len(), 2);
        // typed base preserved through compaction
        assert!(matches!(t.column(0), ColumnData::Int(_)));
        assert_eq!(t.value(0, 0), Value::Int(2));
        assert_eq!(t.value(0, 1), Value::Int(3));
        // compaction of a clean table is a no-op (no version bump)
        t.compact();
        assert_eq!(t.version(), v + 1);
    }

    #[test]
    fn colref_gather_spans_segments() {
        let mut t = two_col_table();
        t.insert(&[Value::Int(3), Value::Str("c".into())]);
        let gathered = t.column_ref(0).gather_rows(&[2, 0]);
        assert!(matches!(gathered, ColumnData::Int(_)));
        assert_eq!(gathered.get(0), Value::Int(3));
        assert_eq!(gathered.get(1), Value::Int(1));
        let dense = t.column_ref(1).to_dense();
        assert_eq!(dense.len(), 3);
        assert_eq!(dense.get(2), Value::Str("c".into()));
    }
}
