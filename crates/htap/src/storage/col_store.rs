//! Column-oriented storage for the AP engine.
//!
//! Columns are typed vectors; scans touch only the columns a query
//! references, and filters are evaluated vectorized over a selection vector.
//! This is the structural advantage the paper's expert explanations cite for
//! AP ("scan only relevant columns and apply filters before joining").
//!
//! # Base segment: blocks, zone maps, encodings
//!
//! The immutable base segment is logically divided into fixed-size blocks
//! (sized adaptively per table by
//! [`crate::storage::zone::default_block_rows`]). Each block carries a
//! stats header — min/max, NULL count, constant hint
//! ([`crate::storage::zone::BlockZone`]) — built at load and rebuilt by
//! [`ColumnTable::compact`]. Scans with a pushed-down predicate consult the
//! headers through [`crate::storage::zone::ScanPruner`] and skip whole
//! blocks without touching a cell.
//!
//! On top of the plain typed vectors, two encoded representations are chosen
//! per column by a cost rule over the data ([`ColumnData::encoded`]):
//!
//! * **dictionary** ([`ColumnData::Dict`]) for low-cardinality strings —
//!   per-row `u32` codes into a small value table, so equality and IN
//!   predicates compare codes instead of strings and cell reads stay
//!   zero-copy (`&str` borrowed from the dictionary);
//! * **run-length** ([`ColumnData::RleInt`] / [`ColumnData::RleDate`]) for
//!   run-heavy (sorted or constant) integer/date columns — `(value, end)`
//!   runs with `O(log runs)` point access.
//!
//! Typed-but-nullable data keeps its typed vector plus a null mask
//! ([`ColumnData::Nullable`]) instead of demoting to generic `Value`s, so a
//! single NULL no longer knocks a column off the vectorized fast path.
//! Encodings apply to the *base* only; delta builders stay plain typed
//! (append-friendly), and compaction re-runs the cost rule over the merged
//! data.
//!
//! # Delta region (write path)
//!
//! The base columns are immutable between compactions. Writes land in a
//! **delta region** — one append-only typed column builder per base column —
//! plus a deleted-rid bitmap over the combined `base + delta` rid space:
//!
//! * insert → append to the delta builders;
//! * delete → set the rid's bit;
//! * update → delete + append (out-of-place, the column-store discipline).
//!
//! A monotonically increasing **version stamp** advances on every write and
//! on compaction; it is the freshness signal the system surfaces per table.
//! [`ColumnTable::compact`] merges live delta rows into fresh base columns
//! and clears the bitmap, restoring the zero-copy clean-scan fast path.
//! Readers see every write immediately — scans cover both regions through
//! [`ColRef`] — so AP reads are always fresh without waiting for compaction.
//! Zone-map pruning never touches the delta (it has no headers), which is
//! the rule that keeps block skipping correct under DML: a block header can
//! only be stale in the conservative direction (tombstones shrink the true
//! range), and every buffered write is always scanned.

use super::zone::{self, BlockBloom, BlockZone};
use qpe_sql::value::Value;
use std::sync::Arc;

/// Minimum base-segment length before the encoder considers dictionary/RLE
/// representations (tiny columns gain nothing and keep tests transparent).
pub const ENCODE_MIN_ROWS: usize = 64;
/// Maximum distinct strings a dictionary may hold.
pub const DICT_MAX_VALUES: usize = 255;
/// Rows per frame-of-reference block. Independent of the zone-map block size:
/// packed bits cannot be re-chunked by [`ColumnTable::set_block_rows`], and a
/// power of two keeps block addressing a shift/mask.
pub const FOR_BLOCK_ROWS: usize = 1024;

/// Frame-of-reference encoded i64 column: each [`FOR_BLOCK_ROWS`]-row block
/// stores its minimum as a reference plus bit-packed non-negative deltas at
/// one fixed width per block. Point access is O(1) (two word reads); scans
/// unpack a block at a time into a reusable scratch buffer; range predicates
/// can be answered per block against the packed domain (compare `lit - ref`
/// with the deltas) without materializing values.
#[derive(Debug, Clone)]
pub struct ForInt {
    n_rows: usize,
    /// Per-block reference value (the block minimum).
    pub refs: Vec<i64>,
    /// Per-block exact maximum (for packed-domain range answers).
    pub maxs: Vec<i64>,
    /// Per-block delta bit width (0 ⇒ constant block).
    pub widths: Vec<u8>,
    /// Per-block starting word offset into `packed` (blocks word-aligned).
    pub offsets: Vec<u32>,
    /// Bit-packed deltas, LSB-first within each u64 word, plus one trailing
    /// pad word so straddle reads never branch on bounds.
    pub packed: Vec<u64>,
}

impl ForInt {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of FOR blocks.
    pub fn n_blocks(&self) -> usize {
        self.refs.len()
    }

    /// Row range of FOR block `b`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        let lo = b * FOR_BLOCK_ROWS;
        lo..(lo + FOR_BLOCK_ROWS).min(self.n_rows)
    }

    /// Value at row `i`: reference plus a two-word masked delta read.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        let b = i / FOR_BLOCK_ROWS;
        let w = self.widths[b] as usize;
        if w == 0 {
            return self.refs[b];
        }
        let bit = (i % FOR_BLOCK_ROWS) * w;
        let word = self.offsets[b] as usize + (bit >> 6);
        let shift = bit & 63;
        // `(x << 1) << (63 - shift)` is `x << (64 - shift)` without the
        // undefined full-width shift at `shift == 0` (where it yields 0).
        let d = (self.packed[word] >> shift) | ((self.packed[word + 1] << 1) << (63 - shift));
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        self.refs[b].wrapping_add((d & mask) as i64)
    }

    /// Unpacks block `b` into `out` (cleared first) — the branchless decode
    /// loop scan kernels drive with a reused scratch buffer.
    pub fn decode_block_into(&self, b: usize, out: &mut Vec<i64>) {
        out.clear();
        let n = self.block_range(b).len();
        let w = self.widths[b] as usize;
        let r = self.refs[b];
        if w == 0 {
            out.resize(n, r);
            return;
        }
        let words = &self.packed[self.offsets[b] as usize..];
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        out.reserve(n);
        let mut bit = 0usize;
        for _ in 0..n {
            let word = bit >> 6;
            let shift = bit & 63;
            let d = (words[word] >> shift) | ((words[word + 1] << 1) << (63 - shift));
            out.push(r.wrapping_add((d & mask) as i64));
            bit += w;
        }
    }

    /// Builds the FOR representation when the cost rule holds: packed deltas
    /// take at most half the plain bits (≤ 32 bits/row). Sorted and
    /// near-sequential data (PKs, dates-as-days) passes with room to spare;
    /// a block whose value range needs wide deltas votes against.
    pub fn build(v: &[i64]) -> Option<ForInt> {
        Self::build_impl(v, false)
    }

    /// Builds the FOR representation regardless of the cost rule (forced-
    /// encoding test matrix); only an empty column declines.
    pub(crate) fn build_forced(v: &[i64]) -> Option<ForInt> {
        Self::build_impl(v, true)
    }

    fn build_impl(v: &[i64], forced: bool) -> Option<ForInt> {
        if v.is_empty() {
            return None;
        }
        let n_blocks = v.len().div_ceil(FOR_BLOCK_ROWS);
        let mut refs = Vec::with_capacity(n_blocks);
        let mut maxs = Vec::with_capacity(n_blocks);
        let mut widths = Vec::with_capacity(n_blocks);
        let mut total_words = 0usize;
        for chunk in v.chunks(FOR_BLOCK_ROWS) {
            let mn = *chunk.iter().min().unwrap();
            let mx = *chunk.iter().max().unwrap();
            let range = mx.wrapping_sub(mn) as u64;
            let w = (64 - range.leading_zeros()) as u8;
            refs.push(mn);
            maxs.push(mx);
            widths.push(w);
            total_words += (chunk.len() * w as usize).div_ceil(64);
        }
        if !forced && total_words * 64 > v.len() * 32 {
            return None;
        }
        let mut offsets = Vec::with_capacity(n_blocks);
        let mut packed = vec![0u64; total_words + 1];
        let mut word = 0usize;
        for (b, chunk) in v.chunks(FOR_BLOCK_ROWS).enumerate() {
            offsets.push(word as u32);
            let w = widths[b] as usize;
            if w > 0 {
                let mut bit = 0usize;
                for &x in chunk {
                    let d = x.wrapping_sub(refs[b]) as u64;
                    let wd = word + (bit >> 6);
                    let sh = bit & 63;
                    packed[wd] |= d << sh;
                    if sh + w > 64 {
                        packed[wd + 1] |= d >> (64 - sh);
                    }
                    bit += w;
                }
                word += (chunk.len() * w).div_ceil(64);
            }
        }
        Some(ForInt { n_rows: v.len(), refs, maxs, widths, offsets, packed })
    }

    /// Reassembles a persisted FOR column, checking every structural
    /// invariant `get`/`decode_block_into` index by (block counts, widths,
    /// word offsets, packed length including the pad word) so corrupt bytes
    /// surface as an error instead of a panic in a scan.
    pub(crate) fn from_parts(
        n_rows: usize,
        refs: Vec<i64>,
        maxs: Vec<i64>,
        widths: Vec<u8>,
        offsets: Vec<u32>,
        packed: Vec<u64>,
    ) -> Result<ForInt, &'static str> {
        let n_blocks = n_rows.div_ceil(FOR_BLOCK_ROWS);
        if refs.len() != n_blocks
            || maxs.len() != n_blocks
            || widths.len() != n_blocks
            || offsets.len() != n_blocks
        {
            return Err("FOR block vector lengths disagree with row count");
        }
        let mut word = 0usize;
        for b in 0..n_blocks {
            let w = widths[b] as usize;
            if w > 64 {
                return Err("FOR delta width exceeds 64 bits");
            }
            if offsets[b] as usize != word {
                return Err("FOR block word offsets inconsistent");
            }
            let rows = (n_rows - b * FOR_BLOCK_ROWS).min(FOR_BLOCK_ROWS);
            word += (rows * w).div_ceil(64);
        }
        if packed.len() != word + 1 {
            return Err("FOR packed word count inconsistent");
        }
        Ok(ForInt { n_rows, refs, maxs, widths, offsets, packed })
    }
}

/// Dictionary-encoded low-cardinality string column: per-row codes into a
/// small table of distinct values (first-appearance order).
#[derive(Debug, Clone)]
pub struct DictColumn {
    /// One code per row.
    pub codes: Vec<u32>,
    /// Distinct strings, indexed by code.
    pub values: Vec<String>,
}

impl DictColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Borrowed string at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        &self.values[self.codes[i] as usize]
    }

    /// The code for `s`, if the dictionary contains it — the entry point for
    /// code-to-code equality kernels (a miss means no row can match).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.values.iter().position(|v| v == s).map(|p| p as u32)
    }

    /// Builds a dictionary when the cost rule holds: at most
    /// [`DICT_MAX_VALUES`] distinct strings and at least 4 rows per distinct
    /// value on average.
    fn build(strings: &[String]) -> Option<DictColumn> {
        Self::build_impl(strings, false)
    }

    /// Builds a dictionary unconditionally (forced-encoding test matrix).
    pub(crate) fn build_forced(strings: &[String]) -> Option<DictColumn> {
        Self::build_impl(strings, true)
    }

    fn build_impl(strings: &[String], forced: bool) -> Option<DictColumn> {
        let mut values: Vec<String> = Vec::new();
        let mut index: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let mut codes = Vec::with_capacity(strings.len());
        for s in strings {
            let next = values.len() as u32;
            let code = *index.entry(s.as_str()).or_insert_with(|| {
                values.push(s.clone());
                next
            });
            if !forced && values.len() > DICT_MAX_VALUES {
                return None;
            }
            codes.push(code);
        }
        if forced || values.len() * 4 <= strings.len() {
            Some(DictColumn { codes, values })
        } else {
            None
        }
    }
}

/// Run-length encoded fixed-width column: run `k` covers rows
/// `ends[k-1]..ends[k]` with value `vals[k]`.
#[derive(Debug, Clone)]
pub struct RleRuns<T> {
    /// Exclusive end row of each run, ascending.
    pub ends: Vec<u32>,
    /// Value of each run.
    pub vals: Vec<T>,
}

impl<T: Copy + PartialEq> RleRuns<T> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ends.last().copied().unwrap_or(0) as usize
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Number of runs.
    pub fn n_runs(&self) -> usize {
        self.vals.len()
    }

    /// Value at row `i` (`O(log runs)` binary search).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        let run = self.ends.partition_point(|&e| e as usize <= i);
        self.vals[run]
    }

    /// Encodes `v` when the cost rule holds: at least 4 rows per run on
    /// average (sorted/constant data; random data stays plain).
    fn build(v: &[T]) -> Option<RleRuns<T>> {
        Self::build_impl(v, false)
    }

    /// Encodes unconditionally — worst case one run per row (forced-encoding
    /// test matrix).
    pub(crate) fn build_forced(v: &[T]) -> Option<RleRuns<T>> {
        Self::build_impl(v, true)
    }

    fn build_impl(v: &[T], forced: bool) -> Option<RleRuns<T>> {
        let mut ends = Vec::new();
        let mut vals: Vec<T> = Vec::new();
        for (i, x) in v.iter().enumerate() {
            match vals.last() {
                Some(last) if last == x => *ends.last_mut().unwrap() = (i + 1) as u32,
                _ => {
                    vals.push(*x);
                    ends.push((i + 1) as u32);
                }
            }
        }
        if forced || vals.len() * 4 <= v.len() {
            Some(RleRuns { ends, vals })
        } else {
            None
        }
    }
}

/// Base-segment encoding policy. `Auto` (the default) applies the cost
/// rules in [`ColumnData::encoded`]; the forcing variants pin one encoding
/// on every type-compatible column regardless of cost, so the equivalence
/// test matrix can sweep every representation over the same data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingPolicy {
    /// Cost-rule choice (production behavior).
    #[default]
    Auto,
    /// Decode everything to plain typed vectors.
    Plain,
    /// Force dictionary encoding on every string column.
    Dict,
    /// Force run-length encoding on every integer/date column.
    Rle,
    /// Force frame-of-reference encoding on every integer column.
    For,
}

/// Typed column data. Plain typed vectors are the default; the encoded and
/// nullable representations are produced by [`ColumnData::from_values`] and
/// [`ColumnData::encoded`] and read back through the same cell interface.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// i64 column.
    Int(Vec<i64>),
    /// f64 column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<String>),
    /// Date column (days since epoch).
    Date(Vec<i32>),
    /// Dictionary-encoded low-cardinality string column (base segments).
    Dict(DictColumn),
    /// Run-length encoded i64 column (base segments).
    RleInt(RleRuns<i64>),
    /// Run-length encoded date column (base segments).
    RleDate(RleRuns<i32>),
    /// Frame-of-reference bit-packed i64 column (base segments).
    ForInt(ForInt),
    /// Typed column with a null mask: `nulls[i]` marks NULL and the value at
    /// that position in `values` is a meaningless sentinel. Keeps nullable
    /// columns on the typed fast path instead of demoting to `Mixed`.
    Nullable {
        /// Per-row NULL flags.
        nulls: Vec<bool>,
        /// Dense typed values (sentinel-filled at NULL positions); always a
        /// plain typed variant.
        values: Box<ColumnData>,
    },
    /// Heterogeneous column (fallback representation).
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Builds typed storage from generic values. The first *non-NULL* value
    /// picks the representation; NULLs grow a null mask over the typed
    /// vector ([`ColumnData::Nullable`]) instead of demoting the column, so
    /// only genuinely heterogeneous data falls back to `Mixed`.
    pub fn from_values(values: &[Value]) -> Self {
        let Some(first) = values.iter().find(|v| !v.is_null()) else {
            // Empty or all-NULL.
            return ColumnData::Mixed(values.to_vec());
        };
        macro_rules! ingest {
            ($variant:ident, $pat:pat => $val:expr, $sentinel:expr) => {{
                let mut out = Vec::with_capacity(values.len());
                let mut nulls: Option<Vec<bool>> = None;
                for (i, v) in values.iter().enumerate() {
                    match v {
                        $pat => {
                            out.push($val);
                            if let Some(n) = &mut nulls {
                                n.push(false);
                            }
                        }
                        Value::Null => {
                            nulls.get_or_insert_with(|| vec![false; i]).push(true);
                            out.push($sentinel);
                        }
                        _ => return Self::demote(values, i),
                    }
                }
                match nulls {
                    Some(nulls) => ColumnData::Nullable {
                        nulls,
                        values: Box::new(ColumnData::$variant(out)),
                    },
                    None => ColumnData::$variant(out),
                }
            }};
        }
        match first {
            Value::Int(_) => ingest!(Int, Value::Int(x) => *x, 0),
            Value::Float(_) => ingest!(Float, Value::Float(x) => *x, 0.0),
            Value::Str(_) => ingest!(Str, Value::Str(s) => s.clone(), String::new()),
            Value::Date(_) => ingest!(Date, Value::Date(d) => *d, 0),
            Value::Null => unreachable!("first is non-null"),
        }
    }

    /// Cold path of [`ColumnData::from_values`]: a genuine type mismatch was
    /// found at position `_at`; store the whole column as generic values.
    #[cold]
    fn demote(values: &[Value], _at: usize) -> Self {
        ColumnData::Mixed(values.to_vec())
    }

    /// Applies the base-segment encoding cost rule: re-types homogeneous
    /// `Mixed` columns first, then dictionary-encodes low-cardinality
    /// strings and run-length-encodes run-heavy integers/dates. Columns
    /// below [`ENCODE_MIN_ROWS`] and poor fits stay plain.
    pub fn encoded(self) -> ColumnData {
        let col = match self {
            ColumnData::Mixed(values) => ColumnData::from_values(&values),
            other => other,
        };
        if col.len() < ENCODE_MIN_ROWS {
            return col;
        }
        match col {
            ColumnData::Str(v) => match DictColumn::build(&v) {
                Some(d) => ColumnData::Dict(d),
                None => ColumnData::Str(v),
            },
            ColumnData::Int(v) => match RleRuns::build(&v) {
                Some(r) => ColumnData::RleInt(r),
                None => match ForInt::build(&v) {
                    Some(f) => ColumnData::ForInt(f),
                    None => ColumnData::Int(v),
                },
            },
            ColumnData::Date(v) => match RleRuns::build(&v) {
                Some(r) => ColumnData::RleDate(r),
                None => ColumnData::Date(v),
            },
            other => other,
        }
    }

    /// Decodes any encoded representation back to its plain typed variant
    /// (identity for columns that are already plain, nullable, or mixed).
    pub fn decoded(self) -> ColumnData {
        match self {
            ColumnData::Dict(d) => {
                ColumnData::Str((0..d.len()).map(|i| d.get(i).to_string()).collect())
            }
            ColumnData::RleInt(r) => ColumnData::Int((0..r.len()).map(|i| r.get(i)).collect()),
            ColumnData::RleDate(r) => ColumnData::Date((0..r.len()).map(|i| r.get(i)).collect()),
            ColumnData::ForInt(f) => {
                let mut out = Vec::with_capacity(f.len());
                let mut scratch = Vec::new();
                for b in 0..f.n_blocks() {
                    f.decode_block_into(b, &mut scratch);
                    out.extend_from_slice(&scratch);
                }
                ColumnData::Int(out)
            }
            other => other,
        }
    }

    /// Applies an [`EncodingPolicy`]: `Auto` runs the cost rules, the
    /// forcing variants pin one representation on every type-compatible
    /// column (bypassing [`ENCODE_MIN_ROWS`] and the per-encoding cost
    /// rules). Logical content never changes.
    pub fn encoded_with(self, policy: EncodingPolicy) -> ColumnData {
        match policy {
            EncodingPolicy::Auto => self.encoded(),
            EncodingPolicy::Plain => self.decoded(),
            EncodingPolicy::Dict => match self.decoded() {
                ColumnData::Str(v) => match DictColumn::build_forced(&v) {
                    Some(d) => ColumnData::Dict(d),
                    None => ColumnData::Str(v),
                },
                other => other,
            },
            EncodingPolicy::Rle => match self.decoded() {
                ColumnData::Int(v) => match RleRuns::build_forced(&v) {
                    Some(r) => ColumnData::RleInt(r),
                    None => ColumnData::Int(v),
                },
                ColumnData::Date(v) => match RleRuns::build_forced(&v) {
                    Some(r) => ColumnData::RleDate(r),
                    None => ColumnData::Date(v),
                },
                other => other,
            },
            EncodingPolicy::For => match self.decoded() {
                ColumnData::Int(v) => match ForInt::build_forced(&v) {
                    Some(f) => ColumnData::ForInt(f),
                    None => ColumnData::Int(v),
                },
                other => other,
            },
        }
    }

    /// An empty column of the shape a fresh delta builder should have for
    /// this base column: plain typed (append-friendly) — encoded bases get
    /// plain builders of the decoded type.
    pub fn empty_like(&self) -> ColumnData {
        match self {
            ColumnData::Int(_) | ColumnData::RleInt(_) | ColumnData::ForInt(_) => {
                ColumnData::Int(Vec::new())
            }
            ColumnData::Float(_) => ColumnData::Float(Vec::new()),
            ColumnData::Str(_) | ColumnData::Dict(_) => ColumnData::Str(Vec::new()),
            ColumnData::Date(_) | ColumnData::RleDate(_) => ColumnData::Date(Vec::new()),
            ColumnData::Nullable { values, .. } => values.empty_like(),
            ColumnData::Mixed(_) => ColumnData::Mixed(Vec::new()),
        }
    }

    /// True for the four plain typed vector representations.
    fn is_plain_typed(&self) -> bool {
        matches!(
            self,
            ColumnData::Int(_) | ColumnData::Float(_) | ColumnData::Str(_) | ColumnData::Date(_)
        )
    }

    /// True when a non-NULL `v` fits this plain typed representation.
    fn fits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (ColumnData::Int(_), Value::Int(_))
                | (ColumnData::Float(_), Value::Float(_))
                | (ColumnData::Str(_), Value::Str(_))
                | (ColumnData::Date(_), Value::Date(_))
        )
    }

    /// Pushes the NULL sentinel of this plain typed representation.
    fn push_sentinel(&mut self) {
        match self {
            ColumnData::Int(b) => b.push(0),
            ColumnData::Float(b) => b.push(0.0),
            ColumnData::Str(b) => b.push(String::new()),
            ColumnData::Date(b) => b.push(0),
            other => other.push(Value::Null),
        }
    }

    /// Wraps a plain typed column into [`ColumnData::Nullable`] with an
    /// all-false mask (the step a typed builder takes when its first NULL
    /// arrives, instead of demoting to `Mixed`).
    #[cold]
    fn promote_nullable(&mut self) {
        let inner = std::mem::replace(self, ColumnData::Mixed(Vec::new()));
        let n = inner.len();
        *self = ColumnData::Nullable { nulls: vec![false; n], values: Box::new(inner) };
    }

    /// Appends one value. NULLs arriving in plain typed storage grow a null
    /// mask; only genuine type mismatches demote the column to `Mixed`.
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColumnData::Int(buf), Value::Int(x)) => buf.push(x),
            (ColumnData::Float(buf), Value::Float(x)) => buf.push(x),
            (ColumnData::Str(buf), Value::Str(s)) => buf.push(s),
            (ColumnData::Date(buf), Value::Date(d)) => buf.push(d),
            (ColumnData::Mixed(buf), v) => buf.push(v),
            (ColumnData::Nullable { nulls, values }, Value::Null) => {
                nulls.push(true);
                values.push_sentinel();
            }
            (ColumnData::Nullable { nulls, values }, v) if values.fits(&v) => {
                nulls.push(false);
                values.push(v);
            }
            (_, v) => {
                if v.is_null() && self.is_plain_typed() {
                    self.promote_nullable();
                } else {
                    self.demote_in_place();
                }
                self.push(v);
            }
        }
    }

    #[cold]
    fn demote_in_place(&mut self) {
        let values: Vec<Value> = (0..self.len()).map(|i| self.get(i)).collect();
        *self = ColumnData::Mixed(values);
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Dict(d) => d.len(),
            ColumnData::RleInt(r) => r.len(),
            ColumnData::RleDate(r) => r.len(),
            ColumnData::ForInt(f) => f.len(),
            ColumnData::Nullable { nulls, .. } => nulls.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at position `i` as a generic [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Dict(d) => Value::Str(d.get(i).to_string()),
            ColumnData::RleInt(r) => Value::Int(r.get(i)),
            ColumnData::RleDate(r) => Value::Date(r.get(i)),
            ColumnData::ForInt(f) => Value::Int(f.get(i)),
            ColumnData::Nullable { nulls, values } => {
                if nulls[i] {
                    Value::Null
                } else {
                    values.get(i)
                }
            }
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Zero-copy typed view when the column stores `i64`.
    pub fn as_int_slice(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores `f64`.
    pub fn as_float_slice(&self) -> Option<&[f64]> {
        match self {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores strings.
    pub fn as_str_slice(&self) -> Option<&[String]> {
        match self {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores dates.
    pub fn as_date_slice(&self) -> Option<&[i32]> {
        match self {
            ColumnData::Date(v) => Some(v),
            _ => None,
        }
    }

    /// Splices `other` onto the end of `self`, preserving typed storage when
    /// the representations agree and demoting to `Mixed` otherwise — the
    /// reassembly step of morsel-parallel kernels, whose per-morsel outputs
    /// concatenate back into one dense column.
    pub fn append(&mut self, other: ColumnData) {
        match (&mut *self, other) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend(b),
            (ColumnData::Date(a), ColumnData::Date(b)) => a.extend(b),
            (
                ColumnData::Nullable { nulls, values },
                ColumnData::Nullable { nulls: n2, values: v2 },
            ) => {
                nulls.extend(n2);
                values.append(*v2);
            }
            (ColumnData::Nullable { nulls, values }, b) if b.is_plain_typed() => {
                nulls.extend(std::iter::repeat_n(false, b.len()));
                values.append(b);
            }
            (ColumnData::Mixed(a), b) => a.extend((0..b.len()).map(|i| b.get(i))),
            (_, b) if b.is_empty() => {}
            (a, b) if a.is_empty() => *a = b,
            (_, b) => {
                if self.is_plain_typed() && matches!(b, ColumnData::Nullable { .. }) {
                    self.promote_nullable();
                } else {
                    self.demote_in_place();
                }
                self.append(b);
            }
        }
    }

    /// Gathers the given physical positions into a new dense typed column,
    /// preserving the storage representation where it stays profitable
    /// (dictionary gathers copy `u32` codes, not strings; RLE decodes — a
    /// gathered subset rarely keeps its runs).
    pub fn gather_rows(&self, idxs: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int(v) => {
                ColumnData::Int(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Float(v) => {
                ColumnData::Float(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(idxs.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Date(v) => {
                ColumnData::Date(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Dict(d) => ColumnData::Dict(DictColumn {
                codes: idxs.iter().map(|&i| d.codes[i as usize]).collect(),
                values: d.values.clone(),
            }),
            ColumnData::RleInt(r) => {
                ColumnData::Int(idxs.iter().map(|&i| r.get(i as usize)).collect())
            }
            ColumnData::RleDate(r) => {
                ColumnData::Date(idxs.iter().map(|&i| r.get(i as usize)).collect())
            }
            ColumnData::ForInt(f) => {
                ColumnData::Int(idxs.iter().map(|&i| f.get(i as usize)).collect())
            }
            ColumnData::Nullable { nulls, values } => ColumnData::Nullable {
                nulls: idxs.iter().map(|&i| nulls[i as usize]).collect(),
                values: Box::new(values.gather_rows(idxs)),
            },
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(idxs.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }
}

/// A borrowed view of one logical column that may span the immutable base
/// segment and the delta segment. Physical rids index the concatenation:
/// `rid < split` reads the base, `rid - split` reads the delta.
///
/// Clean tables hand out `Single` views (the zero-copy fast path the batch
/// executor borrows outright); dirty tables hand out `Chunked` views so
/// delta rows flow through the same selection-vector kernels without copying
/// the base.
#[derive(Debug, Clone, Copy)]
pub enum ColRef<'a> {
    /// One contiguous segment.
    Single(&'a ColumnData),
    /// Base + delta segments.
    Chunked {
        /// Immutable base segment.
        base: &'a ColumnData,
        /// Append-only delta segment.
        delta: &'a ColumnData,
    },
}

impl<'a> ColRef<'a> {
    /// Total physical length across segments.
    pub fn len(&self) -> usize {
        match self {
            ColRef::Single(c) => c.len(),
            ColRef::Chunked { base, delta } => base.len() + delta.len(),
        }
    }

    /// True when the view holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical position where the view crosses from base into delta, if
    /// it spans two segments — the chunk boundary morsel splits respect.
    pub fn split_point(&self) -> Option<usize> {
        match self {
            ColRef::Single(_) => None,
            ColRef::Chunked { base, .. } => Some(base.len()),
        }
    }

    /// The contiguous segment, when there is only one.
    pub fn as_single(&self) -> Option<&'a ColumnData> {
        match self {
            ColRef::Single(c) => Some(c),
            ColRef::Chunked { .. } => None,
        }
    }

    /// Value at physical position `rid` (cross-segment).
    pub fn get(&self, rid: usize) -> Value {
        match self {
            ColRef::Single(c) => c.get(rid),
            ColRef::Chunked { base, delta } => {
                let split = base.len();
                if rid < split {
                    base.get(rid)
                } else {
                    delta.get(rid - split)
                }
            }
        }
    }

    /// Gathers physical positions into a dense owned typed column,
    /// preserving typed storage when both segments agree on representation.
    pub fn gather_rows(&self, idxs: &[u32]) -> ColumnData {
        match self {
            ColRef::Single(c) => c.gather_rows(idxs),
            ColRef::Chunked { base, delta } => {
                let split = base.len();
                macro_rules! typed_gather {
                    ($variant:ident, $b:expr, $d:expr) => {
                        ColumnData::$variant(
                            idxs.iter()
                                .map(|&i| {
                                    let i = i as usize;
                                    if i < split {
                                        $b[i].clone()
                                    } else {
                                        $d[i - split].clone()
                                    }
                                })
                                .collect(),
                        )
                    };
                }
                match (base, delta) {
                    (ColumnData::Int(b), ColumnData::Int(d)) => typed_gather!(Int, b, d),
                    (ColumnData::Float(b), ColumnData::Float(d)) => typed_gather!(Float, b, d),
                    (ColumnData::Str(b), ColumnData::Str(d)) => typed_gather!(Str, b, d),
                    (ColumnData::Date(b), ColumnData::Date(d)) => typed_gather!(Date, b, d),
                    // Encoded base + plain delta: decode through `get` into
                    // the plain typed representation the delta already has.
                    (ColumnData::Dict(db), ColumnData::Str(d)) => ColumnData::Str(
                        idxs.iter()
                            .map(|&i| {
                                let i = i as usize;
                                if i < split {
                                    db.get(i).to_string()
                                } else {
                                    d[i - split].clone()
                                }
                            })
                            .collect(),
                    ),
                    (ColumnData::RleInt(rb), ColumnData::Int(d)) => ColumnData::Int(
                        idxs.iter()
                            .map(|&i| {
                                let i = i as usize;
                                if i < split {
                                    rb.get(i)
                                } else {
                                    d[i - split]
                                }
                            })
                            .collect(),
                    ),
                    (ColumnData::RleDate(rb), ColumnData::Date(d)) => ColumnData::Date(
                        idxs.iter()
                            .map(|&i| {
                                let i = i as usize;
                                if i < split {
                                    rb.get(i)
                                } else {
                                    d[i - split]
                                }
                            })
                            .collect(),
                    ),
                    (ColumnData::ForInt(fb), ColumnData::Int(d)) => ColumnData::Int(
                        idxs.iter()
                            .map(|&i| {
                                let i = i as usize;
                                if i < split {
                                    fb.get(i)
                                } else {
                                    d[i - split]
                                }
                            })
                            .collect(),
                    ),
                    _ => ColumnData::Mixed(idxs.iter().map(|&i| self.get(i as usize)).collect()),
                }
            }
        }
    }

    /// Materializes the whole view as one dense owned column.
    pub fn to_dense(&self) -> ColumnData {
        match self {
            ColRef::Single(c) => (*c).clone(),
            ColRef::Chunked { .. } => {
                let all: Vec<u32> = (0..self.len() as u32).collect();
                self.gather_rows(&all)
            }
        }
    }
}

/// A column-store table: immutable typed base columns (block-structured,
/// possibly encoded) plus the delta region.
#[derive(Debug)]
pub struct ColumnTable {
    name: String,
    /// Base segment — immutable between compactions. Behind an `Arc` so
    /// checkpoints and background compaction snapshot it in O(1) under the
    /// write lock and do their heavy work (serialization, re-encoding)
    /// without blocking writers.
    base: Arc<Vec<ColumnData>>,
    /// Delta segment — append-only typed builders, one per column. Behind
    /// an `Arc` with copy-on-write ([`Arc::make_mut`]): pinned snapshot
    /// views share it for free, and a writer only pays for a copy while a
    /// snapshot is actually outstanding.
    delta: Arc<Vec<ColumnData>>,
    base_rows: usize,
    delta_rows: usize,
    /// Per-row begin version over the combined `base + delta` rid space:
    /// the version stamp at which the row became visible. Within the delta
    /// region begin stamps are nondecreasing in rid order (inserts append).
    row_begin: Arc<Vec<u64>>,
    /// Per-row end version: `u64::MAX` while the row is live; a delete
    /// marks the rid with the deleting version instead of mutating a
    /// shared bitmap. A row is visible at epoch `e` iff
    /// `begin <= e && e < end`.
    row_end: Arc<Vec<u64>>,
    /// Rids *invisible* at this table's own `version` (for a live table:
    /// tombstones; for a pinned view: tombstones plus rows born later).
    n_deleted: usize,
    /// Monotonically increasing write stamp (bumps on every insert, delete,
    /// update and compaction). Doubles as the **visibility epoch**: every
    /// read predicate evaluates visibility at `self.version`, so a pinned
    /// [`ColumnTable::view_at`] is just this struct with `version` set to
    /// the pinned epoch — live scans and snapshot scans share one code
    /// path.
    version: u64,
    /// Oldest epoch still reconstructible: compaction drops dead rows, so
    /// views older than the last compact (or initial load) are refused.
    history_floor: u64,
    /// Rows per zone-map block (recomputed adaptively per base rebuild
    /// unless pinned by [`ColumnTable::set_block_rows`]).
    block_rows: usize,
    /// Explicit block-size override (tests / experiments).
    block_rows_override: Option<usize>,
    /// Per-column block stats headers over the base segment, rebuilt at
    /// load and at compaction. `Arc`-shared so snapshot views pin them in
    /// O(1); always replaced wholesale, never edited in place.
    zones: Arc<Vec<Vec<BlockZone>>>,
    /// Per-column per-block bloom filters over the base segment (`None` for
    /// column types blooms don't cover), rebuilt beside the zones. Empty
    /// when disabled.
    blooms: Arc<Vec<Option<Vec<BlockBloom>>>>,
    /// Bloom filters enabled (default). Disabling drops them and stops
    /// rebuilding — the `_nobloom` baseline benches and tests toggle this.
    blooms_enabled: bool,
    /// Base-segment encoding policy; `Auto` outside the forced-encoding
    /// test matrix. Compactions keep applying it.
    encoding_policy: EncodingPolicy,
}

impl ColumnTable {
    /// Builds typed (and, where the cost rule fires, encoded) columns from
    /// generic column-major data and computes the block stats headers.
    pub fn from_columns(name: &str, columns: &[Vec<Value>]) -> Self {
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        let base: Vec<ColumnData> = columns
            .iter()
            .map(|c| ColumnData::from_values(c).encoded())
            .collect();
        let delta = base.iter().map(|c| c.empty_like()).collect();
        let mut t = ColumnTable {
            name: name.to_string(),
            base: Arc::new(base),
            delta: Arc::new(delta),
            base_rows: rows,
            delta_rows: 0,
            row_begin: Arc::new(vec![0; rows]),
            row_end: Arc::new(vec![u64::MAX; rows]),
            n_deleted: 0,
            version: 0,
            history_floor: 0,
            block_rows: zone::default_block_rows(rows),
            block_rows_override: None,
            zones: Arc::new(Vec::new()),
            blooms: Arc::new(Vec::new()),
            blooms_enabled: true,
            encoding_policy: EncodingPolicy::Auto,
        };
        t.rebuild_zones();
        t
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of *live* rows.
    pub fn row_count(&self) -> usize {
        self.base_rows + self.delta_rows - self.n_deleted
    }

    /// Number of physical rids (`base + delta`, tombstones included).
    pub fn physical_len(&self) -> usize {
        self.base_rows + self.delta_rows
    }

    /// Rows in the base segment (tombstones included).
    pub fn base_len(&self) -> usize {
        self.base_rows
    }

    /// Rows currently in the delta region (the freshness backlog),
    /// tombstoned ones included.
    pub fn delta_len(&self) -> usize {
        self.delta_rows
    }

    /// Delta rows still live (inserted since the last compaction and not
    /// deleted again).
    pub fn live_delta_len(&self) -> usize {
        (self.base_rows..self.base_rows + self.delta_rows)
            .filter(|&rid| self.visible_at(rid, self.version))
            .count()
    }

    /// Rids invisible at this table's epoch (tombstones, for a live table).
    pub fn deleted_len(&self) -> usize {
        self.n_deleted
    }

    /// Current version stamp — also the epoch every read on this handle
    /// evaluates visibility at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Oldest epoch [`ColumnTable::view_at`] can still serve (advances to
    /// the compacting version on every compaction, which drops dead rows).
    pub fn history_floor(&self) -> u64 {
        self.history_floor
    }

    /// True when scans can borrow base columns with no selection vector:
    /// empty delta and every row visible.
    pub fn is_clean(&self) -> bool {
        self.delta_rows == 0 && self.n_deleted == 0
    }

    /// MVCC visibility: row `rid` exists at epoch `epoch`.
    #[inline]
    pub fn visible_at(&self, rid: usize, epoch: u64) -> bool {
        self.row_begin[rid] <= epoch && epoch < self.row_end[rid]
    }

    /// True when physical rid `rid` is invisible at this handle's epoch
    /// (for a live table: tombstoned).
    #[inline]
    pub fn is_deleted(&self, rid: usize) -> bool {
        !self.visible_at(rid, self.version)
    }

    /// Per-row begin/end version stamps over the physical rid space
    /// (`end == u64::MAX` ⇒ live). Exposed for recovery tests that pin
    /// byte-identical replay of the visibility metadata.
    pub fn row_versions(&self) -> (&[u64], &[u64]) {
        (&self.row_begin, &self.row_end)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.base.len()
    }

    /// Rows per zone-map block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of zone-map blocks over the base segment.
    pub fn n_blocks(&self) -> usize {
        self.base_rows.div_ceil(self.block_rows)
    }

    /// Physical rid range of base block `b`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        let lo = b * self.block_rows;
        lo..((b + 1) * self.block_rows).min(self.base_rows)
    }

    /// Block stats headers of column `ci` (one per base block).
    pub fn zones(&self, ci: usize) -> &[BlockZone] {
        &self.zones[ci]
    }

    /// Re-chunks the zone maps at a different block size (blocks are
    /// metadata over the contiguous base, so this rebuilds headers only —
    /// tests and small-scale benchmarks use it to get real block counts out
    /// of tiny tables).
    pub fn set_block_rows(&mut self, rows: usize) {
        self.block_rows_override = Some(rows.max(1));
        self.block_rows = rows.max(1);
        self.rebuild_zones();
    }

    fn rebuild_zones(&mut self) {
        self.zones = Arc::new(
            self.base
                .iter()
                .map(|c| zone::column_zones(c, self.block_rows))
                .collect(),
        );
        self.blooms = Arc::new(if self.blooms_enabled {
            self.base
                .iter()
                .map(|c| zone::column_blooms(c, self.block_rows))
                .collect()
        } else {
            Vec::new()
        });
    }

    /// Per-block bloom filters of column `ci`, when built for its type and
    /// blooms are enabled.
    pub(crate) fn blooms(&self, ci: usize) -> Option<&[BlockBloom]> {
        self.blooms.get(ci).and_then(|b| b.as_deref())
    }

    /// Enables/disables per-block bloom filters (rebuilding or dropping
    /// them). Pruning stays correct either way — blooms only refute more
    /// blocks; the `_nobloom` baselines use this.
    pub fn set_bloom_filters(&mut self, enabled: bool) {
        if self.blooms_enabled == enabled {
            return;
        }
        self.blooms_enabled = enabled;
        self.rebuild_zones();
    }

    /// True when per-block bloom filters are enabled.
    pub fn bloom_filters_enabled(&self) -> bool {
        self.blooms_enabled
    }

    /// Pins a base-segment [`EncodingPolicy`], re-encoding the existing base
    /// under it and rebuilding zones/blooms over the new representation.
    /// Subsequent compactions keep applying the policy; logical content and
    /// the delta region are untouched. `Auto` restores cost-rule encoding.
    pub fn set_encoding_policy(&mut self, policy: EncodingPolicy) {
        self.encoding_policy = policy;
        let new_base: Vec<ColumnData> = self
            .base
            .iter()
            .map(|c| c.clone().encoded_with(policy))
            .collect();
        self.base = Arc::new(new_base);
        self.rebuild_zones();
    }

    /// The active base-segment encoding policy.
    pub fn encoding_policy(&self) -> EncodingPolicy {
        self.encoding_policy
    }

    /// The *base segment* of column `ci` (zero-copy; pair with
    /// [`ColumnTable::is_clean`], or use [`ColumnTable::column_ref`] for the
    /// full delta-aware view).
    pub fn column(&self, ci: usize) -> &ColumnData {
        &self.base[ci]
    }

    /// Delta-aware view of column `ci`: `Single` (zero-copy base) when the
    /// delta is empty, `Chunked` otherwise.
    pub fn column_ref(&self, ci: usize) -> ColRef<'_> {
        if self.delta_rows == 0 {
            ColRef::Single(&self.base[ci])
        } else {
            ColRef::Chunked { base: &self.base[ci], delta: &self.delta[ci] }
        }
    }

    /// Generic value at (column, physical rid) — rid may point into either
    /// segment.
    pub fn value(&self, ci: usize, rid: usize) -> Value {
        if rid < self.base_rows {
            self.base[ci].get(rid)
        } else {
            self.delta[ci].get(rid - self.base_rows)
        }
    }

    /// Physical rids of rows visible at this handle's epoch, ascending
    /// (base region first, then delta) — the selection vector a delta-aware
    /// scan starts from. On a live table this is exactly the non-tombstoned
    /// set; on a pinned view it is the committed prefix at the epoch.
    pub fn live_rids(&self) -> Vec<u32> {
        (0..self.physical_len() as u32)
            .filter(|&rid| self.visible_at(rid as usize, self.version))
            .collect()
    }

    /// Pins a read-only view of this table at `epoch`: `Arc`-shared base,
    /// delta and version vectors (O(width)), with `version` — the epoch all
    /// reads evaluate visibility at — set to the pin. Delta rows born after
    /// the epoch are sliced off logically (begin stamps are nondecreasing in
    /// rid order within the delta), so the view's physical shape, clean-scan
    /// fast path and work counters are identical to a table that simply
    /// stopped at the epoch. Returns `None` when `epoch` predates the last
    /// compaction (dead rows already reclaimed) or postdates the present.
    pub fn view_at(&self, epoch: u64) -> Option<ColumnTable> {
        if epoch < self.history_floor || epoch > self.version {
            return None;
        }
        let delta_begin = &self.row_begin[self.base_rows..self.base_rows + self.delta_rows];
        let delta_rows = delta_begin.partition_point(|&b| b <= epoch);
        let n_deleted = if epoch == self.version {
            self.n_deleted
        } else {
            (0..self.base_rows + delta_rows)
                .filter(|&rid| !self.visible_at(rid, epoch))
                .count()
        };
        Some(ColumnTable {
            name: self.name.clone(),
            base: Arc::clone(&self.base),
            delta: Arc::clone(&self.delta),
            base_rows: self.base_rows,
            delta_rows,
            row_begin: Arc::clone(&self.row_begin),
            row_end: Arc::clone(&self.row_end),
            n_deleted,
            version: epoch,
            history_floor: self.history_floor,
            block_rows: self.block_rows,
            block_rows_override: self.block_rows_override,
            zones: Arc::clone(&self.zones),
            blooms: Arc::clone(&self.blooms),
            blooms_enabled: self.blooms_enabled,
            encoding_policy: self.encoding_policy,
        })
    }

    /// Appends a row to the delta region. Returns the new physical rid.
    pub fn insert(&mut self, row: &[Value]) -> u32 {
        debug_assert_eq!(row.len(), self.base.len());
        self.version += 1;
        for (col, v) in Arc::make_mut(&mut self.delta).iter_mut().zip(row) {
            col.push(v.clone());
        }
        self.delta_rows += 1;
        Arc::make_mut(&mut self.row_begin).push(self.version);
        Arc::make_mut(&mut self.row_end).push(u64::MAX);
        (self.physical_len() - 1) as u32
    }

    /// Tombstones a physical rid (marks its end version). Returns false
    /// when already deleted.
    pub fn delete(&mut self, rid: u32) -> bool {
        let r = rid as usize;
        if self.row_end[r] != u64::MAX {
            return false;
        }
        self.version += 1;
        Arc::make_mut(&mut self.row_end)[r] = self.version;
        self.n_deleted += 1;
        true
    }

    /// Out-of-place update: tombstone + delta append. Returns the new rid.
    pub fn update(&mut self, rid: u32, row: &[Value]) -> u32 {
        self.delete(rid);
        self.insert(row)
    }

    /// Merges live delta rows into fresh base columns and drops dead
    /// versions — the freshness mechanism made explicit, and the moment old
    /// row versions are reclaimed: every surviving row restarts at
    /// `begin = new version`, so the history floor advances and epochs older
    /// than this compaction can no longer be pinned (outstanding pinned
    /// views keep their own `Arc`s and are unaffected). Physical rids
    /// re-pack to `0..row_count()`; subsequent scans take the zero-copy
    /// clean path. The merged base re-runs the encoding cost rule and
    /// rebuilds every block stats header, so zone maps left stale by deletes
    /// (conservative but loose) tighten back to exact.
    pub fn compact(&mut self) {
        if self.is_clean() {
            return;
        }
        let live = self.live_rids();
        let mut new_base = Vec::with_capacity(self.base.len());
        for ci in 0..self.base.len() {
            new_base.push(
                self.column_ref(ci)
                    .gather_rows(&live)
                    .encoded_with(self.encoding_policy),
            );
        }
        self.base_rows = live.len();
        self.delta = Arc::new(new_base.iter().map(|c| c.empty_like()).collect());
        self.base = Arc::new(new_base);
        self.delta_rows = 0;
        self.version += 1;
        self.history_floor = self.version;
        self.row_begin = Arc::new(vec![self.version; self.base_rows]);
        self.row_end = Arc::new(vec![u64::MAX; self.base_rows]);
        self.n_deleted = 0;
        self.block_rows = self
            .block_rows_override
            .unwrap_or_else(|| zone::default_block_rows(self.base_rows));
        self.rebuild_zones();
    }

    /// Materializes the selected physical rids restricted to `needed`
    /// columns; output row layout follows the order of `needed`.
    pub fn gather(&self, needed: &[usize], selection: &[u32]) -> Vec<Vec<Value>> {
        selection
            .iter()
            .map(|&rid| {
                needed
                    .iter()
                    .map(|&ci| self.value(ci, rid as usize))
                    .collect()
            })
            .collect()
    }

    /// O(width) consistent snapshot of the full physical state: base
    /// columns, delta builders and the begin/end version vectors are all
    /// shared (`Arc` bumps; the live table copies-on-write if it mutates
    /// while the snapshot is out). Checkpoints serialize from this and
    /// background compaction rebuilds from this, so neither holds the write
    /// lock while working.
    pub fn snapshot(&self) -> ColumnTableSnapshot {
        ColumnTableSnapshot {
            name: self.name.clone(),
            base: Arc::clone(&self.base),
            delta: Arc::clone(&self.delta),
            row_begin: Arc::clone(&self.row_begin),
            row_end: Arc::clone(&self.row_end),
            base_rows: self.base_rows,
            delta_rows: self.delta_rows,
            version: self.version,
            history_floor: self.history_floor,
            block_rows_override: self.block_rows_override,
            blooms_enabled: self.blooms_enabled,
            encoding_policy: self.encoding_policy,
        }
    }

    /// Rebuilds a table from recovered (deserialized) physical state.
    /// Zones are recomputed, not persisted — they are deterministic over
    /// the base, and recomputing keeps segment files smaller and simpler.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        base: Vec<ColumnData>,
        delta: Vec<ColumnData>,
        row_begin: Vec<u64>,
        row_end: Vec<u64>,
        version: u64,
        history_floor: u64,
        block_rows_override: Option<usize>,
    ) -> ColumnTable {
        let base_rows = base.first().map(|c| c.len()).unwrap_or(0);
        let delta_rows = delta.first().map(|c| c.len()).unwrap_or(0);
        let n_deleted = row_begin
            .iter()
            .zip(&row_end)
            .filter(|&(&b, &e)| !(b <= version && version < e))
            .count();
        let block_rows = block_rows_override.unwrap_or_else(|| zone::default_block_rows(base_rows));
        let mut t = ColumnTable {
            name,
            base: Arc::new(base),
            delta: Arc::new(delta),
            base_rows,
            delta_rows,
            row_begin: Arc::new(row_begin),
            row_end: Arc::new(row_end),
            n_deleted,
            version,
            history_floor,
            block_rows,
            block_rows_override,
            zones: Arc::new(Vec::new()),
            blooms: Arc::new(Vec::new()),
            blooms_enabled: true,
            encoding_policy: EncodingPolicy::Auto,
        };
        t.rebuild_zones();
        t
    }

    /// Atomically installs a compacted base built *offline* by background
    /// compaction (from a snapshot taken at `new_version - 1`). Equivalent
    /// to what [`ColumnTable::compact`] would have produced at snapshot
    /// time: fresh empty delta, clear bitmap, precomputed zones.
    pub(crate) fn install_compacted(&mut self, built: CompactedCols) {
        debug_assert_eq!(built.base.len(), self.base.len(), "width preserved");
        self.base_rows = built.n_live;
        self.delta = Arc::new(built.base.iter().map(|c| c.empty_like()).collect());
        self.base = Arc::new(built.base);
        self.delta_rows = 0;
        self.version = built.new_version;
        self.history_floor = built.new_version;
        self.row_begin = Arc::new(vec![built.new_version; built.n_live]);
        self.row_end = Arc::new(vec![u64::MAX; built.n_live]);
        self.n_deleted = 0;
        self.block_rows = built.block_rows;
        self.zones = Arc::new(built.zones);
        self.blooms = Arc::new(if self.blooms_enabled { built.blooms } else { Vec::new() });
    }
}

/// Consistent point-in-time view of a [`ColumnTable`]'s physical state
/// (everything `Arc`-shared; the live table copies-on-write). See
/// [`ColumnTable::snapshot`].
#[derive(Debug, Clone)]
pub struct ColumnTableSnapshot {
    /// Table name.
    pub name: String,
    /// Shared immutable base columns.
    pub base: Arc<Vec<ColumnData>>,
    /// Shared delta builders (as of snapshot time).
    pub delta: Arc<Vec<ColumnData>>,
    /// Shared per-row begin versions over `base + delta`.
    pub row_begin: Arc<Vec<u64>>,
    /// Shared per-row end versions (`u64::MAX` = live at snapshot time).
    pub row_end: Arc<Vec<u64>>,
    /// Rows in the base segment.
    pub base_rows: usize,
    /// Rows in the delta segment.
    pub delta_rows: usize,
    /// Version stamp at snapshot time.
    pub version: u64,
    /// Oldest pinnable epoch at snapshot time (last compaction's version).
    pub history_floor: u64,
    /// Pinned zone block size, if any.
    pub block_rows_override: Option<usize>,
    /// Whether the table builds bloom filters (an offline compact must
    /// precompute what the install expects).
    pub blooms_enabled: bool,
    /// Encoding policy at snapshot time (an offline compact must re-encode
    /// under the same policy the table will keep).
    pub encoding_policy: EncodingPolicy,
}

impl ColumnTableSnapshot {
    /// Delta-aware column view over the snapshot (same shape as
    /// [`ColumnTable::column_ref`]).
    pub fn column_ref(&self, ci: usize) -> ColRef<'_> {
        if self.delta_rows == 0 {
            ColRef::Single(&self.base[ci])
        } else {
            ColRef::Chunked { base: &self.base[ci], delta: &self.delta[ci] }
        }
    }

    /// Physical rids of live rows, ascending (the order compaction packs).
    pub fn live_rids(&self) -> Vec<u32> {
        (0..(self.base_rows + self.delta_rows) as u32)
            .filter(|&rid| self.row_end[rid as usize] == u64::MAX)
            .collect()
    }

    /// Tombstone bitmap over the physical rid space (true = dead at
    /// snapshot time), for rid-remap construction.
    pub(crate) fn deleted_mask(&self) -> Vec<bool> {
        self.row_end[..self.base_rows + self.delta_rows]
            .iter()
            .map(|&e| e != u64::MAX)
            .collect()
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.base.len()
    }
}

/// A compacted base built offline from a [`ColumnTableSnapshot`], ready for
/// [`ColumnTable::install_compacted`] under a brief write lock.
#[derive(Debug)]
pub(crate) struct CompactedCols {
    /// Re-gathered, re-encoded base columns (live rows only).
    pub base: Vec<ColumnData>,
    /// Live row count of the new base.
    pub n_live: usize,
    /// Zone block size for the new base.
    pub block_rows: usize,
    /// Precomputed zone headers for the new base.
    pub zones: Vec<Vec<BlockZone>>,
    /// Precomputed per-block bloom filters for the new base.
    pub blooms: Vec<Option<Vec<BlockBloom>>>,
    /// Version the table takes at install: snapshot version + 1, exactly
    /// the stamp a synchronous compact at snapshot time would have left,
    /// so WAL replay (which re-runs the compact at that point) converges
    /// on identical version numbers.
    pub new_version: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_storage_chosen_per_column() {
        let cols = vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Float(0.5), Value::Float(1.5)],
            vec![Value::Str("a".into()), Value::Str("b".into())],
            vec![Value::Date(100), Value::Date(200)],
            vec![Value::Int(1), Value::Null],
        ];
        let t = ColumnTable::from_columns("t", &cols);
        assert!(matches!(t.column(0), ColumnData::Int(_)));
        assert!(matches!(t.column(1), ColumnData::Float(_)));
        assert!(matches!(t.column(2), ColumnData::Str(_)));
        assert!(matches!(t.column(3), ColumnData::Date(_)));
        // A NULL no longer demotes the column to Mixed: typed + null mask.
        assert!(matches!(t.column(4), ColumnData::Nullable { .. }));
        assert_eq!(t.column(4).get(0), Value::Int(1));
        assert_eq!(t.column(4).get(1), Value::Null);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.width(), 5);
        assert_eq!(t.name(), "t");
        assert!(t.is_clean());
        assert_eq!(t.version(), 0);
    }

    #[test]
    fn leading_null_keeps_typed_storage() {
        let col = ColumnData::from_values(&[
            Value::Null,
            Value::Str("x".into()),
            Value::Null,
            Value::Str("y".into()),
        ]);
        let ColumnData::Nullable { nulls, values } = &col else {
            panic!("expected Nullable, got {col:?}");
        };
        assert_eq!(nulls, &vec![true, false, true, false]);
        assert!(matches!(**values, ColumnData::Str(_)));
        assert_eq!(col.get(0), Value::Null);
        assert_eq!(col.get(1), Value::Str("x".into()));
        // All-NULL and genuinely mixed columns still fall back.
        assert!(matches!(
            ColumnData::from_values(&[Value::Null, Value::Null]),
            ColumnData::Mixed(_)
        ));
        assert!(matches!(
            ColumnData::from_values(&[Value::Int(1), Value::Str("x".into())]),
            ColumnData::Mixed(_)
        ));
    }

    #[test]
    fn nullable_push_append_gather_round_trip() {
        let mut col = ColumnData::Int(vec![1, 2]);
        col.push(Value::Null); // promotes instead of demoting
        col.push(Value::Int(4));
        assert!(matches!(col, ColumnData::Nullable { .. }));
        assert_eq!(col.len(), 4);
        assert_eq!(col.get(2), Value::Null);
        assert_eq!(col.get(3), Value::Int(4));
        let gathered = col.gather_rows(&[3, 2, 0]);
        assert!(matches!(gathered, ColumnData::Nullable { .. }));
        assert_eq!(gathered.get(0), Value::Int(4));
        assert_eq!(gathered.get(1), Value::Null);
        assert_eq!(gathered.get(2), Value::Int(1));
        // Nullable + plain append keeps the mask aligned.
        let mut a = ColumnData::from_values(&[Value::Null, Value::Int(1)]);
        a.append(ColumnData::Int(vec![7, 8]));
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(0), Value::Null);
        assert_eq!(a.get(3), Value::Int(8));
        // A true type mismatch still demotes.
        col.push(Value::Str("oops".into()));
        assert!(matches!(col, ColumnData::Mixed(_)));
        assert_eq!(col.get(2), Value::Null);
    }

    #[test]
    fn dictionary_encoding_round_trips_low_cardinality_strings() {
        let strings: Vec<Value> = (0..200)
            .map(|i| Value::Str(["red", "green", "blue"][i % 3].to_string()))
            .collect();
        let col = ColumnData::from_values(&strings).encoded();
        let ColumnData::Dict(d) = &col else {
            panic!("expected Dict, got plain");
        };
        assert_eq!(d.values.len(), 3);
        assert_eq!(d.code_of("green"), Some(1));
        assert_eq!(d.code_of("mauve"), None);
        for (i, v) in strings.iter().enumerate() {
            assert_eq!(&col.get(i), v);
        }
        // Gather keeps the dictionary (codes copied, strings shared).
        let g = col.gather_rows(&[0, 3, 1]);
        assert!(matches!(g, ColumnData::Dict(_)));
        assert_eq!(g.get(2), Value::Str("green".into()));
        // High-cardinality strings stay plain.
        let unique: Vec<Value> = (0..200).map(|i| Value::Str(format!("s{i}"))).collect();
        assert!(matches!(
            ColumnData::from_values(&unique).encoded(),
            ColumnData::Str(_)
        ));
    }

    #[test]
    fn rle_encoding_round_trips_run_heavy_ints_and_dates() {
        let ints: Vec<Value> = (0..256).map(|i| Value::Int((i / 64) as i64)).collect();
        let col = ColumnData::from_values(&ints).encoded();
        let ColumnData::RleInt(r) = &col else {
            panic!("expected RleInt");
        };
        assert_eq!(r.n_runs(), 4);
        assert_eq!(col.len(), 256);
        for (i, v) in ints.iter().enumerate() {
            assert_eq!(&col.get(i), v);
        }
        // Gather decodes.
        let g = col.gather_rows(&[0, 200]);
        assert!(matches!(g, ColumnData::Int(_)));
        assert_eq!(g.get(1), Value::Int(3));
        let dates: Vec<Value> = (0..128).map(|i| Value::Date(i / 32)).collect();
        assert!(matches!(
            ColumnData::from_values(&dates).encoded(),
            ColumnData::RleDate(_)
        ));
        // Narrow-domain shuffled ints FOR-encode; full-width noise stays plain.
        let random: Vec<Value> = (0..256).map(|i| Value::Int((i * 37 % 251) as i64)).collect();
        assert!(matches!(
            ColumnData::from_values(&random).encoded(),
            ColumnData::ForInt(_)
        ));
        let noise: Vec<Value> = (0..256u64)
            .map(|i| Value::Int(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) as i64))
            .collect();
        assert!(matches!(
            ColumnData::from_values(&noise).encoded(),
            ColumnData::Int(_)
        ));
    }

    #[test]
    fn for_encoding_round_trips_and_packs_blocks() {
        // Near-sequential keys spanning several FOR blocks, with a straddling
        // width (9 bits ⇒ deltas cross word boundaries) and a constant block.
        let n = FOR_BLOCK_ROWS * 2 + 100;
        let ints: Vec<i64> = (0..n as i64)
            .map(|i| if i < (FOR_BLOCK_ROWS) as i64 { 500 } else { i * 2 + (i % 3) })
            .collect();
        let vals: Vec<Value> = ints.iter().map(|&i| Value::Int(i)).collect();
        let col = ColumnData::from_values(&vals).encoded();
        let ColumnData::ForInt(f) = &col else {
            panic!("expected ForInt, got {col:?}");
        };
        assert_eq!(f.n_blocks(), 3);
        assert_eq!(f.widths[0], 0, "constant block packs to zero bits");
        assert_eq!(col.len(), n);
        for (i, &x) in ints.iter().enumerate() {
            assert_eq!(col.get(i), Value::Int(x), "get at {i}");
        }
        let mut scratch = Vec::new();
        for b in 0..f.n_blocks() {
            f.decode_block_into(b, &mut scratch);
            let r = f.block_range(b);
            assert_eq!(&scratch[..], &ints[r.start..r.end], "block {b}");
        }
        // Gather decodes to plain (a gathered subset loses block structure).
        let g = col.gather_rows(&[0, (n - 1) as u32, (FOR_BLOCK_ROWS + 7) as u32]);
        assert!(matches!(g, ColumnData::Int(_)));
        assert_eq!(g.get(1), Value::Int(ints[n - 1]));
        // A single wide block (width > 32, word-straddling deltas) is legal
        // when narrow blocks subsidize the average.
        let mut mixed: Vec<i64> = vec![7; FOR_BLOCK_ROWS];
        mixed.extend((0..FOR_BLOCK_ROWS as i64).map(|i| i << 40));
        let f = ForInt::build(&mixed).expect("narrow block subsidizes the wide one");
        assert!(f.widths[1] > 32);
        for (i, &x) in mixed.iter().enumerate() {
            assert_eq!(f.get(i), x, "wide get at {i}");
        }
    }

    #[test]
    fn small_columns_are_never_encoded() {
        let small: Vec<Value> = (0..8).map(|_| Value::Str("x".into())).collect();
        assert!(matches!(
            ColumnData::from_values(&small).encoded(),
            ColumnData::Str(_)
        ));
    }

    #[test]
    fn get_round_trips_values() {
        let cols = vec![vec![Value::Int(7), Value::Int(9)]];
        let t = ColumnTable::from_columns("t", &cols);
        assert_eq!(t.value(0, 1), Value::Int(9));
        assert_eq!(t.column(0).len(), 2);
        assert!(!t.column(0).is_empty());
    }

    #[test]
    fn gather_respects_column_subset_and_order() {
        let cols = vec![
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            vec![
                Value::Str("a".into()),
                Value::Str("b".into()),
                Value::Str("c".into()),
            ],
        ];
        let t = ColumnTable::from_columns("t", &cols);
        let out = t.gather(&[1, 0], &[2, 0]);
        assert_eq!(
            out,
            vec![
                vec![Value::Str("c".into()), Value::Int(3)],
                vec![Value::Str("a".into()), Value::Int(1)],
            ]
        );
    }

    fn two_col_table() -> ColumnTable {
        ColumnTable::from_columns(
            "t",
            &[
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Str("a".into()), Value::Str("b".into())],
            ],
        )
    }

    #[test]
    fn insert_lands_in_delta_and_bumps_version() {
        let mut t = two_col_table();
        let rid = t.insert(&[Value::Int(3), Value::Str("c".into())]);
        assert_eq!(rid, 2);
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.delta_len(), 1);
        assert!(!t.is_clean());
        assert_eq!(t.version(), 1);
        assert_eq!(t.value(0, 2), Value::Int(3));
        // delta builder stays typed
        assert!(matches!(t.column_ref(0), ColRef::Chunked { .. }));
        assert_eq!(t.column_ref(0).get(2), Value::Int(3));
    }

    #[test]
    fn delete_masks_rid_and_update_relocates() {
        let mut t = two_col_table();
        assert!(t.delete(0));
        assert!(!t.delete(0));
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.live_rids(), vec![1]);
        let new_rid = t.update(1, &[Value::Int(20), Value::Str("b2".into())]);
        assert_eq!(new_rid, 2);
        assert_eq!(t.live_rids(), vec![2]);
        assert_eq!(t.value(0, 2), Value::Int(20));
    }

    #[test]
    fn null_insert_keeps_delta_builder_typed() {
        let mut t = two_col_table();
        t.insert(&[Value::Null, Value::Str("c".into())]);
        assert!(matches!(t.column(0), ColumnData::Int(_))); // base untouched
        assert_eq!(t.column_ref(0).get(2), Value::Null);
        // The delta builder grew a null mask instead of demoting to Mixed.
        t.insert(&[Value::Int(9), Value::Str("d".into())]);
        assert_eq!(t.column_ref(0).get(3), Value::Int(9));
    }

    #[test]
    fn compact_merges_delta_and_restores_clean_path() {
        let mut t = two_col_table();
        t.insert(&[Value::Int(3), Value::Str("c".into())]);
        t.delete(0);
        let v = t.version();
        t.compact();
        assert!(t.is_clean());
        assert_eq!(t.version(), v + 1);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.physical_len(), 2);
        // typed base preserved through compaction
        assert!(matches!(t.column(0), ColumnData::Int(_)));
        assert_eq!(t.value(0, 0), Value::Int(2));
        assert_eq!(t.value(0, 1), Value::Int(3));
        // compaction of a clean table is a no-op (no version bump)
        t.compact();
        assert_eq!(t.version(), v + 1);
    }

    #[test]
    fn zones_built_at_load_and_rebuilt_by_compact() {
        let cols = vec![(0..20).map(Value::Int).collect::<Vec<_>>()];
        let mut t = ColumnTable::from_columns("t", &cols);
        t.set_block_rows(8);
        assert_eq!(t.n_blocks(), 3);
        assert_eq!(t.block_range(2), 16..20);
        assert_eq!(t.zones(0)[0].max, Some(Value::Int(7)));
        assert_eq!(t.zones(0)[2].min, Some(Value::Int(16)));
        // A delta insert does not touch base headers (delta is never pruned).
        t.insert(&[Value::Int(999)]);
        assert_eq!(t.zones(0)[2].max, Some(Value::Int(19)));
        // Compaction folds the delta in and rebuilds headers.
        t.compact();
        assert_eq!(t.n_blocks(), 3);
        let last = t.zones(0).last().unwrap();
        assert_eq!(last.max, Some(Value::Int(999)));
        assert_eq!(last.rows, 5);
    }

    #[test]
    fn colref_gather_spans_segments() {
        let mut t = two_col_table();
        t.insert(&[Value::Int(3), Value::Str("c".into())]);
        let gathered = t.column_ref(0).gather_rows(&[2, 0]);
        assert!(matches!(gathered, ColumnData::Int(_)));
        assert_eq!(gathered.get(0), Value::Int(3));
        assert_eq!(gathered.get(1), Value::Int(1));
        let dense = t.column_ref(1).to_dense();
        assert_eq!(dense.len(), 3);
        assert_eq!(dense.get(2), Value::Str("c".into()));
    }

    #[test]
    fn chunked_gather_decodes_encoded_base_plus_plain_delta() {
        let strings: Vec<Value> = (0..100)
            .map(|i| Value::Str(["hot", "cold"][i % 2].to_string()))
            .collect();
        let mut t = ColumnTable::from_columns("t", &[strings]);
        assert!(matches!(t.column(0), ColumnData::Dict(_)));
        t.insert(&[Value::Str("warm".into())]);
        let g = t.column_ref(0).gather_rows(&[0, 100, 1]);
        assert!(matches!(g, ColumnData::Str(_)));
        assert_eq!(g.get(0), Value::Str("hot".into()));
        assert_eq!(g.get(1), Value::Str("warm".into()));
        assert_eq!(g.get(2), Value::Str("cold".into()));
        // Compaction re-runs the cost rule over the merged column.
        t.compact();
        assert!(matches!(t.column(0), ColumnData::Dict(_)));
        assert_eq!(t.value(0, 100), Value::Str("warm".into()));
    }
}
