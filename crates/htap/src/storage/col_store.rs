//! Column-oriented storage for the AP engine.
//!
//! Columns are typed vectors; scans touch only the columns a query
//! references, and filters are evaluated vectorized over a selection vector.
//! This is the structural advantage the paper's expert explanations cite for
//! AP ("scan only relevant columns and apply filters before joining").

use qpe_sql::value::Value;

/// Typed column data. Generated TPC-H data has no NULLs, but a NULL-tolerant
/// variant keeps the executor general.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// i64 column.
    Int(Vec<i64>),
    /// f64 column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<String>),
    /// Date column (days since epoch).
    Date(Vec<i32>),
    /// Mixed/NULL-bearing column (fallback representation).
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Builds typed storage from generic values, falling back to `Mixed` if
    /// the column is heterogeneous or contains NULLs.
    ///
    /// Single pass: the first value picks the candidate representation and
    /// ingestion proceeds directly into the typed vector, demoting to
    /// `Mixed` the moment a value disagrees (instead of pre-scanning the
    /// column once per candidate type).
    pub fn from_values(values: &[Value]) -> Self {
        let Some(first) = values.first() else {
            return ColumnData::Mixed(Vec::new());
        };
        match first {
            Value::Int(_) => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Int(x) => out.push(*x),
                        _ => return Self::demote(values, i),
                    }
                }
                ColumnData::Int(out)
            }
            Value::Float(_) => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Float(x) => out.push(*x),
                        _ => return Self::demote(values, i),
                    }
                }
                ColumnData::Float(out)
            }
            Value::Str(_) => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Str(x) => out.push(x.clone()),
                        _ => return Self::demote(values, i),
                    }
                }
                ColumnData::Str(out)
            }
            Value::Date(_) => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Date(x) => out.push(*x),
                        _ => return Self::demote(values, i),
                    }
                }
                ColumnData::Date(out)
            }
            Value::Null => ColumnData::Mixed(values.to_vec()),
        }
    }

    /// Cold path of [`ColumnData::from_values`]: a type mismatch was found at
    /// position `_at`; store the whole column as generic values.
    #[cold]
    fn demote(values: &[Value], _at: usize) -> Self {
        ColumnData::Mixed(values.to_vec())
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at position `i` as a generic [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Zero-copy typed view when the column stores `i64`.
    pub fn as_int_slice(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores `f64`.
    pub fn as_float_slice(&self) -> Option<&[f64]> {
        match self {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores strings.
    pub fn as_str_slice(&self) -> Option<&[String]> {
        match self {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy typed view when the column stores dates.
    pub fn as_date_slice(&self) -> Option<&[i32]> {
        match self {
            ColumnData::Date(v) => Some(v),
            _ => None,
        }
    }

    /// Gathers the given physical positions into a new dense typed column,
    /// preserving the storage representation (no per-cell [`Value`] boxing
    /// for numeric columns).
    pub fn gather_rows(&self, idxs: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int(v) => {
                ColumnData::Int(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Float(v) => {
                ColumnData::Float(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(idxs.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Date(v) => {
                ColumnData::Date(idxs.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(idxs.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }
}

/// A column-store table.
#[derive(Debug)]
pub struct ColumnTable {
    name: String,
    columns: Vec<ColumnData>,
    rows: usize,
}

impl ColumnTable {
    /// Builds typed columns from generic column-major data.
    pub fn from_columns(name: &str, columns: &[Vec<Value>]) -> Self {
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        ColumnTable {
            name: name.to_string(),
            columns: columns.iter().map(|c| ColumnData::from_values(c)).collect(),
            rows,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Typed column `ci`.
    pub fn column(&self, ci: usize) -> &ColumnData {
        &self.columns[ci]
    }

    /// Generic value at (column, row).
    pub fn value(&self, ci: usize, row: usize) -> Value {
        self.columns[ci].get(row)
    }

    /// Materializes the selected rows restricted to `needed` columns; output
    /// row layout follows the order of `needed`.
    pub fn gather(&self, needed: &[usize], selection: &[u32]) -> Vec<Vec<Value>> {
        selection
            .iter()
            .map(|&rid| {
                needed
                    .iter()
                    .map(|&ci| self.columns[ci].get(rid as usize))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_storage_chosen_per_column() {
        let cols = vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Float(0.5), Value::Float(1.5)],
            vec![Value::Str("a".into()), Value::Str("b".into())],
            vec![Value::Date(100), Value::Date(200)],
            vec![Value::Int(1), Value::Null],
        ];
        let t = ColumnTable::from_columns("t", &cols);
        assert!(matches!(t.column(0), ColumnData::Int(_)));
        assert!(matches!(t.column(1), ColumnData::Float(_)));
        assert!(matches!(t.column(2), ColumnData::Str(_)));
        assert!(matches!(t.column(3), ColumnData::Date(_)));
        assert!(matches!(t.column(4), ColumnData::Mixed(_)));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.width(), 5);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn get_round_trips_values() {
        let cols = vec![vec![Value::Int(7), Value::Int(9)]];
        let t = ColumnTable::from_columns("t", &cols);
        assert_eq!(t.value(0, 1), Value::Int(9));
        assert_eq!(t.column(0).len(), 2);
        assert!(!t.column(0).is_empty());
    }

    #[test]
    fn gather_respects_column_subset_and_order() {
        let cols = vec![
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            vec![
                Value::Str("a".into()),
                Value::Str("b".into()),
                Value::Str("c".into()),
            ],
        ];
        let t = ColumnTable::from_columns("t", &cols);
        let out = t.gather(&[1, 0], &[2, 0]);
        assert_eq!(
            out,
            vec![
                vec![Value::Str("c".into()), Value::Int(3)],
                vec![Value::Str("a".into()), Value::Int(1)],
            ]
        );
    }
}
