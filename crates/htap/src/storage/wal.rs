//! Group-commit write-ahead log.
//!
//! Every DML statement appends its logical operations ([`super::TableOp`])
//! as checksummed records *while still holding the database write lock* —
//! record order in the file therefore equals apply order in memory, which
//! is what makes single-pass replay deterministic. The statement is only
//! **acknowledged** to the client after [`Wal::commit`] reports the record
//! durable, and that call runs *after* the lock is released, so fsync time
//! never serializes the in-memory write path.
//!
//! # Group commit
//!
//! Under [`SyncPolicy::GroupCommit`] committers use a leader/follower
//! protocol: the first committer to find no flush in flight becomes the
//! leader, optionally dwells for the configured interval (letting
//! concurrent statements append into the batch), then writes and fsyncs
//! everything appended so far in **one** syscall pair. Followers whose LSN
//! the leader covered wake up already durable. One fsync thus amortizes
//! over every statement that arrived during the previous fsync + dwell —
//! the classic ≥5–20x throughput win over
//! [`SyncPolicy::PerStatement`], which fsyncs inside every append (the
//! naive contrast mode, kept for the benchmark).
//!
//! # Record format and torn tails
//!
//! `[len: u32][crc32(payload): u32][payload]`, little-endian. Replay
//! ([`read_wal_file`]) walks records until the bytes stop checksumming —
//! a short frame, bad CRC or undecodable payload marks the *torn tail* a
//! mid-flush crash leaves behind; the tail is physically truncated and
//! replay reports how many bytes were discarded. Because flushes always
//! write a prefix of the append order, a valid record can never follow a
//! torn one.

use super::codec::{self, Reader};
use super::durable_io::{crc32, DurabilityError, DurableFile, RetryPolicy};
use super::TableOp;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// When a commit acknowledgment requires the fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Leader/follower batched fsync. `interval` is the leader's dwell time
    /// before collecting the batch (zero = flush immediately; batching then
    /// comes only from fsync-in-progress overlap).
    GroupCommit {
        /// Leader dwell time before collecting the batch.
        interval: Duration,
    },
    /// fsync inside every append, while the database write lock is still
    /// held — the naive mode group commit is benchmarked against.
    PerStatement,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::GroupCommit { interval: Duration::ZERO }
    }
}

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A batch of same-statement operations against one table.
    Op {
        /// Target table.
        table: String,
        /// The operation batch.
        op: TableOp,
    },
    /// A compaction of `table` happened at this point of the timeline
    /// (replay re-runs it so later rids resolve in the re-packed space).
    Compact {
        /// Compacted table.
        table: String,
    },
    /// A checkpoint cut the log here; `version` is the manifest version
    /// whose segments capture everything before this record.
    Checkpoint {
        /// Manifest version of the checkpoint.
        version: u64,
    },
}

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_UPDATE: u8 = 3;
const KIND_COMPACT: u8 = 4;
const KIND_CHECKPOINT: u8 = 5;

/// Upper bound on one record's payload — a torn length prefix larger than
/// this is classified as tail garbage without attempting allocation.
const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

/// Checked `usize → u32` for WAL frame and count fields. An unchecked
/// `as u32` here would wrap: the frame would carry a truncated length, the
/// CRC would be computed over the truncated view, and replay would
/// checksum-pass garbage. Oversized batches are rejected up front instead.
fn checked_len(what: &str, n: usize) -> Result<u32, DurabilityError> {
    u32::try_from(n).map_err(|_| {
        DurabilityError::Corrupt(format!("WAL {what} length {n} exceeds the u32 frame limit"))
    })
}

impl WalRecord {
    fn encode_payload(&self, buf: &mut Vec<u8>) -> Result<(), DurabilityError> {
        match self {
            WalRecord::Op { table, op } => match op {
                TableOp::Insert { rows } => {
                    codec::put_u8(buf, KIND_INSERT);
                    codec::put_str(buf, table);
                    codec::put_u32(buf, checked_len("insert row count", rows.len())?);
                    for row in rows {
                        codec::put_row(buf, row);
                    }
                }
                TableOp::Delete { rids } => {
                    codec::put_u8(buf, KIND_DELETE);
                    codec::put_str(buf, table);
                    codec::put_u32(buf, checked_len("delete rid count", rids.len())?);
                    for rid in rids {
                        codec::put_u32(buf, *rid);
                    }
                }
                TableOp::Update { changes } => {
                    codec::put_u8(buf, KIND_UPDATE);
                    codec::put_str(buf, table);
                    codec::put_u32(buf, checked_len("update change count", changes.len())?);
                    for (rid, row) in changes {
                        codec::put_u32(buf, *rid);
                        codec::put_row(buf, row);
                    }
                }
            },
            WalRecord::Compact { table } => {
                codec::put_u8(buf, KIND_COMPACT);
                codec::put_str(buf, table);
            }
            WalRecord::Checkpoint { version } => {
                codec::put_u8(buf, KIND_CHECKPOINT);
                codec::put_u64(buf, *version);
            }
        }
        Ok(())
    }

    /// Appends the framed record (`len + crc + payload`) to `buf`.
    /// Errors (and leaves `buf` untouched) if any length field overflows
    /// the u32 frame format.
    pub fn encode(&self, buf: &mut Vec<u8>) -> Result<(), DurabilityError> {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload)?;
        codec::put_u32(buf, checked_len("payload", payload.len())?);
        codec::put_u32(buf, crc32(&payload));
        buf.extend_from_slice(&payload);
        Ok(())
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord, DurabilityError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            KIND_INSERT => {
                let table = r.str_()?;
                let n = r.count(4)?;
                let rows = (0..n).map(|_| codec::read_row(&mut r)).collect::<Result<_, _>>()?;
                WalRecord::Op { table, op: TableOp::Insert { rows } }
            }
            KIND_DELETE => {
                let table = r.str_()?;
                let n = r.count(4)?;
                let rids = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
                WalRecord::Op { table, op: TableOp::Delete { rids } }
            }
            KIND_UPDATE => {
                let table = r.str_()?;
                let n = r.count(8)?;
                let changes = (0..n)
                    .map(|_| Ok((r.u32()?, codec::read_row(&mut r)?)))
                    .collect::<Result<_, DurabilityError>>()?;
                WalRecord::Op { table, op: TableOp::Update { changes } }
            }
            KIND_COMPACT => WalRecord::Compact { table: r.str_()? },
            KIND_CHECKPOINT => WalRecord::Checkpoint { version: r.u64()? },
            k => return Err(DurabilityError::Corrupt(format!("unknown WAL record kind {k}"))),
        };
        if !r.is_done() {
            return Err(DurabilityError::Corrupt("trailing bytes in WAL payload".into()));
        }
        Ok(rec)
    }
}

#[derive(Debug)]
struct WalState {
    /// Encoded-but-unflushed records.
    buf: Vec<u8>,
    /// LSN = count of records appended so far.
    appended: u64,
    /// Highest LSN known durable.
    durable: u64,
    /// A leader currently owns the file and is flushing.
    flushing: bool,
    /// A flush failed (even after retries) or a crash fired: every later
    /// call errors until [`Wal::revive`] clears the latch.
    dead: bool,
    /// Root cause of the dead latch, surfaced to appenders and followers.
    dead_cause: Option<DurabilityError>,
}

impl WalState {
    fn dead_err(&self) -> DurabilityError {
        self.dead_cause.clone().unwrap_or(DurabilityError::Crashed)
    }
}

/// Counters the benchmarks and crash tests assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (acknowledged or not).
    pub records: u64,
    /// Physical fsyncs issued. `records / fsyncs` is the group-commit
    /// batching factor.
    pub fsyncs: u64,
}

/// The write-ahead log of one system. See the module docs for the
/// append/commit protocol.
#[derive(Debug)]
pub struct Wal {
    state: Mutex<WalState>,
    cv: Condvar,
    /// The active log file; only a flush leader (or a rotation holding the
    /// database lock) touches it, and never while holding `state`.
    file: Mutex<DurableFile>,
    policy: SyncPolicy,
    /// Bounded retry applied to every physical flush before the dead latch
    /// trips. The batch is written to the (in-memory) page cache once; only
    /// the failing fsync step retries, so no byte is ever duplicated.
    retry: RetryPolicy,
    fsyncs: AtomicU64,
    records: AtomicU64,
    retries: AtomicU64,
}

impl Wal {
    /// Wraps an open log file with the default [`RetryPolicy`].
    pub fn new(file: DurableFile, policy: SyncPolicy) -> Wal {
        Wal::with_retry(file, policy, RetryPolicy::default())
    }

    /// Wraps an open log file with an explicit flush retry policy.
    pub fn with_retry(file: DurableFile, policy: SyncPolicy, retry: RetryPolicy) -> Wal {
        Wal {
            state: Mutex::new(WalState {
                buf: Vec::new(),
                appended: 0,
                durable: 0,
                flushing: false,
                dead: false,
                dead_cause: None,
            }),
            cv: Condvar::new(),
            file: Mutex::new(file),
            policy,
            retry,
            fsyncs: AtomicU64::new(0),
            records: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, WalState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends records (call with the database write lock held, so file
    /// order equals apply order). Returns the LSN to pass to
    /// [`Wal::commit`] after the lock is released. Under
    /// [`SyncPolicy::PerStatement`] the fsync happens here instead.
    pub fn append(&self, records: &[WalRecord]) -> Result<u64, DurabilityError> {
        let mut s = self.lock_state();
        if s.dead {
            return Err(s.dead_err());
        }
        // Encode into a scratch buffer first: if one record of the batch
        // overflows the frame format, nothing of the batch reaches the log
        // (a partial prefix would replay operations that never applied).
        let mut scratch = Vec::new();
        for rec in records {
            rec.encode(&mut scratch)?;
        }
        s.buf.extend_from_slice(&scratch);
        s.appended += records.len() as u64;
        self.records.fetch_add(records.len() as u64, Ordering::Relaxed);
        let lsn = s.appended;
        if self.policy == SyncPolicy::PerStatement {
            self.flush_upto(s, lsn)?;
        }
        Ok(lsn)
    }

    /// Blocks until every record up to `lsn` is durable, participating in
    /// the leader/follower group-commit protocol.
    pub fn commit(&self, lsn: u64) -> Result<(), DurabilityError> {
        if let SyncPolicy::GroupCommit { interval } = self.policy {
            if !interval.is_zero() {
                let s = self.lock_state();
                if s.dead {
                    return Err(s.dead_err());
                }
                // Prospective leader dwells (lock released) so concurrent
                // statements append into the batch; followers skip straight
                // to waiting on the in-flight flush.
                if s.durable < lsn && !s.flushing {
                    drop(s);
                    std::thread::sleep(interval);
                }
            }
        }
        self.flush_upto(self.lock_state(), lsn)
    }

    /// Flushes everything appended so far (shutdown path).
    pub fn flush_all(&self) -> Result<(), DurabilityError> {
        let s = self.lock_state();
        let target = s.appended;
        self.flush_upto(s, target)
    }

    /// Core leader/follower loop. Consumes the guard; file I/O happens with
    /// `state` released so appenders keep making progress during the fsync.
    fn flush_upto<'a>(
        &'a self,
        mut s: MutexGuard<'a, WalState>,
        target: u64,
    ) -> Result<(), DurabilityError> {
        loop {
            if s.dead {
                return Err(s.dead_err());
            }
            if s.durable >= target {
                return Ok(());
            }
            if s.flushing {
                // Follower: the leader's fsync may already cover us.
                s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the leader for everything appended so far.
            s.flushing = true;
            let batch = std::mem::take(&mut s.buf);
            let upto = s.appended;
            drop(s);
            let res = {
                let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
                // Write the batch into the page cache once; only the fsync
                // step retries (a transient flush failure keeps the pending
                // bytes, so each retry pushes the same prefix-consistent
                // data).
                file.write(&batch).and_then(|()| {
                    let (r, retries) = self.retry.run(|| file.flush());
                    self.retries.fetch_add(retries as u64, Ordering::Relaxed);
                    r
                })
            };
            let mut s2 = self.lock_state();
            s2.flushing = false;
            match res {
                Ok(()) => {
                    s2.durable = upto;
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                    self.cv.notify_all();
                    s = s2;
                }
                Err(e) => {
                    s2.dead = true;
                    s2.dead_cause = Some(e.clone());
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Checkpoint rotation (call with the database lock held so no append
    /// races): waits out any in-flight flush, appends `checkpoint_record`,
    /// flushes the old file completely, then swaps in `new_file` as the
    /// active log. Every record up to the rotation is durable afterwards.
    pub fn rotate(
        &self,
        new_file: DurableFile,
        checkpoint_record: WalRecord,
    ) -> Result<(), DurabilityError> {
        let mut s = self.lock_state();
        loop {
            if s.dead {
                return Err(s.dead_err());
            }
            if !s.flushing {
                break;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        checkpoint_record.encode(&mut s.buf)?;
        s.appended += 1;
        self.records.fetch_add(1, Ordering::Relaxed);
        s.flushing = true;
        let batch = std::mem::take(&mut s.buf);
        let upto = s.appended;
        drop(s);
        let res = {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            let r = file.write(&batch).and_then(|()| {
                let (r, retries) = self.retry.run(|| file.flush());
                self.retries.fetch_add(retries as u64, Ordering::Relaxed);
                r
            });
            if r.is_ok() {
                *file = new_file;
            }
            r
        };
        let mut s = self.lock_state();
        s.flushing = false;
        match res {
            Ok(()) => {
                s.durable = upto;
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.cv.notify_all();
                Ok(())
            }
            Err(e) => {
                s.dead = true;
                s.dead_cause = Some(e.clone());
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    /// Clears the dead latch after the underlying fault healed (the
    /// degraded-mode exit path; callers must first confirm nothing is
    /// crash-poisoned). Buffered-but-unacknowledged records are kept: they
    /// may become durable on the next flush, which is sound — only
    /// *acknowledged* writes carry a durability promise, and the file's
    /// pending bytes are still a prefix of append order.
    pub fn revive(&self) {
        let mut s = self.lock_state();
        s.dead = false;
        s.dead_cause = None;
        self.cv.notify_all();
    }

    /// Whether the dead latch is currently set.
    pub fn is_dead(&self) -> bool {
        self.lock_state().dead
    }

    /// Total flush retries absorbed by the retry policy so far.
    pub fn flush_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Append/fsync counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.records.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of scanning one WAL file at recovery.
#[derive(Debug)]
pub struct WalReadOutcome {
    /// Records that checksummed, in append order.
    pub records: Vec<WalRecord>,
    /// Torn-tail bytes discarded (and physically truncated from the file).
    /// An all-zero tail — the untouched remainder of a preallocated chunk,
    /// not a mid-flush crash — is truncated too but counts as zero here.
    pub truncated_bytes: u64,
}

/// Reads every intact record of a WAL file, truncating any torn tail (or
/// preallocation padding) in place so a re-opened log appends after the
/// last good record.
pub fn read_wal_file(path: &Path) -> Result<WalReadOutcome, DurabilityError> {
    let bytes = std::fs::read(path)?;
    let mut records = Vec::new();
    let mut good = 0usize;
    let mut pos = 0usize;
    loop {
        if bytes.len() - pos < 8 {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN || (len as usize) > bytes.len() - pos - 8 {
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        let Ok(rec) = WalRecord::decode_payload(payload) else {
            break;
        };
        records.push(rec);
        pos += 8 + len as usize;
        good = pos;
    }
    let tail = &bytes[good..];
    // Flushes write prefixes of the append order into a zero-filled
    // preallocated region, so an all-zero tail is padding past the last
    // append, not data lost to a crash.
    let truncated_bytes = if tail.iter().all(|&b| b == 0) { 0 } else { tail.len() as u64 };
    if !tail.is_empty() {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(good as u64)?;
        f.sync_data()?;
    }
    Ok(WalReadOutcome { records, truncated_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::durable_io::FailPoints;
    use qpe_sql::value::Value;
    use std::sync::atomic::AtomicU32;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!("qpe_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}_{}", N.fetch_add(1, Ordering::Relaxed)))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Op {
                table: "t".into(),
                op: TableOp::Insert {
                    rows: vec![vec![Value::Int(1), Value::Str("a".into())], vec![
                        Value::Null,
                        Value::Float(2.5),
                    ]],
                },
            },
            WalRecord::Op { table: "t".into(), op: TableOp::Delete { rids: vec![3, 9] } },
            WalRecord::Op {
                table: "u".into(),
                op: TableOp::Update { changes: vec![(7, vec![Value::Date(10)])] },
            },
            WalRecord::Compact { table: "t".into() },
            WalRecord::Checkpoint { version: 42 },
        ]
    }

    #[test]
    fn records_round_trip_through_a_file() {
        let path = tmp_path("rt");
        let fp = FailPoints::default();
        let wal = Wal::new(
            DurableFile::create(&path, fp, "wal").unwrap(),
            SyncPolicy::default(),
        );
        let recs = sample_records();
        let lsn = wal.append(&recs).unwrap();
        wal.commit(lsn).unwrap();
        let out = read_wal_file(&path).unwrap();
        assert_eq!(out.truncated_bytes, 0);
        assert_eq!(out.records, recs);
        assert_eq!(wal.stats().records, 5);
        assert_eq!(wal.stats().fsyncs, 1);
    }

    #[test]
    fn per_statement_fsyncs_every_append() {
        let path = tmp_path("ps");
        let wal = Wal::new(
            DurableFile::create(&path, FailPoints::default(), "wal").unwrap(),
            SyncPolicy::PerStatement,
        );
        for rec in sample_records() {
            let lsn = wal.append(std::slice::from_ref(&rec)).unwrap();
            wal.commit(lsn).unwrap(); // already durable: no extra fsync
        }
        assert_eq!(wal.stats().fsyncs, 5);
        assert_eq!(read_wal_file(&path).unwrap().records.len(), 5);
    }

    #[test]
    fn oversized_length_is_a_structured_error_not_a_truncated_frame() {
        // u32::MAX still frames; one past it must surface a structured
        // Corrupt error instead of wrapping to 0 and checksum-passing a
        // truncated view on replay. Lengths are synthetic — no 4 GiB
        // buffer is allocated.
        assert_eq!(checked_len("probe", u32::MAX as usize).unwrap(), u32::MAX);
        match checked_len("insert row count", (u32::MAX as usize) + 1) {
            Err(DurabilityError::Corrupt(msg)) => {
                assert!(msg.contains("insert row count"), "{msg}");
                assert!(msg.contains("4294967296"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = tmp_path("torn");
        let mut buf = Vec::new();
        let recs = sample_records();
        for r in &recs {
            r.encode(&mut buf).unwrap();
        }
        let good_len = {
            let mut first_two = Vec::new();
            recs[0].encode(&mut first_two).unwrap();
            recs[1].encode(&mut first_two).unwrap();
            first_two.len()
        };
        // Cut mid-way through the third record.
        std::fs::write(&path, &buf[..good_len + 5]).unwrap();
        let out = read_wal_file(&path).unwrap();
        assert_eq!(out.records, recs[..2]);
        assert_eq!(out.truncated_bytes, 5);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len as u64);
        // Re-reading the truncated file is clean — recovery is idempotent.
        let again = read_wal_file(&path).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.records, recs[..2]);
    }

    #[test]
    fn corrupted_byte_cuts_the_log_at_the_bad_record() {
        let path = tmp_path("crc");
        let mut buf = Vec::new();
        for r in sample_records() {
            r.encode(&mut buf).unwrap();
        }
        // Flip one payload byte of the second record.
        let mut first = Vec::new();
        sample_records()[0].encode(&mut first).unwrap();
        buf[first.len() + 10] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();
        let out = read_wal_file(&path).unwrap();
        assert_eq!(out.records.len(), 1);
        assert!(out.truncated_bytes > 0);
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        let path = tmp_path("gc");
        let wal = std::sync::Arc::new(Wal::new(
            DurableFile::create(&path, FailPoints::default(), "wal").unwrap(),
            SyncPolicy::GroupCommit { interval: Duration::from_millis(2) },
        ));
        let mut handles = Vec::new();
        for t in 0..6 {
            let wal = std::sync::Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for i in 0..8 {
                    let rec = WalRecord::Op {
                        table: "t".into(),
                        op: TableOp::Delete { rids: vec![t * 100 + i] },
                    };
                    let lsn = wal.append(std::slice::from_ref(&rec)).unwrap();
                    wal.commit(lsn).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.records, 48);
        assert!(
            stats.fsyncs < stats.records,
            "dwell interval must batch commits: {stats:?}"
        );
        assert_eq!(read_wal_file(&path).unwrap().records.len(), 48);
    }

    #[test]
    fn transient_flush_errors_are_retried_transparently() {
        let path = tmp_path("retry");
        let fp = FailPoints::default();
        fp.arm_errors("wal", 3);
        let wal = Wal::new(
            DurableFile::create(&path, fp, "wal").unwrap(),
            SyncPolicy::default(),
        );
        let lsn = wal.append(&sample_records()).unwrap();
        // Default policy (5 attempts) absorbs the 3 injected errors.
        wal.commit(lsn).unwrap();
        assert_eq!(wal.flush_retries(), 3);
        assert_eq!(read_wal_file(&path).unwrap().records.len(), 5);
    }

    #[test]
    fn exhausted_retries_latch_dead_until_revive() {
        let path = tmp_path("revive");
        let fp = FailPoints::default();
        fp.arm_errors("wal", 100);
        let wal = Wal::with_retry(
            DurableFile::create(&path, fp.clone(), "wal").unwrap(),
            SyncPolicy::default(),
            RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
        );
        let lsn = wal.append(&sample_records()).unwrap();
        assert!(matches!(wal.commit(lsn), Err(DurabilityError::Io(_))));
        // The dead latch surfaces the root cause, not a fake crash.
        assert!(matches!(
            wal.append(&sample_records()),
            Err(DurabilityError::Io(_))
        ));
        assert!(wal.is_dead());
        fp.heal("wal");
        wal.revive();
        assert!(!wal.is_dead());
        // The buffered (never-acknowledged) batch flushes cleanly now.
        wal.flush_all().unwrap();
        assert_eq!(read_wal_file(&path).unwrap().records.len(), 5);
    }

    #[test]
    fn crashed_flush_poisons_the_wal() {
        let path = tmp_path("dead");
        let fp = FailPoints::default();
        fp.arm("wal", 1);
        let wal = Wal::new(
            DurableFile::create(&path, fp, "wal").unwrap(),
            SyncPolicy::default(),
        );
        let lsn = wal.append(&sample_records()).unwrap();
        assert_eq!(wal.commit(lsn), Err(DurabilityError::Crashed));
        assert_eq!(wal.append(&sample_records()), Err(DurabilityError::Crashed));
        assert_eq!(wal.flush_all(), Err(DurabilityError::Crashed));
    }
}
