//! Panic-free binary codec shared by the WAL and the segment files.
//!
//! Writers append to a `Vec<u8>`; the [`Reader`] is a bounds-checked cursor
//! whose every accessor returns [`DurabilityError::Corrupt`] instead of
//! panicking, because recovery feeds it *deliberately torn* bytes — the
//! crash harness cuts files mid-record and recovery must classify that as a
//! discardable tail, never as a crash of its own.
//!
//! All integers are little-endian. Strings are `u32` length + UTF-8 bytes.

use super::durable_io::DurabilityError;
use qpe_sql::value::Value;

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked read cursor over untrusted bytes.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DurabilityError> {
        if self.remaining() < n {
            return Err(DurabilityError::Corrupt(format!(
                "need {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DurabilityError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DurabilityError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DurabilityError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, DurabilityError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, DurabilityError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, DurabilityError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed count that must still be plausible given the bytes
    /// that remain (`min_bytes_each` per element), so a torn length prefix
    /// can't drive a multi-gigabyte allocation.
    pub(crate) fn count(&mut self, min_bytes_each: usize) -> Result<usize, DurabilityError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes_each.max(1)) > self.remaining() {
            return Err(DurabilityError::Corrupt(format!(
                "count {n} implausible with {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub(crate) fn str_(&mut self) -> Result<String, DurabilityError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DurabilityError::Corrupt("invalid UTF-8 string".into()))
    }
}

/// Value tags: 0=Null 1=Int 2=Float 3=Str 4=Date.
pub(crate) fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Int(x) => {
            put_u8(buf, 1);
            put_i64(buf, *x);
        }
        Value::Float(x) => {
            put_u8(buf, 2);
            put_f64(buf, *x);
        }
        Value::Str(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
        Value::Date(d) => {
            put_u8(buf, 4);
            put_i32(buf, *d);
        }
    }
}

pub(crate) fn read_value(r: &mut Reader<'_>) -> Result<Value, DurabilityError> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Float(r.f64()?),
        3 => Value::Str(r.str_()?),
        4 => Value::Date(r.i32()?),
        t => return Err(DurabilityError::Corrupt(format!("unknown value tag {t}"))),
    })
}

pub(crate) fn put_row(buf: &mut Vec<u8>, row: &[Value]) {
    put_u32(buf, row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

pub(crate) fn read_row(r: &mut Reader<'_>) -> Result<Vec<Value>, DurabilityError> {
    let n = r.count(1)?;
    (0..n).map(|_| read_value(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_i32(&mut buf, -7);
        put_f64(&mut buf, 2.5);
        put_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.i32().unwrap(), -7);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str_().unwrap(), "héllo");
        assert!(r.is_done());
    }

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Float(-0.0),
            Value::Str("x'y\"z".into()),
            Value::Date(-1),
        ];
        let mut buf = Vec::new();
        put_row(&mut buf, &vals);
        let mut r = Reader::new(&buf);
        let back = read_row(&mut r).unwrap();
        assert_eq!(back.len(), 5);
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.total_cmp(b), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn truncated_and_garbage_inputs_error_instead_of_panicking() {
        // Truncated string.
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        buf.truncate(6);
        assert!(Reader::new(&buf).str_().is_err());
        // Implausible count (would allocate gigabytes from 4 bytes).
        let huge = u32::MAX.to_le_bytes();
        assert!(Reader::new(&huge).count(8).is_err());
        // Unknown value tag.
        assert!(read_value(&mut Reader::new(&[9u8])).is_err());
        // Invalid UTF-8.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&buf).str_().is_err());
    }
}
