//! In-process HTAP substrate for the QPE reproduction.
//!
//! This crate stands in for ByteHTAP in the paper: a single *mutable*
//! database with two execution engines over the same data —
//!
//! * the **TP engine** (row store): row-at-a-time execution, B-tree
//!   primary/secondary indexes, nested-loop and index-nested-loop joins,
//!   sort-based grouping; an OLTP-biased optimizer and cost model. The row
//!   store is also the **write-applying side**: inserts append, deletes
//!   tombstone, updates relocate the tuple, and every index is maintained in
//!   place per write;
//! * the **AP engine** (column store): vectorized columnar scans that touch
//!   only referenced columns, hash joins, hash aggregation; an OLAP-biased
//!   optimizer whose cost scale is deliberately *not comparable* to TP's
//!   (the paper's "never compare costs across engines" trap). Its base
//!   columns are immutable; writes buffer in a versioned **delta region**
//!   (typed column builders + per-row begin/end version stamps) that scans
//!   read through, and `compact()` merges into fresh base columns.
//!
//! # Sessions: prepare once, execute many
//!
//! The client-facing API is the **session layer** ([`session`]):
//! [`session::Session::new`] wraps a shared `Arc<HtapSystem>`, and
//! [`session::Session::prepare`] runs the SQL front end **once** —
//! lex → parse → bind → plan for both engines — with parameter placeholders
//! (`?` positional, `$n` numbered) threaded through every layer:
//! `Expr::Param` in the AST, typed `BoundExpr::Param { idx, ty }` in the
//! binder (types inferred from the comparison/assignment context, coerced by
//! the same rules as INSERT literals), and parameterized index-lookup terms
//! ([`plan::PlanTerm`]) in the physical plan. Prepared statements land in a
//! system-wide LRU **plan cache** (keyed by SQL fingerprint, hit/miss stats
//! via [`engine::HtapSystem::plan_cache_stats`]), so every session shares
//! one front-end investment per distinct statement.
//!
//! [`session::PreparedStatement::execute`] injects the bound values into a
//! clone of the cached plans (*below* the planner, *above* the executors):
//! the executed predicates, pushed scan conjunctions and index keys are
//! byte-identical to what planning the literal-inlined SQL would produce, so
//! zone-map pruning re-specializes per execution and rows, counters and
//! pruning effectiveness exactly match the unprepared run
//! (`tests/prepared_props.rs`).
//!
//! **Concurrency:** the entire read path is `&self`, and analytical reads
//! run on **MVCC snapshots** rather than under the database lock. Every
//! read statement's AP side — and [`engine::HtapSystem::pin_snapshot`]
//! explicitly — takes the read lock only long enough to clone the `Arc`'d
//! column state at the table's current visibility epoch, then drops it and
//! executes entirely lock-free; writers proceed concurrently via
//! copy-on-write (`Arc::make_mut` clones any column an outstanding snapshot
//! still holds). Each delta row carries begin/end version stamps, so a
//! pinned [`engine::Snapshot`] sees exactly the rows committed at its epoch
//! — same rows *and* same work counters as a system that stopped there
//! (`tests/mvcc_props.rs` holds it to a committed-prefix oracle). Old row
//! versions are reclaimed when the last snapshot `Arc` referencing them
//! drops; `compact()` advances the table's history floor, the oldest epoch
//! a version view can still be reconstructed at. Writes take the write lock
//! internally; nothing on the public surface needs `&mut` (the old
//! `execute_sql(&mut self)` remains as a deprecated shim), and the
//! `QPE_MVCC_READS=0` escape hatch routes reads back under the read lock
//! with identical results — it is a latency knob, not a semantics knob.
//!
//! # DML flow (freshness made explicit)
//!
//! `INSERT`/`UPDATE`/`DELETE` statements flow lexer → parser → binder like
//! reads, then [`engine::HtapSystem::execute_statement`] routes them to the **TP
//! engine only**: the TP optimizer plans the row-locating access path
//! (index-aware, via the same single-table logic as reads), the DML executor
//! collects target rids *before* mutating (snapshot semantics), and the
//! write applies to both storage formats at the same rid. Write work is
//! metered by dedicated [`exec::WorkCounters`] fields and priced by the
//! latency model. Statistics stay honest across writes: row counts and
//! min/max maintain incrementally per statement, while ndv refreshes lazily
//! once a write backlog accumulates. Because AP scans always read
//! base + delta, a committed write is visible to the very next analytical
//! query — the ByteHTAP "high data freshness" property — and per-table
//! freshness (delta size, version stamp) is surfaced to the explainer's
//! evidence.
//!
//! Queries are bound by `qpe-sql`, optimized per engine into [`plan::PlanNode`]
//! trees (EXPLAIN JSON shaped exactly like the paper's Table II), executed for
//! real on generated TPC-H data ([`tpch`]), and timed through a deterministic
//! work-counter latency model ([`latency`]) so "which engine is faster" labels
//! are measured, not assumed.
//!
//! # Storage-side scan acceleration (zone maps, blooms, compressed execution)
//!
//! The column store's base segment is block-structured with per-block stats
//! headers ([`storage::zone`]): min/max, NULL count, a constant hint and a
//! small **bloom filter** per column, built at load and rebuilt by
//! compaction. The AP optimizer pushes each scan's filter conjunction into
//! its `TableScan` node, and every executor resolves the scan through one
//! shared entry that consults a [`storage::ScanPruner`]: blocks whose
//! min/max refute a range conjunct — or whose bloom filter proves an `=`/`IN`
//! literal absent — are skipped without touching a cell, while delta rows
//! are *never* pruned (the pruning-safety rule that keeps results exact
//! under buffered DML — base headers can only go conservatively stale, and
//! compaction re-tightens them; bloom false positives only ever cost an
//! extra block scan, never a wrong answer). The optimizer's pruning
//! *estimate* comes from sampled clustering statistics ([`stats`]):
//! sortedness and average run length decide how much of a range predicate's
//! non-selected fraction plausibly folds into whole prunable blocks.
//!
//! Base columns are stored compressed where a cost rule fires —
//! dictionary-encoded low-cardinality strings, run-length-encoded run-heavy
//! ints/dates, frame-of-reference bit-packed ints
//! ([`storage::col_store::ForInt`]) — and the executors run **on** those
//! representations rather than decoding first: equality/IN compare `u32`
//! dictionary codes, hash joins and group-bys hash the codes themselves
//! (kernels in [`eval`] and [`exec`]), RLE predicates evaluate once per run,
//! and FOR range predicates compare bit-packed deltas in the packed domain.
//! The delta region stays plain (append-hot, see [`storage`] for the
//! argument), and nullable typed columns carry a null mask instead of
//! demoting to generic values. Savings surface as fewer
//! `cells_scanned`/`filter_evals` plus the `blocks_checked`/`blocks_pruned`
//! counters the latency model prices — so pruning speeds queries up in
//! wall-clock *and* in the simulated latencies the router trains on, without
//! ever changing results (pruned ≡ unpruned ≡ TP, swept by
//! `tests/dml_props.rs` under random DML interleavings and by the forced
//! per-table [`storage::col_store::EncodingPolicy`] matrix in
//! `tests/engine_equivalence.rs`).
//!
//! # Execution modes
//!
//! One plan vocabulary, three execution modes ([`exec`]):
//!
//! * **Row interpreter** ([`exec::execute_scalar`]) — the reference
//!   semantics. Every operator materializes its output as `Vec<Vec<Value>>`
//!   rows; TP plans always execute here (index probes are inherently
//!   row-at-a-time).
//! * **Vectorized batch executor** ([`exec::vector`]) — AP plans execute
//!   over *batches*: typed column arrays (borrowed zero-copy from the column
//!   store) plus a selection vector. Filters evaluate column-at-a-time over
//!   typed slices ([`eval::eval_predicate_mask`]), joins match on typed key
//!   columns and gather only the columns that remain live above them (late
//!   materialization), sorts and top-N permute the selection, and rows are
//!   materialized once at the aggregation/projection boundary. This makes
//!   the AP engine *operationally* columnar, not just structurally — the
//!   asymmetry the paper's explanations cite ("scan only relevant columns
//!   and apply filters before joining") is now how the code actually runs.
//! * **Morsel-driven parallel executor** ([`exec::parallel`]) — the batch
//!   executor with its kernels fanned out over a scoped worker pool, knobbed
//!   by [`exec::ExecConfig`] (default: available cores; 1 thread is the
//!   exact serial path). Dense kernel ranges split into fixed-size morsels
//!   (cut at base/delta chunk boundaries); hash-join builds partition by
//!   key hash while probes stream morsel-wise; grouped aggregation
//!   partitions *groups* across workers so each group folds on one worker
//!   in global row order (float sums keep the serial association order);
//!   sorts stable-sort chunks and merge with ties to the lower chunk. Every
//!   merge is order-restoring, so parallel output is **bit-identical** to
//!   serial — rows and counters alike, at any thread count, on clean and
//!   dirty tables.
//!
//! # Durability & crash recovery
//!
//! [`engine::HtapSystem::open`] attaches a data directory and makes the
//! system crash-safe; [`engine::HtapSystem::new`] remains the pure
//! in-memory construction. Durability is layered under the engines, never
//! beside them — the row store, column store, indexes and statistics are
//! rebuilt from persistent state rather than serialized wholesale:
//!
//! * **Group-commit WAL** ([`storage::wal`]): every committed DML statement
//!   appends length-prefixed, CRC32-checksummed records *under the write
//!   lock* (log order ≡ apply order) and fsyncs *after releasing it* —
//!   concurrent committers share one fsync via a leader/follower protocol
//!   ([`storage::SyncPolicy::GroupCommit`]), so WAL throughput scales with
//!   batch size, not fsync latency.
//! * **Sealed column segments** ([`storage::persist`]): checkpoints write
//!   each table's column-store state — encoded base columns (dictionary,
//!   RLE, null masks preserved exactly), delta region, tombstone bitmap —
//!   into versioned, checksummed segment files, then publish them with an
//!   atomic manifest swap (`manifest.tmp` → fsync → rename). The WAL
//!   rotates to a fresh generation at the same point, so old generations
//!   and segments become garbage the new manifest sweeps.
//! * **Recovery** (`open` of a non-empty directory): load the manifest's
//!   segments, replay the WAL chain through the same `apply_*` entry
//!   points the live statements used, rebuild B-tree indexes over live
//!   rows, and restore catalog + statistics from the manifest. Torn WAL
//!   tails and half-written segments/manifests are detected by checksum
//!   and discarded — recovery returns a [`engine::RecoveryReport`], never
//!   panics on partial state.
//! * **Background compaction** ([`engine::DurabilityOptions::background`]):
//!   a dedicated thread snapshots a dirty table under a brief write lock,
//!   builds the compacted state (encoding, zone maps, indexes, stats)
//!   entirely off-lock, then swaps it in and re-applies the write window
//!   that accumulated meanwhile — writers stay live throughout. In durable
//!   mode the `Compact` WAL record lands at the snapshot point and
//!   concurrent writes are rid-translated so replay converges on the same
//!   bytes.
//!
//! The crash-injection harness (`tests/crash_recovery.rs`) drives random
//! DML/compact/checkpoint interleavings into simulated kills at every
//! durable I/O site and asserts recovered TP ≡ recovered AP ≡ an oracle
//! applying exactly the committed prefix.
//!
//! # Fault-tolerant statement lifecycle
//!
//! Statements are governed and failures are structured — nothing in the
//! engine `panic!`s its way out of a bad statement, and nothing loops
//! forever on a bad disk:
//!
//! * **Governance** ([`exec::ExecGuard`]): every statement runs under a
//!   guard combining a cancel flag ([`session::Session::cancel_handle`] —
//!   usable from any thread), a deadline, and an approximate memory budget
//!   ([`exec::StatementLimits`], defaulted system-wide via
//!   [`engine::HtapSystem::set_statement_limits`] or overridden per call).
//!   All three executors poll it cooperatively at operator/morsel/1k-row
//!   granularity and surface trips as
//!   `HtapError::{Cancelled, Timeout, MemoryBudget}`. Guard polls are one
//!   relaxed atomic load — the `governed_ap_scan` benchmark holds the
//!   overhead under 2%.
//! * **Transient-fault retry** ([`storage::durable_io::RetryPolicy`]): WAL
//!   fsyncs, segment seals and manifest swaps retry transiently-failing
//!   I/O with exponential backoff + jitter under a bounded budget.
//!   Retryable = I/O errors that may heal (everything except ENOSPC-class
//!   errors, simulated crashes, and checksum corruption).
//! * **Read-only degraded mode**: when retries exhaust (or a non-retryable
//!   error hits, or a writer panic poisons the database lock), the system
//!   latches degraded mode — writes fail fast with
//!   [`engine::HtapError::ReadOnly`] carrying the root cause, while reads
//!   and MVCC snapshots keep serving lock-free.
//!   [`engine::HtapSystem::health`] reports the mode, cause and fault
//!   counters; [`engine::HtapSystem::resume_writes`] re-probes the WAL end
//!   to end and lifts the degradation only on success. The state machine is
//!   `Healthy → (retry budget exhausted | non-retryable | writer panic) →
//!   Degraded → (resume_writes probe OK) → Healthy`.
//! * **Containment**: session-boundary `catch_unwind` turns an executor
//!   panic into [`engine::HtapError::Internal`]; poisoned locks are
//!   recovered rather than propagated (safe because readers only ever see
//!   committed copy-on-write state), with a writer panic additionally
//!   tripping degraded mode. `tests/fault_tolerance.rs` sweeps all of this:
//!   transient errors armed at every durable I/O site over random DML tapes
//!   (zero acked-write loss), mid-scan cancellation, deterministic
//!   timeouts, injected panics, and the degraded-mode round trip.
//!
//! # Engine pinning & the network front end
//!
//! Dual-running every read is the *calibration* configuration — it is what
//! measures both engines, checks cross-engine agreement, and produces the
//! labels the router trains on. Once routing is trusted, a client can
//! **pin**: [`engine::HtapSystem::execute_on`] runs a statement on exactly
//! one engine, [`session::Session::pin_engine`] routes a whole session
//! (including statements prepared before the pin), and
//! [`session::PreparedStatement::execute_on`] pins per call. A pinned run
//! returns a [`engine::PinnedQueryOutcome`] whose rows, counters and
//! simulated latency are byte-identical to the same engine's side of a
//! dual run — pinning skips the other engine's work and the agreement
//! check, never changes what the pinned engine computes
//! (`tests/engine_pinning.rs`), and DML stays TP-only on every path.
//!
//! The `qpe_server` crate serves this session layer over TCP: a
//! thread-per-connection server speaking a length-prefixed, CRC-checked
//! binary protocol, where each connection maps onto its own [`session::Session`]
//! over the shared `Arc<HtapSystem>`. The wire is a *transparent
//! transport*: rows, `WorkCounters`, and every typed error — SQL stages,
//! parameter mismatches, `Cancelled`/`Timeout`/`MemoryBudget`/`ReadOnly`
//! governance trips — round-trip losslessly, `Hello` negotiates
//! per-session [`exec::StatementLimits`] clamped by server caps, admission
//! control answers with structured `Busy` frames, and out-of-band `Cancel`
//! (conn-id + secret, Postgres-style) lands on the victim's
//! [`session::Session::cancel_handle`]. Its integration suite proves wire
//! results byte-identical to in-process sessions; its fuzz suite proves
//! the framing layer total on garbage, truncated and bit-flipped input.
//!
//! **Why counters must stay identical across modes:** everything downstream
//! consumes [`exec::WorkCounters`], not wall-clock — the latency model turns
//! counters into deterministic simulated latencies, those latencies pick the
//! winning engine, the winner labels train the router, and the explainer
//! justifies them. If the batch executor counted work differently, switching
//! executors (or thread counts) would silently change every latency, router
//! label and explanation in the system. All modes therefore charge the same
//! counter values for the same plan (asserted by
//! `tests/engine_equivalence.rs`, `tests/dml_props.rs` and
//! `tests/parallel_determinism.rs`), making execution mode a pure
//! performance decision. Parallel *wall-clock* gains are then priced into
//! the simulation separately: [`latency::ParallelCosts`] walks the critical
//! path (parallelizable counters divided by threads, serial sections and
//! per-morsel scheduling overhead added back), so the router and explainer
//! see realistic parallel latencies without the counters ever diverging.

pub mod engine;
pub mod eval;
pub mod exec;
pub mod latency;
pub mod opt;
pub mod plan;
pub mod session;
pub mod stats;
pub mod storage;
pub mod tpch;

pub use engine::{
    BackgroundCompaction, Database, DmlOutcome, DurabilityOptions, EngineKind, EngineRun,
    Health, HtapError, HtapSystem, PinnedQueryOutcome, QueryOutcome, RecoveryReport,
    StatementOutcome,
};
pub use exec::{CancelHandle, DmlKind, DmlResult, ExecConfig, GovernError, StatementLimits};
pub use plan::{NodeType, PlanNode};
pub use session::{PlanCacheStats, PreparedStatement, Session};
pub use storage::{DurabilityError, FailPoints, SyncPolicy, TableFreshness, WalStats};
pub use storage::durable_io::RetryPolicy;
pub use tpch::TpchConfig;
