//! In-process HTAP substrate for the QPE reproduction.
//!
//! This crate stands in for ByteHTAP in the paper: a single database with two
//! execution engines over the same data —
//!
//! * the **TP engine** (row store): row-at-a-time execution, B-tree
//!   primary/secondary indexes, nested-loop and index-nested-loop joins,
//!   sort-based grouping; an OLTP-biased optimizer and cost model;
//! * the **AP engine** (column store): vectorized columnar scans that touch
//!   only referenced columns, hash joins, hash aggregation; an OLAP-biased
//!   optimizer whose cost scale is deliberately *not comparable* to TP's
//!   (the paper's "never compare costs across engines" trap).
//!
//! Queries are bound by `qpe-sql`, optimized per engine into [`plan::PlanNode`]
//! trees (EXPLAIN JSON shaped exactly like the paper's Table II), executed for
//! real on generated TPC-H data ([`tpch`]), and timed through a deterministic
//! work-counter latency model ([`latency`]) so "which engine is faster" labels
//! are measured, not assumed.

pub mod engine;
pub mod eval;
pub mod exec;
pub mod latency;
pub mod opt;
pub mod plan;
pub mod stats;
pub mod storage;
pub mod tpch;

pub use engine::{Database, EngineKind, EngineRun, HtapSystem, QueryOutcome};
pub use plan::{NodeType, PlanNode};
pub use tpch::TpchConfig;
