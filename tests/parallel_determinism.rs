//! Determinism regression for the morsel-parallel executor: the same query
//! executed repeatedly at 4 threads must return **byte-identical** result
//! sets and WorkCounters every single time — and identical to the serial
//! batch executor. Thread scheduling varies freely between runs, so any
//! nondeterministic merge ordering (join pair emission, per-worker
//! aggregation-state merges, sort-chunk merges, filter selection splices)
//! shows up here as a flaky diff. A tiny morsel size forces dozens of
//! morsels per operator even at test scale.

use qpe_htap::engine::HtapSystem;
use qpe_htap::exec::{execute_parallel, execute_vectorized, vector, ExecConfig, Row, WorkCounters};
use qpe_htap::opt::{ap, PlannerCtx};
use qpe_htap::tpch::TpchConfig;
use qpe_sql::binder::BoundQuery;

const REPEATS: usize = 16;

/// Queries covering every parallel merge path: filter splices, typed and
/// generic hash-join partitions, grouped aggregation (float SUM/AVG — the
/// association-order-sensitive folds), full sort, and top-N.
const QUERIES: [&str; 5] = [
    // scan + filter + typed hash join + scalar agg
    "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey AND o_totalprice > 1000",
    // grouped aggregation with float sums and HAVING
    "SELECT c_nationkey, COUNT(*), SUM(c_acctbal), AVG(c_acctbal) FROM customer \
     GROUP BY c_nationkey HAVING COUNT(*) > 2 ORDER BY c_nationkey",
    // top-N over a filtered scan
    "SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderstatus = 'o' \
     ORDER BY o_totalprice DESC LIMIT 25",
    // full sort (no limit) + projection
    "SELECT c_name, c_acctbal FROM customer WHERE c_custkey < 200 ORDER BY c_acctbal",
    // 3-way join with filters on every input
    "SELECT COUNT(*) FROM customer, nation, orders \
     WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey AND c_acctbal > 0",
];

fn ap_plan(sys: &HtapSystem, sql: &str) -> (qpe_htap::PlanNode, BoundQuery) {
    let db = sys.database();
    let bound = sys.bind(sql).expect("binds");
    let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
    let plan = ap::plan(&ctx).expect("ap plan");
    assert!(vector::supported(&plan), "AP plan outside batch vocabulary for {sql}");
    (plan, bound)
}

fn dirty_system() -> HtapSystem {
    let sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    // Leave customer dirty (delta rows + tombstones) so morsels straddle
    // the base/delta split and the live-rid selection is non-trivial.
    for i in 0..40 {
        sys.execute_statement(&format!(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES ({}, 'customer#par{i}', {}, '20-000-000-0000', {}.75, \
             'machinery')",
            800_000 + i,
            i % 25,
            i * 13 % 5000
        ))
        .expect("insert");
    }
    sys.execute_statement("DELETE FROM customer WHERE c_custkey BETWEEN 10 AND 25")
        .expect("delete");
    sys.execute_statement("UPDATE customer SET c_acctbal = c_acctbal + 1 WHERE c_custkey < 8")
        .expect("update");
    assert!(sys.freshness("customer").unwrap().delta_rows > 0, "table must be dirty");
    sys
}

/// 16 runs at 4 threads: every run byte-identical to the first and to the
/// serial batch executor, rows and counters alike.
#[test]
fn repeated_parallel_runs_are_byte_identical() {
    let sys = dirty_system();
    let db = sys.database();
    let cfg = ExecConfig { threads: 4, morsel_rows: 16, ..ExecConfig::serial() };
    for sql in QUERIES {
        let (plan, bound) = ap_plan(&sys, sql);
        let (serial_rows, serial_counters): (Vec<Row>, WorkCounters) =
            execute_vectorized(&plan, &bound, &db).expect("serial batch");
        for run in 0..REPEATS {
            let (rows, counters) =
                execute_parallel(&plan, &bound, &db, &cfg).expect("parallel");
            assert_eq!(
                serial_rows, rows,
                "run {run}: parallel rows diverged from serial for {sql}"
            );
            assert_eq!(
                serial_counters, counters,
                "run {run}: parallel counters diverged from serial for {sql}"
            );
        }
    }
}

/// The thread count itself must not matter: 2, 3, 4 and 8 workers over
/// deliberately odd morsel sizes all reproduce the serial result.
#[test]
fn thread_count_and_morsel_size_are_invisible() {
    let sys = dirty_system();
    let db = sys.database();
    for sql in QUERIES {
        let (plan, bound) = ap_plan(&sys, sql);
        let (serial_rows, serial_counters) =
            execute_vectorized(&plan, &bound, &db).expect("serial batch");
        for threads in [2usize, 3, 4, 8] {
            for morsel_rows in [7usize, 33, 256] {
                let cfg = ExecConfig { threads, morsel_rows, ..ExecConfig::serial() };
                let (rows, counters) =
                    execute_parallel(&plan, &bound, &db, &cfg).expect("parallel");
                assert_eq!(
                    serial_rows, rows,
                    "rows diverged at {threads} threads / {morsel_rows}-row morsels for {sql}"
                );
                assert_eq!(
                    serial_counters, counters,
                    "counters diverged at {threads} threads / {morsel_rows}-row morsels for {sql}"
                );
            }
        }
    }
}

/// System-level determinism: a parallel-configured HtapSystem returns the
/// same outcome (rows, counters, simulated latency) on every repetition,
/// and the dual-engine agreement check stays green.
#[test]
fn parallel_system_runs_are_stable_end_to_end() {
    let mut sys = dirty_system();
    sys.set_exec_config(ExecConfig { threads: 4, morsel_rows: 16, ..ExecConfig::serial() });
    let sql = "SELECT c_mktsegment, COUNT(*), SUM(c_acctbal) FROM customer \
               GROUP BY c_mktsegment ORDER BY c_mktsegment";
    let first = sys.run_sql(sql).expect("runs");
    for _ in 0..REPEATS {
        let again = sys.run_sql(sql).expect("runs");
        assert_eq!(first.ap.rows, again.ap.rows);
        assert_eq!(first.ap.counters, again.ap.counters);
        assert_eq!(first.ap.latency_ns, again.ap.latency_ns);
    }
}
