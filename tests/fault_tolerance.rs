//! Fault-tolerant statement lifecycle: the sweep behind PR 9.
//!
//! Four failure families, each with the recovery the engine promises:
//!
//! * **Transient I/O faults** — a durable site fails N < retry-budget times
//!   and then heals. The bounded retry loop absorbs every injected error:
//!   all statements acknowledge, no write is lost, and the final state is
//!   byte-identical (rows AND work counters) to a fault-free oracle running
//!   the same tape.
//! * **Governance** — cancellation from another thread lands inside an
//!   in-flight 4-thread parallel scan; deadlines and memory budgets trip
//!   deterministically before (DML) or during (scan) execution. A tripped
//!   statement never poisons the session: the next statement runs clean.
//! * **Panics** — a failpoint panic inside the DML path (after rows apply,
//!   before the WAL append) is contained at the session boundary as
//!   `Internal`, the poisoned write lock is recovered, and the system
//!   degrades to read-only until `resume_writes()`.
//! * **Exhausted / persistent faults** — when the retry budget runs out the
//!   system trips read-only degraded mode: reads keep serving, writes fail
//!   structurally with `ReadOnly`, `health()` names the cause, and
//!   `resume_writes()` restores service once the fault clears. The
//!   background compactor survives the same faults with per-table backoff
//!   instead of dying or spinning.

use proptest::prelude::*;
use qpe_htap::engine::{BackgroundCompaction, DurabilityOptions, HtapSystem};
use qpe_htap::exec::{ExecConfig, Row, StatementLimits, WorkCounters};
use qpe_htap::storage::{FailPoints, SyncPolicy};
use qpe_htap::tpch::TpchConfig;
use qpe_htap::{HtapError, RetryPolicy, Session};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Unique temp directory, removed on drop.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "qpe_fault_{tag}_{}_{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TmpDir(path)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> TpchConfig {
    TpchConfig::with_scale(0.0005)
}

fn opts(fp: FailPoints) -> DurabilityOptions {
    DurabilityOptions {
        sync: SyncPolicy::GroupCommit { interval: Duration::ZERO },
        failpoints: fp,
        ..DurabilityOptions::default()
    }
}

/// A retry policy with no real sleeping, so exhaustion tests stay fast.
fn eager_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy { max_attempts, base_backoff: Duration::ZERO, max_backoff: Duration::ZERO }
}

/// One randomized operation (same tape model as the crash sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
enum SimOp {
    Insert,
    Update,
    Delete,
    Compact,
    Checkpoint,
}

fn decode(code: u8) -> SimOp {
    match code % 8 {
        0..=2 => SimOp::Insert,
        3 | 4 => SimOp::Update,
        5 => SimOp::Delete,
        6 => SimOp::Compact,
        _ => SimOp::Checkpoint,
    }
}

fn apply(sys: &HtapSystem, op: SimOp, seed: u64, i: usize) -> Result<(), HtapError> {
    let salt = seed.wrapping_mul(31).wrapping_add(i as u64);
    match op {
        SimOp::Insert => {
            let key = 1_000_000 + salt % 100_000;
            let seg = ["machinery", "building", "household"][(salt % 3) as usize];
            sys.execute_statement(&format!(
                "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                 c_mktsegment) VALUES ({key}, 'customer#{key}', {}, '20-000-000-0000', \
                 {}.25, '{seg}')",
                salt % 25,
                salt % 5000
            ))
            .map(|_| ())
        }
        SimOp::Update => {
            let lo = 1 + salt % 70;
            sys.execute_statement(&format!(
                "UPDATE customer SET c_acctbal = c_acctbal + {}, c_mktsegment = 'machinery' \
                 WHERE c_custkey BETWEEN {lo} AND {}",
                salt % 100,
                lo + 5
            ))
            .map(|_| ())
        }
        SimOp::Delete => {
            let lo = 1 + salt % 70;
            sys.execute_statement(&format!(
                "DELETE FROM customer WHERE c_custkey BETWEEN {lo} AND {}",
                lo + 2
            ))
            .map(|_| ())
        }
        SimOp::Compact => {
            sys.compact("customer");
            Ok(())
        }
        SimOp::Checkpoint => sys.checkpoint().map(|_| ()),
    }
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

fn state(sys: &HtapSystem) -> (Vec<Row>, WorkCounters, WorkCounters) {
    let out = sys.run_sql("SELECT * FROM customer").expect("full scan");
    (sorted(out.tp.rows.clone()), out.tp.counters, out.ap.counters)
}

/// Durable sites a transient error can be injected at. All are wrapped in
/// bounded retry: WAL flushes retry the fsync (the batch stays buffered),
/// segment seals and manifest swaps retry by idempotent re-creation.
const TRANSIENT_SITES: [&str; 3] = ["wal", "seg", "manifest"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The transient sweep: a random op tape with a transient fault (fails
    /// `count` times, then heals) armed at a random durable site before a
    /// random statement. `count` stays under the retry budget, so every
    /// statement must acknowledge, the system must stay healthy, and the
    /// final state must equal a fault-free oracle's — acked writes are
    /// never lost to an absorbed fault.
    #[test]
    fn bounded_retry_absorbs_transient_faults(
        codes in prop::collection::vec(any::<u8>(), 1..16usize),
        seed in any::<u64>(),
        site_idx in 0usize..3,
        arm_at in 0usize..16,
        count in 1u32..4,
    ) {
        let site = TRANSIENT_SITES[site_idx];
        let dir = TmpDir::new("transient");
        let fp = FailPoints::default();
        let cfg = config();
        let sys = HtapSystem::open_with(&dir.0, &cfg, opts(fp.clone())).expect("open");
        let oracle = HtapSystem::new(&cfg);

        for (i, &code) in codes.iter().enumerate() {
            if i == arm_at % codes.len() {
                fp.arm_errors(site, count);
            }
            let op = decode(code);
            let got = apply(&sys, op, seed, i);
            let want = apply(&oracle, op, seed, i);
            if op == SimOp::Checkpoint {
                // The in-memory oracle has nothing to checkpoint; the
                // durable side must absorb the fault and succeed.
                prop_assert!(got.is_ok(), "checkpoint not absorbed at op {}: {:?}", i, got);
            } else {
                // Statement outcomes agree op-for-op (duplicate keys fail
                // on both; injected faults must be invisible).
                prop_assert_eq!(got.is_ok(), want.is_ok(), "op {} diverged: {:?}", i, got);
            }
        }
        prop_assert!(!fp.crashed(), "transient faults never escalate to a crash");
        prop_assert!(!sys.is_degraded(), "absorbed faults must not trip degraded mode");
        let live = state(&sys);
        prop_assert_eq!(&live, &state(&oracle), "live state diverged from fault-free oracle");

        // And the acked tape survives an unclean kill + recovery.
        drop(sys);
        let recovered = HtapSystem::open(&dir.0, &cfg).expect("recovery");
        prop_assert_eq!(&state(&recovered), &live, "recovered state diverged");
    }
}

/// Cross-thread cancellation lands inside an in-flight 4-thread parallel
/// aggregation and surfaces as `Cancelled` — and the session immediately
/// runs the next statement clean (the flag is lowered at statement start).
#[test]
fn cancellation_interrupts_a_parallel_scan() {
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    sys.set_exec_config(ExecConfig { threads: 4, morsel_rows: 8, ..ExecConfig::serial() });
    let session = Session::new(Arc::new(sys));
    let sql = "SELECT c_nationkey, COUNT(*), SUM(c_acctbal), AVG(c_acctbal) \
               FROM customer, orders WHERE o_custkey = c_custkey \
               GROUP BY c_nationkey ORDER BY c_nationkey";

    // The cancel window spans flag-clear to the post-execution final check,
    // i.e. nearly the whole statement; a sweep of delays makes one land.
    let mut cancelled = false;
    for attempt in 0..60u64 {
        let handle = session.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(attempt * 150));
            handle.cancel();
        });
        let out = session.execute_sql(sql);
        canceller.join().expect("canceller thread");
        match out {
            Err(HtapError::Cancelled) => {
                cancelled = true;
                break;
            }
            Err(e) => panic!("cancellation must not surface as {e}"),
            Ok(_) => {} // cancel landed before the statement started; retry
        }
    }
    assert!(cancelled, "no cancel landed in-flight across the delay sweep");

    // The raised flag belongs to the cancelled statement only.
    let next = session.execute_sql("SELECT COUNT(*) FROM customer").expect("next statement");
    assert!(next.as_query().is_some());
}

/// A zero deadline trips `Timeout` on queries (at the first governance
/// check) and on DML (before any row is mutated); clearing the limit
/// restores service on the same system.
#[test]
fn deadlines_trip_timeouts_without_side_effects() {
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let rows_before = sys.run_sql("SELECT COUNT(*) FROM customer").expect("count").tp.rows.clone();

    sys.set_statement_limits(StatementLimits {
        timeout: Some(Duration::ZERO),
        memory_budget: None,
    });
    let limit = Duration::ZERO;
    match sys.run_sql("SELECT COUNT(*) FROM customer") {
        Err(HtapError::Timeout { limit: l }) => assert_eq!(l, limit),
        other => panic!("expected Timeout, got {other:?}"),
    }
    // DML is checked before the first mutation: a timed-out INSERT leaves
    // no partial write behind.
    let insert = "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                  c_mktsegment) VALUES (900001, 'c#900001', 1, '20-000-000-0000', 1.25, \
                  'machinery')";
    assert!(matches!(
        sys.execute_statement(insert),
        Err(HtapError::Timeout { .. })
    ));

    sys.set_statement_limits(StatementLimits::unlimited());
    let rows_after = sys.run_sql("SELECT COUNT(*) FROM customer").expect("count").tp.rows.clone();
    assert_eq!(rows_before, rows_after, "timed-out DML must not mutate");
    sys.execute_statement(insert).expect("insert after lifting the limit");
}

/// Per-call limits via the session API: a statement-scoped memory budget
/// trips `MemoryBudget` with the attempted size, while the same query under
/// the session default (unlimited) succeeds untouched.
#[test]
fn memory_budgets_bound_result_materialization() {
    let sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.002)));
    let session = Session::new(sys);
    let sql = "SELECT * FROM customer";
    session.execute_sql(sql).expect("unbudgeted run succeeds");

    let tight = StatementLimits { timeout: None, memory_budget: Some(64) };
    match session.execute_sql_with(sql, &tight) {
        Err(HtapError::MemoryBudget { budget_bytes, attempted_bytes }) => {
            assert_eq!(budget_bytes, 64);
            assert!(attempted_bytes > 64, "the violation records what was attempted");
        }
        other => panic!("expected MemoryBudget, got {other:?}"),
    }
    // The budget was statement-scoped: the next call is clean.
    session.execute_sql(sql).expect("budget does not stick to the session");
}

/// A panic inside the DML path (rows applied, WAL append not yet reached)
/// is contained at the session boundary as `Internal`; the poisoned write
/// lock is recovered on next access, the system degrades to read-only, and
/// `resume_writes()` restores write service.
#[test]
fn writer_panic_is_contained_and_degrades_to_read_only() {
    let dir = TmpDir::new("panic");
    let cfg = config();
    let fp = FailPoints::default();
    let sys = Arc::new(HtapSystem::open_with(&dir.0, &cfg, opts(fp.clone())).expect("open"));
    let session = Session::new(Arc::clone(&sys));

    let insert = |key: u64| {
        format!(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES ({key}, 'c#{key}', 1, '20-000-000-0000', 1.25, 'machinery')"
        )
    };
    session.execute_sql(&insert(910_001)).expect("healthy insert");

    fp.arm_panic("dml:after_apply");
    match session.execute_sql(&insert(910_002)) {
        Err(HtapError::Internal(msg)) => {
            assert!(msg.contains("dml:after_apply"), "panic payload surfaced: {msg}")
        }
        other => panic!("expected Internal, got {other:?}"),
    }

    // Reads keep serving (the poisoned lock is recovered under the hood),
    // and that first recovery trips degraded mode with a panic diagnosis.
    session.execute_sql("SELECT COUNT(*) FROM customer").expect("reads survive the panic");
    let health = sys.health();
    assert!(health.degraded);
    assert!(health.writer_panics >= 1);
    assert!(
        health.degraded_cause.as_deref().unwrap_or("").contains("poisoned"),
        "cause names the poisoned lock: {:?}",
        health.degraded_cause
    );
    assert!(matches!(
        session.execute_sql(&insert(910_003)),
        Err(HtapError::ReadOnly { .. })
    ));

    sys.resume_writes().expect("nothing durable is broken");
    session.execute_sql(&insert(910_004)).expect("writes restored");
    assert!(!sys.is_degraded());
}

/// The full degraded round trip on a persistent WAL fault: retry budget
/// exhausts → writes fail and the system turns read-only; reads and
/// snapshots keep serving; `health()` names the cause; `resume_writes()`
/// refuses while the fault persists, succeeds after it clears; and the
/// acknowledged writes survive a post-recovery reopen.
#[test]
fn exhausted_retries_enter_and_exit_degraded_mode() {
    let dir = TmpDir::new("degraded");
    let cfg = config();
    let fp = FailPoints::default();
    let sys = HtapSystem::open_with(
        &dir.0,
        &cfg,
        DurabilityOptions {
            sync: SyncPolicy::GroupCommit { interval: Duration::ZERO },
            failpoints: fp.clone(),
            retry: eager_retry(2),
            ..DurabilityOptions::default()
        },
    )
    .expect("open");

    for i in 0..4 {
        apply(&sys, SimOp::Insert, 77, i).expect("healthy insert");
    }
    let acked = state(&sys);

    // A fault that outlives the retry budget: every WAL flush fails.
    fp.arm_errors("wal", u32::MAX);
    assert!(apply(&sys, SimOp::Insert, 77, 4).is_err(), "exhausted retries surface");
    let health = sys.health();
    assert!(health.degraded);
    assert!(
        health.degraded_cause.as_deref().unwrap_or("").contains("wal"),
        "cause names the failing site: {:?}",
        health.degraded_cause
    );
    assert!(health.wal_flush_retries >= 1, "the retry loop actually ran");

    // Structural write rejection; reads and snapshots keep serving.
    match apply(&sys, SimOp::Insert, 77, 5) {
        Err(HtapError::ReadOnly { cause }) => assert!(cause.contains("wal")),
        other => panic!("expected ReadOnly, got {other:?}"),
    }
    assert!(matches!(sys.checkpoint(), Err(HtapError::ReadOnly { .. })));
    assert!(sys.run_sql("SELECT COUNT(*) FROM customer").is_ok());
    let snap = sys.pin_snapshot();
    assert!(snap.run_sql("SELECT COUNT(*) FROM customer").is_ok());

    // Resume refuses while the fault persists (the re-probe fails) …
    assert!(sys.resume_writes().is_err());
    assert!(sys.is_degraded());

    // … and succeeds once it clears.
    fp.heal("wal");
    sys.resume_writes().expect("probe succeeds after heal");
    assert!(!sys.is_degraded());
    apply(&sys, SimOp::Insert, 77, 6).expect("writes restored");
    assert!(sys.health().degraded_cause.is_none());

    // Durable state reconverges with the live state at resume: the revived
    // WAL flushes the retained batch, so the statement that failed mid-WAL
    // (rows applied, record stuck in the buffer) survives wholly alongside
    // every acked write, while the structurally rejected one left no trace.
    let live = state(&sys);
    assert_eq!(
        live.0.len(),
        acked.0.len() + 2,
        "failing + post-resume inserts are live in memory"
    );
    drop(sys);
    let recovered = HtapSystem::open(&dir.0, &cfg).expect("recover");
    assert_eq!(state(&recovered), live, "recovery reconverges with the live state");
}

/// The background compactor survives durable faults: failures are counted
/// and backed off per table (no spin, no silent swallowing), and service
/// resumes once the fault heals.
#[test]
fn compactor_backs_off_on_failures_and_recovers() {
    let dir = TmpDir::new("compactor");
    let cfg = config();
    let fp = FailPoints::default();
    let sys = HtapSystem::open_with(
        &dir.0,
        &cfg,
        DurabilityOptions {
            sync: SyncPolicy::GroupCommit { interval: Duration::ZERO },
            failpoints: fp.clone(),
            retry: eager_retry(2),
            background: Some(BackgroundCompaction {
                min_delta_rows: 4,
                poll: Duration::from_millis(1),
            }),
        },
    )
    .expect("open");

    // Make every WAL flush fail, then keep replenishing delta debt (healing
    // and re-probing the WAL just long enough to insert) until the
    // compactor both records a failed compaction — its Compact record's
    // commit exhausts the retries — and skips a poll in backoff. The
    // compactor races us (it can drain the debt before the fault lands),
    // hence the loop rather than a single arm.
    let mut next_key = 0usize;
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let health = sys.health();
        if health.compactor_failures >= 1 && health.compactor_backoffs >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "compactor failure accounting never engaged; health {health:?}"
        );
        if sys.freshness("customer").expect("customer exists").delta_rows < 4 {
            fp.heal("wal");
            let _ = sys.resume_writes(); // revive the dead latch between rounds
            for _ in 0..8 {
                let _ = apply(&sys, SimOp::Insert, 91, next_key);
                next_key += 1;
            }
            fp.arm_errors("wal", u32::MAX);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let health = sys.health();
    assert!(health.compactor_failures >= 1, "compaction failures are counted, not swallowed");
    assert!(health.compactor_backoffs >= 1, "failures trigger backoff, not spin");

    // Heal; the backoff expires and compaction eventually drains the delta.
    fp.heal("wal");
    sys.resume_writes().expect("probe after heal");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let fresh = sys.freshness("customer").expect("customer exists");
        // Below the trigger threshold counts as drained: the compactor's
        // contract is bounded delta debt, not zero.
        if fresh.delta_rows < 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "compactor never recovered after heal; {} delta rows left, health {:?}",
            fresh.delta_rows,
            sys.health()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}
