//! Engine pinning ≡ dual-run equivalence: a read executed on **one**
//! pinned engine — via [`HtapSystem::execute_on`], a session-level
//! [`Session::pin_engine`], or a prepared statement's `execute_on` — must
//! return rows, WorkCounters and simulated latency byte-identical to the
//! same engine's side of a dual run. Pinning skips the other engine's
//! execution and the cross-engine agreement check; it must never change
//! what the pinned engine computes. DML is TP-only on every path, so a
//! pinned session's writes behave exactly like an unpinned one's.

use qpe_htap::engine::{EngineKind, HtapSystem, StatementOutcome};
use qpe_htap::session::Session;
use qpe_htap::tpch::TpchConfig;
use qpe_sql::value::Value;
use std::sync::{Arc, OnceLock};

fn system() -> &'static Arc<HtapSystem> {
    static SYS: OnceLock<Arc<HtapSystem>> = OnceLock::new();
    SYS.get_or_init(|| Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.002))))
}

/// The read matrix: point lookup, pruned range aggregate, join group-by,
/// ORDER BY + LIMIT, and a parameterized case for the prepared paths.
fn queries() -> Vec<(&'static str, Vec<Value>)> {
    vec![
        ("SELECT c_name, c_acctbal FROM customer WHERE c_custkey = 25", vec![]),
        (
            "SELECT COUNT(*), SUM(c_acctbal), MIN(c_acctbal) FROM customer \
             WHERE c_custkey BETWEEN 50 AND 200",
            vec![],
        ),
        (
            "SELECT c_nationkey, COUNT(*), AVG(c_acctbal) FROM customer, orders \
             WHERE o_custkey = c_custkey GROUP BY c_nationkey ORDER BY c_nationkey",
            vec![],
        ),
        (
            "SELECT c_custkey, c_name FROM customer WHERE c_mktsegment = 'machinery' \
             ORDER BY c_acctbal DESC LIMIT 15",
            vec![],
        ),
        (
            "SELECT c_name FROM customer WHERE c_custkey = ? OR c_nationkey = ?",
            vec![Value::Int(77), Value::Int(3)],
        ),
    ]
}

/// `HtapSystem::execute_on` returns the pinned engine's side of a dual run
/// exactly — rows, counters, latency — for both engines, across the matrix.
#[test]
fn execute_on_matches_the_dual_run_side() {
    let sys = system();
    for (sql, params) in queries() {
        if !params.is_empty() {
            continue; // system-level API takes literal SQL only
        }
        let dual = sys.run_sql(sql).expect("dual run");
        for engine in [EngineKind::Tp, EngineKind::Ap] {
            let out = sys.execute_on(sql, engine).expect("pinned run");
            let pinned = out.as_pinned().expect("pinned outcome");
            let side = match engine {
                EngineKind::Tp => &dual.tp,
                EngineKind::Ap => &dual.ap,
            };
            assert_eq!(pinned.run.engine, engine);
            assert_eq!(pinned.run.rows, side.rows, "rows diverged: {sql} on {engine:?}");
            assert_eq!(
                pinned.run.counters, side.counters,
                "counters diverged: {sql} on {engine:?}"
            );
            assert_eq!(
                pinned.run.latency_ns, side.latency_ns,
                "latency diverged: {sql} on {engine:?}"
            );
            // rows() accessor agrees across outcome variants.
            assert_eq!(out.rows().expect("rows"), &side.rows[..]);
        }
    }
}

/// Prepared statements under a pinned session: the pin routes every
/// execution (including ones prepared before the pin), results match the
/// corresponding dual side, and unpinning restores dual-run outcomes.
#[test]
fn session_pin_routes_prepared_statements() {
    let session = Session::new(Arc::clone(system()));
    for (sql, params) in queries() {
        let stmt = session.prepare(sql).expect("prepare");
        assert!(stmt.is_query());

        // Baseline dual run through the same prepared statement.
        session.pin_engine(None);
        let dual = stmt.execute(&params).expect("dual");
        let dual = dual.as_query().expect("dual outcome");

        for engine in [EngineKind::Tp, EngineKind::Ap] {
            session.pin_engine(Some(engine));
            assert_eq!(session.engine_pin(), Some(engine));
            let out = stmt.execute(&params).expect("pinned");
            let pinned = out.as_pinned().expect("session pin must route to PinnedQuery");
            let side = match engine {
                EngineKind::Tp => &dual.tp,
                EngineKind::Ap => &dual.ap,
            };
            assert_eq!(pinned.run.engine, engine);
            assert_eq!(pinned.run.rows, side.rows, "rows diverged: {sql} on {engine:?}");
            assert_eq!(
                pinned.run.counters, side.counters,
                "counters diverged: {sql} on {engine:?}"
            );

            // Explicit per-call pinning agrees with the session pin.
            let explicit = stmt.execute_on(engine, &params).expect("execute_on");
            let explicit = explicit.as_pinned().expect("pinned outcome");
            assert_eq!(explicit.run.rows, pinned.run.rows);
            assert_eq!(explicit.run.counters, pinned.run.counters);
        }

        // Unpin: back to dual-run outcomes.
        session.pin_engine(None);
        assert_eq!(session.engine_pin(), None);
        let again = stmt.execute(&params).expect("dual again");
        assert!(again.as_query().is_some(), "unpinned statement must dual-run");
    }
}

/// DML through a pinned session is unaffected (TP-only on every path):
/// same outcome shape, same rows_affected, and the write is visible to
/// both engines afterwards.
#[test]
fn pinned_sessions_write_normally() {
    let sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.0005)));
    let session = Session::new(Arc::clone(&sys));
    session.pin_engine(Some(EngineKind::Ap));

    let out = session
        .execute_sql(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES (940001, 'pinned', 1, '20-000-000-0000', 3.5, 'machinery')",
        )
        .expect("pinned insert");
    match out {
        StatementOutcome::Dml(d) => assert_eq!(d.result.rows_affected, 1),
        other => panic!("DML must stay a Dml outcome under a pin, got {other:?}"),
    }

    // The write is visible on both engines (checked by an unpinned dual
    // run, whose agreement check would catch a divergence).
    session.pin_engine(None);
    let check = session
        .execute_sql("SELECT c_name FROM customer WHERE c_custkey = 940001")
        .expect("dual read-back");
    let q = check.as_query().expect("query");
    assert_eq!(q.tp.rows, vec![vec![Value::Str("pinned".into())]]);
}

/// Pinned execution skips the other engine: an AP-pinned aggregate does no
/// TP row-store scanning and vice versa (the counters prove the other
/// engine never ran, which is the whole point of pinning).
#[test]
fn pinning_skips_the_other_engines_work() {
    let sys = system();
    let sql = "SELECT c_nationkey, COUNT(*) FROM customer GROUP BY c_nationkey";
    let dual = sys.run_sql(sql).expect("dual");
    assert!(dual.tp.counters.rows_scanned > 0, "TP side scans rows");
    assert!(dual.ap.counters.cells_scanned > 0, "AP side scans cells");

    let tp = sys.execute_on(sql, EngineKind::Tp).expect("tp pinned");
    let tp = tp.as_pinned().expect("pinned");
    assert_eq!(tp.run.counters.cells_scanned, 0, "TP pin must not touch the column store");

    let ap = sys.execute_on(sql, EngineKind::Ap).expect("ap pinned");
    let ap = ap.as_pinned().expect("pinned");
    assert_eq!(ap.run.counters.rows_scanned, 0, "AP pin must not touch the row store");
}
