//! MVCC snapshot-read properties over the versioned delta store.
//!
//! The central property: a snapshot pinned at epoch E on a system that kept
//! writing is **physically indistinguishable** from a system that stopped at
//! E — same rows AND same `WorkCounters` (base/delta split, encodings, zone
//! maps, pruning), on all three executors (row interpreter, serial batch,
//! parallel batch). The committed-prefix oracle is a second system driven in
//! lockstep one operation behind, compared after every step, so every pinned
//! epoch of the tape is checked.
//!
//! Companions: a threaded stress test (writer threads stream durable-path
//! inserts while reader threads pin snapshots and check prefix-consistency
//! per writer), and a crash case proving per-row begin/end versions survive
//! an unclean kill + WAL replay byte-identically.

use proptest::prelude::*;
use qpe_htap::engine::{EngineKind, HtapSystem};
use qpe_htap::exec::{execute_parallel, execute_scalar, execute_vectorized, ExecConfig, Row};
use qpe_htap::tpch::TpchConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Unique temp directory, removed on drop.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "qpe_mvcc_{tag}_{}_{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TmpDir(path)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> TpchConfig {
    TpchConfig::with_scale(0.0005)
}

/// One randomized operation against both systems.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SimOp {
    Insert,
    Update,
    Delete,
    Compact,
}

fn decode(code: u8) -> SimOp {
    match code % 7 {
        0..=2 => SimOp::Insert,
        3 | 4 => SimOp::Update,
        5 => SimOp::Delete,
        _ => SimOp::Compact,
    }
}

/// Applies one op; determinism makes the live system and the oracle fail
/// identically on e.g. duplicate keys.
fn apply(sys: &HtapSystem, op: SimOp, seed: u64, i: usize) {
    let salt = seed.wrapping_mul(31).wrapping_add(i as u64);
    match op {
        SimOp::Insert => {
            let key = 1_000_000 + salt % 100_000;
            let seg = ["machinery", "building", "household"][(salt % 3) as usize];
            let _ = sys.execute_statement(&format!(
                "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                 c_mktsegment) VALUES ({key}, 'customer#{key}', {}, '20-000-000-0000', \
                 {}.25, '{seg}')",
                salt % 25,
                salt % 5000
            ));
        }
        SimOp::Update => {
            let lo = 1 + salt % 70;
            let _ = sys.execute_statement(&format!(
                "UPDATE customer SET c_acctbal = c_acctbal + {}, c_mktsegment = 'machinery' \
                 WHERE c_custkey BETWEEN {lo} AND {}",
                salt % 100,
                lo + 5
            ));
        }
        SimOp::Delete => {
            let lo = 1 + salt % 70;
            let _ = sys.execute_statement(&format!(
                "DELETE FROM customer WHERE c_custkey BETWEEN {lo} AND {}",
                lo + 2
            ));
        }
        SimOp::Compact => {
            let _ = sys.compact("customer");
        }
    }
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// The two probe queries every pinned epoch is checked with: a full scan
/// (visibility itself) and a filtered aggregate (pruning + kernels over the
/// snapshot's physical layout).
const PROBES: [&str; 2] = [
    "SELECT * FROM customer",
    "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_custkey >= 500",
];

/// Asserts one pinned snapshot equals the oracle's pinned head: identical
/// rows and counters through the snapshot's own executor, then through the
/// scalar / serial-batch / parallel executors run directly on the pinned
/// database.
fn assert_snapshot_equals_oracle(
    snap: &qpe_htap::engine::Snapshot,
    oracle: &qpe_htap::engine::Snapshot,
    label: &str,
) {
    assert_eq!(
        snap.epoch("customer"),
        oracle.epoch("customer"),
        "{label}: pinned epochs diverge"
    );
    for probe in PROBES {
        let (want_rows, want_c) = oracle.run_sql(probe).expect("oracle probe");
        let (got_rows, got_c) = snap.run_sql(probe).expect("snapshot probe");
        assert_eq!(sorted(got_rows), sorted(want_rows.clone()), "{label}: rows for {probe:?}");
        assert_eq!(got_c, want_c, "{label}: counters for {probe:?}");

        // All three executors over the pinned database agree with it.
        let (plan, bound) = snap.plan(probe).expect("snapshot plan");
        let db = snap.database();
        let (s_rows, s_c) = execute_scalar(&plan, &bound, db, EngineKind::Ap).expect("scalar");
        assert_eq!(sorted(s_rows), sorted(want_rows.clone()), "{label}: scalar rows");
        assert_eq!(s_c, want_c, "{label}: scalar counters");
        let (b_rows, b_c) = execute_vectorized(&plan, &bound, db).expect("batch");
        assert_eq!(sorted(b_rows), sorted(want_rows.clone()), "{label}: batch rows");
        assert_eq!(b_c, want_c, "{label}: batch counters");
        let cfg = ExecConfig { threads: 2, morsel_rows: 48, ..ExecConfig::serial() };
        let (p_rows, p_c) = execute_parallel(&plan, &bound, db, &cfg).expect("parallel");
        assert_eq!(sorted(p_rows), sorted(want_rows), "{label}: parallel rows");
        assert_eq!(p_c, want_c, "{label}: parallel counters");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The sweep: random DML/compact tape. The live system runs one op
    /// ahead and pins a snapshot after every op; the oracle trails one op
    /// behind, so each pinned snapshot is compared against a system whose
    /// *head* is that epoch — while the live system has already moved on
    /// (the snapshot reads versioned data a concurrent writer is past).
    #[test]
    fn pinned_snapshots_equal_the_committed_prefix_oracle(
        codes in prop::collection::vec(any::<u8>(), 1..10usize),
        seed in any::<u64>(),
    ) {
        let cfg = config();
        let sys = HtapSystem::new(&cfg);
        let oracle = HtapSystem::new(&cfg);

        // Epoch 0: both untouched.
        assert_snapshot_equals_oracle(&sys.pin_snapshot(), &oracle.pin_snapshot(), "pristine");

        let mut pinned = Vec::new();
        for (i, &code) in codes.iter().enumerate() {
            apply(&sys, decode(code), seed, i);
            pinned.push((i, sys.pin_snapshot()));
        }
        // Replay the tape on the oracle; after its op k it sits exactly at
        // the live system's pin point k.
        for (i, &code) in codes.iter().enumerate() {
            apply(&oracle, decode(code), seed, i);
            let (k, snap) = &pinned[i];
            assert_snapshot_equals_oracle(
                snap,
                &oracle.pin_snapshot(),
                &format!("after op {k} ({:?})", decode(code)),
            );
        }
    }
}

/// Threaded stress: writer threads stream inserts while reader threads pin
/// snapshots mid-flight. Each reader checks (a) snapshot stability — the
/// same snapshot answers identically while writers churn — and (b) the
/// committed-prefix property per writer: because each writer inserts its
/// keys in index order, the keys of writer `w` visible in any snapshot must
/// be a contiguous prefix of that writer's sequence.
#[test]
fn concurrent_writers_and_snapshot_readers() {
    const WRITERS: u64 = 3;
    const READERS: usize = 3;
    const PER_WRITER: u64 = 40;
    let sys = Arc::new(HtapSystem::new(&config()));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let sys = Arc::clone(&sys);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let key = 3_000_000 + w * 100_000 + i;
                    sys.execute_statement(&format!(
                        "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, \
                         c_acctbal, c_mktsegment) VALUES ({key}, 'w{w}#{i}', 1, \
                         '20-000-000-0000', 10.25, 'machinery')"
                    ))
                    .expect("insert commits");
                }
            });
        }
        for r in 0..READERS {
            let sys = Arc::clone(&sys);
            scope.spawn(move || {
                let probe = "SELECT c_custkey FROM customer WHERE c_custkey >= 3000000";
                let mut last_total = 0usize;
                for _ in 0..20 {
                    let snap = sys.pin_snapshot();
                    let (rows, counters) = snap.run_sql(probe).expect("snapshot read");
                    // (a) Stability: the pinned snapshot's answer does not
                    // move while writers keep committing.
                    let (again, again_c) = snap.run_sql(probe).expect("re-read");
                    assert_eq!(rows, again, "reader {r}: snapshot answer moved");
                    assert_eq!(counters, again_c, "reader {r}: snapshot counters moved");
                    // (b) Prefix-consistency per writer.
                    let mut seen: Vec<Vec<u64>> = vec![Vec::new(); WRITERS as usize];
                    for row in &rows {
                        let key = row[0].as_int().expect("int key") as u64 - 3_000_000;
                        seen[(key / 100_000) as usize].push(key % 100_000);
                    }
                    for (w, keys) in seen.iter_mut().enumerate() {
                        keys.sort_unstable();
                        let want: Vec<u64> = (0..keys.len() as u64).collect();
                        assert_eq!(
                            keys, &want,
                            "reader {r}: writer {w}'s visible keys are not a prefix"
                        );
                    }
                    // Total visible rows never decreases across later pins
                    // (insert-only workload).
                    assert!(
                        rows.len() >= last_total,
                        "reader {r}: snapshot went backwards ({} < {last_total})",
                        rows.len()
                    );
                    last_total = rows.len();
                }
            });
        }
    });

    let out = sys
        .run_sql("SELECT COUNT(*) FROM customer WHERE c_custkey >= 3000000")
        .expect("final count");
    assert_eq!(
        out.tp.rows[0][0].as_int().unwrap(),
        (WRITERS * PER_WRITER) as i64,
        "every acknowledged insert is visible at the head"
    );
}

/// Begin/end row versions survive an unclean kill + WAL replay
/// byte-identically: replay reassigns stamps deterministically in commit
/// order, so a recovered snapshot boundary is exactly the pre-crash one.
#[test]
fn row_versions_survive_replay_byte_identically() {
    let dir = TmpDir::new("versions");
    let cfg = config();
    let sys = HtapSystem::open(&dir.0, &cfg).expect("open");
    for i in 0..14 {
        // Mix of inserts / updates / deletes / compacts, including a
        // compact mid-tape so history_floor moves.
        apply(&sys, decode((i * 5 + 2) as u8), 97, i as usize);
    }
    let (begin_before, end_before, version_before, floor_before) = {
        let db = sys.database();
        let cols = &db.stored_table("customer").expect("customer").cols;
        let (b, e) = cols.row_versions();
        (b.to_vec(), e.to_vec(), cols.version(), cols.history_floor())
    };
    drop(sys); // unclean: no close(), recovery replays the WAL tail

    let recovered = HtapSystem::open(&dir.0, &cfg).expect("recover");
    let db = recovered.database();
    let cols = &db.stored_table("customer").expect("customer").cols;
    let (b, e) = cols.row_versions();
    assert_eq!(cols.version(), version_before, "visibility epoch diverged");
    assert_eq!(cols.history_floor(), floor_before, "history floor diverged");
    assert_eq!(b, &begin_before[..], "begin versions diverged after replay");
    assert_eq!(e, &end_before[..], "end versions diverged after replay");
}

/// MVCC snapshot reads on vs off: identical rows and counters for the same
/// statement stream (`QPE_MVCC_READS=0` falls back to executing the AP side
/// under the read guard — same visibility, same physical plan).
#[test]
fn mvcc_toggle_is_observationally_equivalent() {
    let cfg = config();
    // Set both sides explicitly: CI sweeps this suite with QPE_MVCC_READS
    // overriding the ambient default in either direction.
    let mut on = HtapSystem::new(&cfg);
    on.set_mvcc_reads(true);
    let mut off = HtapSystem::new(&cfg);
    off.set_mvcc_reads(false);
    assert!(on.mvcc_reads() && !off.mvcc_reads());
    for i in 0..12 {
        apply(&on, decode((i * 3 + 1) as u8), 55, i as usize);
        apply(&off, decode((i * 3 + 1) as u8), 55, i as usize);
    }
    for probe in PROBES {
        let a = on.run_sql(probe).expect("mvcc on");
        let b = off.run_sql(probe).expect("mvcc off");
        assert_eq!(a.ap.rows, b.ap.rows, "rows diverge for {probe:?}");
        assert_eq!(a.ap.counters, b.ap.counters, "counters diverge for {probe:?}");
        assert_eq!(a.tp.rows, b.tp.rows, "TP rows diverge for {probe:?}");
    }
}
