//! Cross-crate integration tests: the full paper pipeline, end to end.

use qpe_core::explainer::{Explainer, PipelineConfig};
use qpe_core::workload::WorkloadGenerator;
use qpe_htap::engine::EngineKind;
use qpe_htap::tpch::TpchConfig;
use qpe_llm::grader::Grade;
use qpe_treecnn::train::TrainerConfig;

fn pipeline() -> Explainer {
    Explainer::build(PipelineConfig {
        tpch: TpchConfig::with_scale(0.003),
        n_train: 36,
        kb_size: 14,
        trainer: TrainerConfig {
            epochs: 20,
            ..TrainerConfig::default()
        },
        ..Default::default()
    })
    .expect("pipeline builds")
}

#[test]
fn example_1_full_path_produces_grounded_explanation() {
    let mut explainer = pipeline();
    // Example 1's AP win needs join volumes that only appear at a larger
    // scale factor than the fast test pipeline uses; run the query on an
    // experiment-sized system and explain its outcome with the pipeline
    // (plan shapes, not data scale, drive retrieval).
    let big = qpe_htap::engine::HtapSystem::new(&TpchConfig::with_scale(0.01));
    // Seed the KB with an expert-annotated cousin query from the same
    // family (the paper's workflow: historical queries with expert
    // explanations make future similar queries explainable).
    let cousin = big
        .run_sql(
            "SELECT COUNT(*) FROM customer, nation, orders \
             WHERE c_mktsegment = 'building' AND n_name = 'kenya' \
             AND o_orderstatus = 'f' \
             AND o_custkey = c_custkey AND n_nationkey = c_nationkey",
        )
        .expect("cousin runs");
    explainer.add_expert_correction(&cousin);

    explainer.set_top_k(5);
    let sql = WorkloadGenerator::example_1();
    let outcome = big.run_sql(sql).expect("example 1 runs");
    assert_eq!(outcome.winner(), EngineKind::Ap, "AP must win Example 1");

    let report = explainer.explain_outcome(
        &outcome,
        &["An additional index has been created on the c_phone column.".to_string()],
    );
    // The prompt must carry the paper's guardrails and sections.
    let text = report.prompt.render();
    assert!(text.contains("not allowed to compare the cost estimates"));
    assert!(text.contains("QUESTION:"));
    assert!(text.contains("new execution result: AP is faster"));

    // The output must be usable (the KB was built from the same workload
    // family) and correctly attributed.
    let grade = explainer.grade(&outcome, &report.output);
    assert!(
        matches!(grade, Grade::Accurate | Grade::Imprecise),
        "grade {grade:?}, output: {}",
        report.output.text
    );
    assert_eq!(report.output.claimed_winner, Some(EngineKind::Ap));
}

#[test]
fn explanation_reports_are_deterministic() {
    let explainer = pipeline();
    let sql = "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey";
    let outcome = explainer.system().run_sql(sql).expect("runs");
    let a = explainer.explain_outcome(&outcome, &[]);
    let b = explainer.explain_outcome(&outcome, &[]);
    assert_eq!(a.output.text, b.output.text);
    assert_eq!(a.retrieved_ids, b.retrieved_ids);
    // wall-clock fields may differ; semantic fields must not
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.output.cited, b.output.cited);
}

#[test]
fn two_pipelines_from_same_config_agree() {
    let a = pipeline();
    let b = pipeline();
    let sql = "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'";
    let oa = a.system().run_sql(sql).expect("runs");
    let ob = b.system().run_sql(sql).expect("runs");
    assert_eq!(oa.tp.latency_ns, ob.tp.latency_ns, "latency model is deterministic");
    let ra = a.explain_outcome(&oa, &[]);
    let rb = b.explain_outcome(&ob, &[]);
    assert_eq!(ra.output.text, rb.output.text);
}

#[test]
fn kb_growth_via_corrections_changes_retrieval() {
    let mut explainer = pipeline();
    // A query family the small KB may not cover.
    let sql = "SELECT COUNT(*) FROM supplier, nation \
               WHERE s_nationkey = n_nationkey AND n_name = 'egypt' AND s_acctbal > 0";
    let outcome = explainer.system().run_sql(sql).expect("runs");
    let before_kb = explainer.kb().len();
    let id = explainer.add_expert_correction(&outcome);
    assert_eq!(explainer.kb().len(), before_kb + 1);
    // After insertion, the exact same query must retrieve its own entry as
    // the nearest neighbor (distance 0 under the same embedding).
    let report = explainer.explain_outcome(&outcome, &[]);
    assert!(
        report.retrieved_ids.contains(&id),
        "own correction not retrieved: {:?}",
        report.retrieved_ids
    );
    let grade = explainer.grade(&outcome, &report.output);
    assert!(matches!(grade, Grade::Accurate | Grade::Imprecise));
}

#[test]
fn router_and_measured_winner_agree_on_extremes() {
    let explainer = pipeline();
    // Clear-cut cases the router must get right after training.
    let clear_tp = "SELECT c_name FROM customer WHERE c_custkey = 5";
    let clear_ap = "SELECT COUNT(*) FROM customer, orders, lineitem \
                    WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey";
    for (sql, expected) in [(clear_tp, EngineKind::Tp), (clear_ap, EngineKind::Ap)] {
        let outcome = explainer.system().run_sql(sql).expect("runs");
        assert_eq!(outcome.winner(), expected, "measured winner for {sql}");
    }
}

#[test]
fn prompt_token_budget_is_bounded() {
    let explainer = pipeline();
    let sql = WorkloadGenerator::example_1();
    let outcome = explainer.system().run_sql(sql).expect("runs");
    let report = explainer.explain_outcome(&outcome, &[]);
    let tokens = report.prompt.token_count();
    // Table-I prose + 2 knowledge entries + question: must stay well under
    // typical context limits even with plan JSON inlined.
    assert!(tokens > 200, "prompt suspiciously small: {tokens}");
    assert!(tokens < 20_000, "prompt suspiciously large: {tokens}");
}
