//! Property-based write-path equivalence: after ANY interleaving of
//! INSERT/UPDATE/DELETE/compact, the three read paths —
//!
//! * the TP row-store scan (tombstone-skipping row interpreter),
//! * the AP delta-aware scan (vectorized, base zero-copy + delta via
//!   selection vectors),
//! * the AP *morsel-parallel* scan (same kernels fanned out over worker
//!   threads, morsels straddling the base/delta split), and
//! * the AP post-compaction scan (clean zero-copy fast path)
//!
//! — must return byte-identical rows, and the scalar ≡ serial batch ≡
//! parallel batch executor invariants from `tests/engine_equivalence.rs`
//! must keep holding on dirty tables exactly as they do on clean ones.

use proptest::prelude::*;
use qpe_htap::engine::{EngineKind, HtapSystem};
use qpe_htap::exec::{
    execute_parallel, execute_scalar, execute_vectorized, vector, ExecConfig, Row, WorkCounters,
};
use qpe_htap::opt::{ap, PlannerCtx};
use qpe_htap::tpch::TpchConfig;
use qpe_htap::PlanNode;
use qpe_sql::catalog::Catalog;

/// One randomized write operation against the `customer` table.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert,
    Update,
    Delete,
    Compact,
}

fn decode(code: u8) -> Op {
    match code % 4 {
        0 => Op::Insert,
        1 => Op::Update,
        2 => Op::Delete,
        _ => Op::Compact,
    }
}

fn fresh_system() -> HtapSystem {
    HtapSystem::new(&TpchConfig::with_scale(0.0005))
}

/// Applies one op; parameters are derived deterministically from `seed` and
/// the op's position so every proptest case is reproducible.
fn apply(sys: &mut HtapSystem, op: Op, seed: u64, i: usize) {
    let salt = seed.wrapping_mul(31).wrapping_add(i as u64);
    match op {
        Op::Insert => {
            let key = 1_000_000 + salt % 100_000;
            let seg = ["machinery", "building", "household"][(salt % 3) as usize];
            // duplicate keys across ops are possible -> constraint errors
            // are legal outcomes, never storage corruption
            let _ = sys.execute_statement(&format!(
                "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                 c_mktsegment) VALUES ({key}, 'customer#{key}', {}, '20-000-000-0000', \
                 {}.25, '{seg}')",
                salt % 25,
                salt % 5000
            ));
        }
        Op::Update => {
            let lo = 1 + salt % 70;
            sys.execute_statement(&format!(
                "UPDATE customer SET c_acctbal = c_acctbal + {}, c_mktsegment = 'machinery' \
                 WHERE c_custkey BETWEEN {lo} AND {}",
                salt % 100,
                lo + 5
            ))
            .expect("update runs");
        }
        Op::Delete => {
            let lo = 1 + salt % 70;
            sys.execute_statement(&format!(
                "DELETE FROM customer WHERE c_custkey BETWEEN {lo} AND {}",
                lo + 2
            ))
            .expect("delete runs");
        }
        Op::Compact => {
            assert!(sys.compact("customer"));
        }
    }
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// Full-table scan through one engine, returning its rows.
fn scan_rows(sys: &HtapSystem, engine: EngineKind) -> Vec<Row> {
    let bound = sys.bind("SELECT * FROM customer").expect("binds");
    sys.run_engine(&bound, engine).expect("scan runs").rows
}

/// Asserts the AP plan produces identical rows AND counters on the row
/// interpreter, the serial batch executor, and the morsel-parallel executor
/// at 2 and 4 threads — the engine-equivalence contract, here exercised
/// against dirty (delta-bearing, tombstone-bearing) tables whose morsels
/// straddle the base/delta split. The tiny morsel size forces real splits
/// at test scale.
fn assert_executor_equivalence(sys: &HtapSystem, sql: &str) {
    let db = sys.database();
    let bound = sys.bind(sql).expect("binds");
    let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
    let plan = ap::plan(&ctx).expect("ap plan");
    assert!(vector::supported(&plan), "AP plan outside batch vocabulary");
    let (srows, sc) = execute_scalar(&plan, &bound, &db, EngineKind::Ap).expect("scalar");
    let (brows, bc) = execute_vectorized(&plan, &bound, &db).expect("vectorized");
    assert_eq!(srows, brows, "executor rows diverged for {sql}");
    assert_eq!(sc, bc, "executor counters diverged for {sql}");
    for threads in [2usize, 4] {
        let cfg = ExecConfig { threads, morsel_rows: 16, ..ExecConfig::serial() };
        let (prows, pc) = execute_parallel(&plan, &bound, &db, &cfg).expect("parallel");
        assert_eq!(brows, prows, "parallel rows diverged at {threads} threads for {sql}");
        assert_eq!(bc, pc, "parallel counters diverged at {threads} threads for {sql}");
    }
}

/// Full-table parallel AP scan over the (possibly dirty) table, returning
/// its rows — the delta + tombstone read path under morsel splits.
fn parallel_scan_rows(sys: &HtapSystem, threads: usize) -> Vec<Row> {
    let db = sys.database();
    let bound = sys.bind("SELECT * FROM customer").expect("binds");
    let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
    let plan = ap::plan(&ctx).expect("ap plan");
    let cfg = ExecConfig { threads, morsel_rows: 16, ..ExecConfig::serial() };
    execute_parallel(&plan, &bound, &db, &cfg).expect("parallel scan").0
}

/// Runs one AP plan on all three executors, asserting rows and counters are
/// identical, and returns the (shared) rows and counters.
fn run_all_executors(
    sys: &HtapSystem,
    plan: &PlanNode,
    bound: &qpe_sql::binder::BoundQuery,
    label: &str,
) -> (Vec<Row>, WorkCounters) {
    let db = sys.database();
    assert!(vector::supported(plan), "AP plan outside batch vocabulary");
    let (srows, sc) = execute_scalar(plan, bound, &db, EngineKind::Ap).expect("scalar");
    let (brows, bc) = execute_vectorized(plan, bound, &db).expect("vectorized");
    assert_eq!(srows, brows, "{label}: scalar vs batch rows");
    assert_eq!(sc, bc, "{label}: scalar vs batch counters");
    for threads in [2usize, 4] {
        let cfg = ExecConfig { threads, morsel_rows: 16, ..ExecConfig::serial() };
        let (prows, pc) = execute_parallel(plan, bound, &db, &cfg).expect("parallel");
        assert_eq!(brows, prows, "{label}: parallel rows at {threads} threads");
        assert_eq!(bc, pc, "{label}: parallel counters at {threads} threads");
    }
    (brows, bc)
}

/// The zone-map safety contract on one query: the pruned AP plan (scan
/// predicates pushed down) and the unpruned plan return byte-identical rows
/// on every executor, both match the TP row-store scan, and pruning only
/// ever *reduces* cells touched.
fn assert_pruning_equivalence(sys: &HtapSystem, sql: &str) {
    let db = sys.database();
    let bound = sys.bind(sql).expect("binds");
    let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
    let pruned_plan = ap::plan(&ctx).expect("pruned plan");
    let ctx_off = PlannerCtx::new(&bound, db.stats(), db.catalog()).without_pushdown();
    let plain_plan = ap::plan(&ctx_off).expect("plain plan");

    let (pruned_rows, pruned_c) = run_all_executors(sys, &pruned_plan, &bound, "pruned");
    let (plain_rows, plain_c) = run_all_executors(sys, &plain_plan, &bound, "unpruned");
    assert_eq!(pruned_rows, plain_rows, "pruning changed results for {sql}");
    assert!(
        pruned_c.cells_scanned <= plain_c.cells_scanned,
        "pruning increased cells for {sql}: {} vs {}",
        pruned_c.cells_scanned,
        plain_c.cells_scanned
    );
    assert_eq!(plain_c.blocks_checked, 0, "unpruned plan consulted zones");

    let tp_rows = sorted(sys.run_engine(&bound, EngineKind::Tp).expect("tp runs").rows);
    let ap_rows = sorted(pruned_rows);
    // Floats compare with a relative tolerance: the engines fold SUM/AVG in
    // different orders (same rule the system's own agreement check uses).
    let approx = |a: &qpe_sql::value::Value, b: &qpe_sql::value::Value| match (a, b) {
        (qpe_sql::value::Value::Float(x), qpe_sql::value::Value::Float(y)) => {
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
        }
        _ => a == b,
    };
    assert!(
        tp_rows.len() == ap_rows.len()
            && tp_rows.iter().zip(&ap_rows).all(|(r1, r2)| {
                r1.len() == r2.len() && r1.iter().zip(r2).all(|(u, v)| approx(u, v))
            }),
        "pruned AP scan diverged from TP for {sql}: {tp_rows:?} vs {ap_rows:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 36,
        ..ProptestConfig::default()
    })]

    /// The acceptance-criteria sweep: ≥32 random interleavings of
    /// INSERT/UPDATE/DELETE/compact followed by scans on every read path.
    #[test]
    fn dml_interleavings_keep_all_read_paths_identical(
        seed in 0u64..10_000,
        codes in proptest::collection::vec(0u8..4, 1..10),
    ) {
        let mut sys = fresh_system();
        for (i, &c) in codes.iter().enumerate() {
            apply(&mut sys, decode(c), seed, i);
        }

        // 1. TP row-store scan == AP delta-aware scan, byte for byte.
        let tp_rows = sorted(scan_rows(&sys, EngineKind::Tp));
        let ap_rows = sorted(scan_rows(&sys, EngineKind::Ap));
        prop_assert_eq!(&tp_rows, &ap_rows, "TP vs AP pre-compaction");

        // 1b. The *parallel* AP scan agrees with the TP scan on the dirty
        //     table too — delta rows and tombstones under morsel splits.
        let par_rows = sorted(parallel_scan_rows(&sys, 4));
        prop_assert_eq!(&tp_rows, &par_rows, "TP vs parallel AP pre-compaction");

        // 2. Scalar and batch executors agree on the dirty table
        //    (engine_equivalence invariants extended to the write path).
        assert_executor_equivalence(&sys, "SELECT * FROM customer");
        assert_executor_equivalence(
            &sys,
            "SELECT c_mktsegment, COUNT(*), SUM(c_acctbal) FROM customer \
             GROUP BY c_mktsegment ORDER BY c_mktsegment",
        );

        // 3. Dual-engine pipeline keeps its internal agreement check green
        //    on filtered/aggregated reads over the written table.
        let out = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .expect("engines agree on dirty table");
        prop_assert!(out.speedup() >= 1.0);

        // 4. Compaction changes the physical layout, never the answer.
        sys.compact("customer");
        prop_assert_eq!(sys.freshness("customer").unwrap().delta_rows, 0);
        let tp_after = sorted(scan_rows(&sys, EngineKind::Tp));
        let ap_after = sorted(scan_rows(&sys, EngineKind::Ap));
        prop_assert_eq!(&tp_after, &ap_after, "TP vs AP post-compaction");
        prop_assert_eq!(&tp_rows, &tp_after, "compaction changed results");
        assert_executor_equivalence(&sys, "SELECT * FROM customer");
    }

    /// Row counts reported by storage, statistics and the catalog stay
    /// mutually consistent through arbitrary write sequences.
    #[test]
    fn counts_stay_consistent_across_writes(
        seed in 0u64..10_000,
        codes in proptest::collection::vec(0u8..4, 1..8),
    ) {
        let mut sys = fresh_system();
        for (i, &c) in codes.iter().enumerate() {
            apply(&mut sys, decode(c), seed, i);
        }
        let stored = sys.database().stored_table("customer").unwrap().row_count() as u64;
        let stats = sys.database().stats().table("customer").unwrap().row_count;
        let catalog = sys.database().catalog().table("customer").unwrap().row_count;
        let counted = sys
            .run_sql("SELECT COUNT(*) FROM customer")
            .unwrap()
            .tp
            .rows[0][0]
            .as_int()
            .unwrap() as u64;
        prop_assert_eq!(stored, counted);
        prop_assert_eq!(stats, counted);
        prop_assert_eq!(catalog, counted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Zone-map pruning never changes results: after any interleaving of
    /// INSERT/UPDATE/DELETE/compact (with 8-row blocks so the test-scale
    /// table actually splits into many prunable blocks), pruned scan ≡
    /// unpruned scan ≡ TP scan on selective, dictionary-equality and
    /// range-aggregate queries — rows identical everywhere, counters
    /// identical across executors within each plan, and pre- vs
    /// post-compaction answers identical too.
    #[test]
    fn zone_map_pruning_never_changes_results(
        seed in 0u64..10_000,
        codes in proptest::collection::vec(0u8..4, 1..10),
    ) {
        let mut sys = fresh_system();
        assert!(sys.database_mut().set_zone_block_rows("customer", 8));
        for (i, &c) in codes.iter().enumerate() {
            apply(&mut sys, decode(c), seed, i);
        }
        let queries = [
            // Range on the sequential PK: the zone maps' best case.
            "SELECT c_custkey, c_name, c_acctbal FROM customer \
             WHERE c_custkey BETWEEN 20 AND 40",
            // Equality on the dictionary-encoded segment column: skips
            // blocks whose min/max excludes the literal AND exercises the
            // code-to-code comparison kernel on surviving blocks.
            "SELECT c_custkey, c_mktsegment FROM customer \
             WHERE c_mktsegment = 'machinery'",
            // Range aggregate (pushed conjunct under an aggregate).
            "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_custkey > 50",
        ];
        for sql in queries {
            assert_pruning_equivalence(&sys, sql);
        }
        // Compaction rebuilds blocks, encodings and zone headers; answers
        // must not move.
        let before: Vec<Vec<Row>> = queries
            .iter()
            .map(|sql| sorted(sys.run_engine(&sys.bind(sql).unwrap(), EngineKind::Ap).unwrap().rows))
            .collect();
        sys.compact("customer");
        for (sql, rows) in queries.iter().zip(before) {
            assert_pruning_equivalence(&sys, sql);
            let after = sorted(
                sys.run_engine(&sys.bind(sql).unwrap(), EngineKind::Ap).unwrap().rows,
            );
            prop_assert_eq!(rows, after, "compaction changed {}", sql);
        }
    }
}

/// Forced-encoding matrix on a *dirty* table: after a fixed DML
/// interleaving, every encoding policy × bloom-filter setting keeps all
/// read paths identical — TP ≡ AP serial ≡ AP parallel rows, executor
/// counters identical, pruned ≡ unpruned — and compaction (which folds the
/// delta into the forced base representation) changes nothing.
#[test]
fn forced_encodings_on_dirty_tables_keep_read_paths_identical() {
    use qpe_htap::storage::col_store::EncodingPolicy;
    let policies = [
        EncodingPolicy::Plain,
        EncodingPolicy::Dict,
        EncodingPolicy::Rle,
        EncodingPolicy::For,
    ];
    for policy in policies {
        let mut sys = fresh_system();
        assert!(sys.database_mut().set_zone_block_rows("customer", 8));
        assert!(sys.database_mut().set_encoding_policy("customer", policy));
        for (i, &c) in [0u8, 1, 2, 0, 3, 1, 0, 2].iter().enumerate() {
            apply(&mut sys, decode(c), 4242, i);
        }
        for blooms in [true, false] {
            assert!(sys.database_mut().set_bloom_filters("customer", blooms));
            let tp = sorted(scan_rows(&sys, EngineKind::Tp));
            let ap = sorted(scan_rows(&sys, EngineKind::Ap));
            assert_eq!(tp, ap, "{policy:?}/blooms={blooms}: TP vs AP scan");
            let par = sorted(parallel_scan_rows(&sys, 4));
            assert_eq!(tp, par, "{policy:?}/blooms={blooms}: TP vs parallel AP");
            assert_executor_equivalence(&sys, "SELECT * FROM customer");
            for sql in [
                "SELECT c_custkey, c_mktsegment FROM customer \
                 WHERE c_mktsegment = 'machinery'",
                "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_custkey > 50",
            ] {
                assert_pruning_equivalence(&sys, sql);
            }
        }
        // Compaction folds the delta into the forced representation; the
        // policy survives and answers stay put.
        let before = sorted(scan_rows(&sys, EngineKind::Ap));
        sys.compact("customer");
        assert_eq!(
            sys.database().stored_table("customer").unwrap().cols.encoding_policy(),
            policy,
            "compaction dropped the forced policy"
        );
        let after = sorted(scan_rows(&sys, EngineKind::Ap));
        assert_eq!(before, after, "{policy:?}: compaction changed answers");
        assert_executor_equivalence(&sys, "SELECT * FROM customer");
    }
}

/// Block stats go stale in the conservative direction only, and `compact()`
/// rebuilds them exactly: relocating a row's value outside every old block
/// range keeps it visible pre-compaction (delta rows are never pruned), and
/// after compaction the rebuilt headers both cover the new value and prune
/// tighter than the stale ones could.
#[test]
fn compact_rebuilds_stale_block_stats() {
    let mut sys = fresh_system();
    assert!(sys.database_mut().set_zone_block_rows("customer", 8));
    // Relocate one row far outside the original key range (75 rows seeded).
    sys.execute_statement("UPDATE customer SET c_custkey = 900000 WHERE c_custkey = 10")
        .expect("update runs");
    let probe = "SELECT c_custkey FROM customer WHERE c_custkey = 900000";

    // Pre-compaction: no base block covers 900000 — every one is pruned —
    // but the relocated row lives in the unprunable delta and must be found.
    let bound = sys.bind(probe).unwrap();
    let db = sys.database();
    let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
    let plan = ap::plan(&ctx).unwrap();
    let (rows, c) = execute_vectorized(&plan, &bound, &db).expect("runs");
    assert_eq!(rows.len(), 1, "delta row must survive full base pruning");
    assert_eq!(c.blocks_pruned, c.blocks_checked, "stale headers refute every base block");
    // Shadowing below does not drop this read guard — release it before the
    // write-locking compact().
    drop(db);

    // Post-compaction: the header of the merged table's last block now
    // covers the relocated key (stale stats rebuilt), pruning still leaves
    // exactly the covering block, and the answer is unchanged.
    sys.compact("customer");
    let guard = sys.database();
    let cols = &guard.stored_table("customer").unwrap().cols;
    let max_of_last = cols.zones(0).last().unwrap().max.clone();
    drop(guard);
    assert_eq!(max_of_last, Some(qpe_sql::value::Value::Int(900000)));
    let bound = sys.bind(probe).unwrap();
    let db = sys.database();
    let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
    let plan = ap::plan(&ctx).unwrap();
    let (rows, c) = execute_vectorized(&plan, &bound, &db).expect("runs");
    assert_eq!(rows.len(), 1);
    assert!(c.blocks_pruned > 0, "rebuilt headers prune the non-covering blocks");
    assert!(c.blocks_pruned < c.blocks_checked, "the covering block survives");
    assert_pruning_equivalence(&sys, probe);
}
