//! Shape tests: small-scale versions of the paper's headline claims. The
//! experiment binaries reproduce the full numbers; these tests pin the
//! qualitative relationships so regressions are caught by `cargo test`.

use qpe_core::eval::{dbgpt_eval, evaluate, router_accuracy};
use qpe_core::explainer::{Explainer, PipelineConfig};
use qpe_core::participant::{run_study, StudyConfig};
use qpe_core::workload::{WorkloadConfig, WorkloadGenerator};
use qpe_htap::tpch::TpchConfig;
use qpe_treecnn::train::TrainerConfig;

fn pipeline() -> Explainer {
    Explainer::build(PipelineConfig {
        tpch: TpchConfig::with_scale(0.003),
        n_train: 40,
        kb_size: 16,
        trainer: TrainerConfig {
            epochs: 25,
            ..TrainerConfig::default()
        },
        ..Default::default()
    })
    .expect("pipeline builds")
}

fn test_set(n: usize) -> Vec<String> {
    WorkloadGenerator::new(WorkloadConfig {
        seed: 777,
        ..Default::default()
    })
    .generate(n)
}

/// §VI-B: a large majority of explanations are accurate; the rest are
/// imprecise or None, with wrong answers rare.
#[test]
fn rag_accuracy_shape() {
    let explainer = pipeline();
    let stats = evaluate(&explainer, &test_set(40)).expect("evaluation runs");
    assert!(
        stats.accuracy() >= 0.6,
        "accuracy {:.2} below shape threshold ({stats:?})",
        stats.accuracy()
    );
    assert!(
        stats.wrong_rate() <= 0.15,
        "wrong rate {:.2} too high",
        stats.wrong_rate()
    );
    assert!(stats.none_rate() <= 0.25, "none rate {:.2} too high", stats.none_rate());
}

/// §VI-D: RAG beats plan-diffing without knowledge, and DBG-PT exhibits its
/// documented failure modes.
#[test]
fn rag_beats_dbgpt_and_failure_modes_fire() {
    let explainer = pipeline();
    let tests = test_set(40);
    let rag = evaluate(&explainer, &tests).expect("RAG runs");
    let dbgpt = dbgpt_eval(&explainer, &tests, &explainer.config().prompt).expect("DBG-PT runs");
    assert!(
        rag.accuracy() > dbgpt.stats.accuracy() + 0.1,
        "RAG {:.2} vs DBG-PT {:.2}: gap too small",
        rag.accuracy(),
        dbgpt.stats.accuracy()
    );
    // At least two of the four failure modes must be observed on a mixed
    // workload of this size.
    let modes_observed = [
        dbgpt.index_misinterpretation > 0,
        dbgpt.columnar_overemphasis > 0,
        dbgpt.cost_comparison_used > 0,
        dbgpt.missed_relative_value > 0,
    ]
    .iter()
    .filter(|b| **b)
    .count();
    assert!(modes_observed >= 2, "only {modes_observed} failure modes observed");
}

/// §III-A: the router routes held-out queries well above chance.
#[test]
fn router_quality_shape() {
    let explainer = pipeline();
    let acc = router_accuracy(&explainer, &test_set(40)).expect("router eval runs");
    assert!(acc >= 0.7, "router accuracy {acc:.2}");
    // <1 MB claim
    assert!(explainer.router().network().serialized_size() < 1_000_000);
}

/// §VI-C: the LLM explanation cuts comprehension time and difficulty.
#[test]
fn participant_study_shape() {
    let r = run_study(&StudyConfig::default());
    assert!(r.with_llm_first.avg_minutes < r.plans_only_first.avg_minutes / 2.0);
    assert!(r.plans_only_first.initial_correct_rate < 1.0);
    assert_eq!(r.plans_only_first.final_correct_rate, 1.0);
    assert!(r.plans_only_first.avg_plan_difficulty > r.plans_only_first.avg_llm_difficulty + 3.0);
}

/// §VI-B timing: retrieval (encode + search) is a negligible share of the
/// end-to-end response time.
#[test]
fn retrieval_never_dominates() {
    let explainer = pipeline();
    for sql in test_set(5) {
        let outcome = explainer.system().run_sql(&sql).expect("runs");
        let report = explainer.explain_outcome(&outcome, &[]);
        assert!(
            report.timing.retrieval_fraction() < 0.05,
            "retrieval fraction {:.4} for {sql}",
            report.timing.retrieval_fraction()
        );
    }
}
