//! Property-based cross-engine equivalence: for any generated query, the TP
//! and AP engines must return the same result — the foundational invariant
//! the whole explanation framework rests on (an engine can be slower, never
//! wrong).

use proptest::prelude::*;
use qpe_core::workload::{WorkloadConfig, WorkloadGenerator};
use qpe_htap::engine::HtapSystem;
use qpe_htap::tpch::TpchConfig;

fn system() -> &'static HtapSystem {
    use std::sync::OnceLock;
    static SYS: OnceLock<HtapSystem> = OnceLock::new();
    SYS.get_or_init(|| HtapSystem::new(&TpchConfig::with_scale(0.002)))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Any workload-generator query (any seed, any family mix) must run on
    /// both engines and agree. `run_sql` internally asserts result
    /// equivalence and errors with `EngineMismatch` otherwise.
    #[test]
    fn engines_agree_on_generated_queries(seed in 0u64..10_000, topn in 0.0f64..1.0) {
        let mut gen = WorkloadGenerator::new(WorkloadConfig {
            seed,
            top_n_fraction: topn,
        });
        let sql = gen.next_query();
        let out = system().run_sql(&sql);
        prop_assert!(out.is_ok(), "engines disagreed or failed on {sql}: {:?}",
            out.err().map(|e| e.to_string()));
    }

    /// Winner determination and speedup are consistent: speedup ≥ 1 and the
    /// winner's latency is the smaller one.
    #[test]
    fn winner_speedup_invariants(seed in 0u64..10_000) {
        let mut gen = WorkloadGenerator::new(WorkloadConfig { seed, ..Default::default() });
        let sql = gen.next_query();
        let out = system().run_sql(&sql).expect("runs");
        prop_assert!(out.speedup() >= 1.0);
        let w = out.run(out.winner());
        let l = out.run(out.winner().other());
        prop_assert!(w.latency_ns <= l.latency_ns);
    }

    /// Plan estimates stay finite and non-negative for arbitrary workload
    /// queries (cost-model totality).
    #[test]
    fn plan_estimates_are_sane(seed in 0u64..10_000) {
        let mut gen = WorkloadGenerator::new(WorkloadConfig { seed, ..Default::default() });
        let sql = gen.next_query();
        let out = system().run_sql(&sql).expect("runs");
        for plan in [&out.tp.plan, &out.ap.plan] {
            plan.walk(&mut |n| {
                assert!(n.total_cost.is_finite() && n.total_cost >= 0.0,
                    "bad cost {} at {:?} for {sql}", n.total_cost, n.node_type);
                assert!(n.plan_rows.is_finite() && n.plan_rows >= 0.0,
                    "bad rows {} at {:?} for {sql}", n.plan_rows, n.node_type);
            });
        }
    }

    /// LIMIT semantics: output row count never exceeds the limit.
    #[test]
    fn limit_bounds_output(seed in 0u64..10_000) {
        let mut gen = WorkloadGenerator::new(WorkloadConfig {
            seed,
            top_n_fraction: 1.0,
        });
        let sql = gen.next_query();
        let out = system().run_sql(&sql).expect("runs");
        if let Some(limit) = out.bound.limit {
            prop_assert!(out.tp.rows.len() as u64 <= limit);
            prop_assert!(out.ap.rows.len() as u64 <= limit);
        }
    }
}

#[test]
fn order_by_is_respected_by_both_engines() {
    let sys = system();
    let out = sys
        .run_sql("SELECT o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 50")
        .expect("runs");
    for rows in [&out.tp.rows, &out.ap.rows] {
        for w in rows.windows(2) {
            let a = w[0][0].as_float().unwrap();
            let b = w[1][0].as_float().unwrap();
            assert!(a >= b, "descending order violated: {a} < {b}");
        }
    }
}
