//! Property-based cross-engine equivalence: for any generated query, the TP
//! and AP engines must return the same result — the foundational invariant
//! the whole explanation framework rests on (an engine can be slower, never
//! wrong).

use proptest::prelude::*;
use qpe_core::workload::{WorkloadConfig, WorkloadGenerator};
use qpe_htap::engine::HtapSystem;
use qpe_htap::tpch::TpchConfig;

fn system() -> &'static HtapSystem {
    use std::sync::OnceLock;
    static SYS: OnceLock<HtapSystem> = OnceLock::new();
    SYS.get_or_init(|| HtapSystem::new(&TpchConfig::with_scale(0.002)))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Any workload-generator query (any seed, any family mix) must run on
    /// both engines and agree. `run_sql` internally asserts result
    /// equivalence and errors with `EngineMismatch` otherwise.
    #[test]
    fn engines_agree_on_generated_queries(seed in 0u64..10_000, topn in 0.0f64..1.0) {
        let mut gen = WorkloadGenerator::new(WorkloadConfig {
            seed,
            top_n_fraction: topn,
        });
        let sql = gen.next_query();
        let out = system().run_sql(&sql);
        prop_assert!(out.is_ok(), "engines disagreed or failed on {sql}: {:?}",
            out.err().map(|e| e.to_string()));
    }

    /// Winner determination and speedup are consistent: speedup ≥ 1 and the
    /// winner's latency is the smaller one.
    #[test]
    fn winner_speedup_invariants(seed in 0u64..10_000) {
        let mut gen = WorkloadGenerator::new(WorkloadConfig { seed, ..Default::default() });
        let sql = gen.next_query();
        let out = system().run_sql(&sql).expect("runs");
        prop_assert!(out.speedup() >= 1.0);
        let w = out.run(out.winner());
        let l = out.run(out.winner().other());
        prop_assert!(w.latency_ns <= l.latency_ns);
    }

    /// Plan estimates stay finite and non-negative for arbitrary workload
    /// queries (cost-model totality).
    #[test]
    fn plan_estimates_are_sane(seed in 0u64..10_000) {
        let mut gen = WorkloadGenerator::new(WorkloadConfig { seed, ..Default::default() });
        let sql = gen.next_query();
        let out = system().run_sql(&sql).expect("runs");
        for plan in [&out.tp.plan, &out.ap.plan] {
            plan.walk(&mut |n| {
                assert!(n.total_cost.is_finite() && n.total_cost >= 0.0,
                    "bad cost {} at {:?} for {sql}", n.total_cost, n.node_type);
                assert!(n.plan_rows.is_finite() && n.plan_rows >= 0.0,
                    "bad rows {} at {:?} for {sql}", n.plan_rows, n.node_type);
            });
        }
    }

    /// LIMIT semantics: output row count never exceeds the limit.
    #[test]
    fn limit_bounds_output(seed in 0u64..10_000) {
        let mut gen = WorkloadGenerator::new(WorkloadConfig {
            seed,
            top_n_fraction: 1.0,
        });
        let sql = gen.next_query();
        let out = system().run_sql(&sql).expect("runs");
        if let Some(limit) = out.bound.limit {
            prop_assert!(out.tp.rows.len() as u64 <= limit);
            prop_assert!(out.ap.rows.len() as u64 <= limit);
        }
    }
}

// ---------------------------------------------------------------------------
// Row interpreter vs. serial batch executor vs. morsel-parallel executor
// ---------------------------------------------------------------------------
//
// The AP engine's plans execute on the vectorized batch executor — serial or
// morsel-parallel; the row interpreter remains the reference semantics.
// These tests pin the contract the latency model, the optimizer and the
// explainer all rely on: every execution mode returns *identical rows* and
// *identical WorkCounters* — simulated latencies, router features and
// explanations provably cannot depend on which executor (or how many
// threads) ran. The parallel runs force a tiny morsel size so even
// 300-row test tables split into many morsels and actually exercise the
// cross-thread merge paths.

mod scalar_vs_batch {
    use super::system;
    use qpe_htap::engine::EngineKind;
    use qpe_htap::exec::{execute_parallel, execute_scalar, execute_vectorized, vector, ExecConfig};
    use qpe_htap::opt::{ap, PlannerCtx};
    use qpe_core::workload::{WorkloadConfig, WorkloadGenerator};
    use proptest::prelude::*;

    /// A parallel config whose morsels are small enough that the test-scale
    /// tables split into many of them.
    fn par_cfg(threads: usize) -> ExecConfig {
        ExecConfig { threads, morsel_rows: 48, ..ExecConfig::serial() }
    }

    /// Runs `sql`'s AP plan through the row interpreter, the serial batch
    /// executor, and the parallel executor at 2 and 4 threads, asserting
    /// rows and counters are identical across all four runs.
    fn assert_executors_agree(sql: &str) {
        let sys = system();
        let db = sys.database();
        let bound = sys.bind(sql).expect("binds");
        let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
        let plan = ap::plan(&ctx).expect("ap plan");
        assert!(
            vector::supported(&plan),
            "AP plan outside batch-executor vocabulary for {sql}"
        );
        let (scalar_rows, scalar_counters) =
            execute_scalar(&plan, &bound, &db, EngineKind::Ap).expect("scalar");
        let (batch_rows, batch_counters) =
            execute_vectorized(&plan, &bound, &db).expect("vectorized");
        assert_eq!(scalar_rows, batch_rows, "rows diverged for {sql}");
        assert_eq!(
            scalar_counters, batch_counters,
            "work counters diverged for {sql}"
        );
        for threads in [2, 4] {
            let (par_rows, par_counters) =
                execute_parallel(&plan, &bound, &db, &par_cfg(threads)).expect("parallel");
            assert_eq!(
                batch_rows, par_rows,
                "rows diverged at {threads} threads for {sql}"
            );
            assert_eq!(
                batch_counters, par_counters,
                "work counters diverged at {threads} threads for {sql}"
            );
        }
    }

    #[test]
    fn group_by_with_having_and_order() {
        assert_executors_agree(
            "SELECT c_nationkey, COUNT(*), AVG(c_acctbal) FROM customer \
             GROUP BY c_nationkey HAVING COUNT(*) > 5 ORDER BY c_nationkey",
        );
        assert_executors_agree(
            "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment \
             ORDER BY c_mktsegment",
        );
    }

    #[test]
    fn order_by_plus_limit_top_n() {
        assert_executors_agree(
            "SELECT o_orderkey, o_totalprice FROM orders \
             ORDER BY o_totalprice DESC LIMIT 10",
        );
        assert_executors_agree(
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5 OFFSET 10",
        );
        // Full sort (no limit) and projection-only shapes.
        assert_executors_agree("SELECT c_name FROM customer WHERE c_custkey < 25");
    }

    #[test]
    fn multi_join_with_filters() {
        assert_executors_agree(
            "SELECT COUNT(*) FROM customer, orders \
             WHERE o_custkey = c_custkey AND o_orderkey < 500",
        );
        assert_executors_agree(
            "SELECT COUNT(*) FROM customer, nation, orders \
             WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22', '30', '39', '42', '21') \
             AND c_mktsegment = 'machinery' \
             AND n_name = 'egypt' AND o_orderstatus = 'p' \
             AND o_custkey = c_custkey AND n_nationkey = c_nationkey",
        );
        // Residual (non-equi) predicate above a cross join.
        assert_executors_agree(
            "SELECT COUNT(*) FROM nation, region WHERE n_regionkey < r_regionkey",
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The 3-way differential sweep — run for BOTH the zone-map-pruned
        /// plan (scan-predicate pushdown, the default) and the unpruned
        /// plan: for any workload-generator query (random plans spanning
        /// joins, aggregates and top-N), the row interpreter, the serial
        /// batch executor, and the morsel-parallel executor at 2 and 4
        /// threads must produce identical rows AND identical WorkCounters;
        /// the two plan flavors must also agree on rows with the pruned one
        /// never touching more cells.
        #[test]
        fn generated_queries_agree_across_executors(seed in 0u64..10_000, topn in 0.0f64..1.0) {
            let mut gen = WorkloadGenerator::new(WorkloadConfig { seed, top_n_fraction: topn });
            let sql = gen.next_query();
            let sys = system();
            let db = sys.database();
            let bound = sys.bind(&sql).expect("binds");
            let mut flavor_rows = Vec::new();
            let mut flavor_cells = Vec::new();
            for pruning in [true, false] {
                let mut ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
                ctx.pushdown = pruning;
                let plan = ap::plan(&ctx).expect("ap plan");
                prop_assert!(vector::supported(&plan), "unsupported AP plan for {}", sql);
                let (srows, sc) = execute_scalar(&plan, &bound, &db, EngineKind::Ap).expect("scalar");
                let (brows, bc) = execute_vectorized(&plan, &bound, &db).expect("vectorized");
                prop_assert_eq!(&srows, &brows, "rows diverged for {}", sql);
                prop_assert_eq!(sc, bc, "counters diverged for {}", sql);
                for threads in [2usize, 4] {
                    let (prows, pc) =
                        execute_parallel(&plan, &bound, &db, &par_cfg(threads)).expect("parallel");
                    prop_assert_eq!(&brows, &prows, "rows diverged at {} threads for {}", threads, sql);
                    prop_assert_eq!(bc, pc, "counters diverged at {} threads for {}", threads, sql);
                }
                flavor_rows.push(brows);
                flavor_cells.push(bc.cells_scanned);
            }
            prop_assert_eq!(&flavor_rows[0], &flavor_rows[1], "pruning changed rows for {}", sql);
            prop_assert!(
                flavor_cells[0] <= flavor_cells[1],
                "pruning increased cells for {}: {} vs {}", sql, flavor_cells[0], flavor_cells[1]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Forced-encoding matrix: every storage representation × bloom filters
// ---------------------------------------------------------------------------
//
// The compressed-execution kernels (dictionary-code equality/join/group-by,
// run-aware RLE comparisons, packed-domain FOR range checks) each fire only
// for their own representation — so the equivalence contract is checked with
// every representation *forced*, not just the ones the cost rules would
// pick. For each policy × bloom-filter setting, scalar ≡ serial batch ≡
// parallel rows and WorkCounters, and answers must match the Plain baseline.

mod forced_encodings {
    use qpe_htap::engine::{EngineKind, HtapSystem};
    use qpe_htap::exec::{
        execute_parallel, execute_scalar, execute_vectorized, vector, ExecConfig, Row,
    };
    use qpe_htap::opt::{ap, PlannerCtx};
    use qpe_htap::storage::col_store::EncodingPolicy;
    use qpe_htap::tpch::TpchConfig;

    const TABLES: &[&str] = &["customer", "orders", "nation"];

    /// Queries chosen to route through each specialized kernel: dict
    /// equality + IN, FOR/RLE range predicates, dict-keyed group-by, a
    /// join, and top-N.
    const QUERIES: &[&str] = &[
        "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'",
        "SELECT c_custkey FROM customer WHERE c_mktsegment IN ('building', 'household')",
        "SELECT COUNT(*), SUM(o_totalprice) FROM orders WHERE o_orderkey < 700",
        "SELECT c_mktsegment, COUNT(*), AVG(c_acctbal) FROM customer \
         GROUP BY c_mktsegment ORDER BY c_mktsegment",
        "SELECT COUNT(*) FROM customer, orders \
         WHERE o_custkey = c_custkey AND o_totalprice > 1000.0",
        "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 7",
    ];

    /// Row interpreter ≡ serial batch ≡ parallel (2 and 4 threads), rows
    /// and counters, on whatever representations the system currently has.
    fn agreed_rows(sys: &HtapSystem, sql: &str, label: &str) -> Vec<Row> {
        let db = sys.database();
        let bound = sys.bind(sql).expect("binds");
        let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
        let plan = ap::plan(&ctx).expect("ap plan");
        assert!(vector::supported(&plan), "{label}: unsupported AP plan for {sql}");
        let (srows, sc) = execute_scalar(&plan, &bound, &db, EngineKind::Ap).expect("scalar");
        let (brows, bc) = execute_vectorized(&plan, &bound, &db).expect("vectorized");
        assert_eq!(srows, brows, "{label}: scalar vs batch rows for {sql}");
        assert_eq!(sc, bc, "{label}: scalar vs batch counters for {sql}");
        for threads in [2usize, 4] {
            let cfg = ExecConfig { threads, morsel_rows: 48, ..ExecConfig::serial() };
            let (prows, pc) = execute_parallel(&plan, &bound, &db, &cfg).expect("parallel");
            assert_eq!(brows, prows, "{label}: parallel rows at {threads} threads for {sql}");
            assert_eq!(bc, pc, "{label}: parallel counters at {threads} threads for {sql}");
        }
        brows
    }

    #[test]
    fn every_policy_and_bloom_setting_agrees_with_plain() {
        // Plain baseline answers (blooms are irrelevant to plain columns
        // but toggled anyway below for the cross-check).
        let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
        for t in TABLES {
            assert!(sys.database_mut().set_encoding_policy(t, EncodingPolicy::Plain));
        }
        let baseline: Vec<Vec<Row>> = QUERIES
            .iter()
            .map(|sql| agreed_rows(&sys, sql, "plain"))
            .collect();

        for policy in [EncodingPolicy::Dict, EncodingPolicy::Rle, EncodingPolicy::For, EncodingPolicy::Auto] {
            for t in TABLES {
                assert!(sys.database_mut().set_encoding_policy(t, policy));
            }
            for blooms in [true, false] {
                for t in TABLES {
                    assert!(sys.database_mut().set_bloom_filters(t, blooms));
                }
                let label = format!("{policy:?}/blooms={blooms}");
                for (sql, base) in QUERIES.iter().zip(&baseline) {
                    let rows = agreed_rows(&sys, sql, &label);
                    assert_eq!(&rows, base, "{label}: answer moved vs Plain for {sql}");
                }
            }
        }
    }
}

#[test]
fn order_by_is_respected_by_both_engines() {
    let sys = system();
    let out = sys
        .run_sql("SELECT o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 50")
        .expect("runs");
    for rows in [&out.tp.rows, &out.ap.rows] {
        for w in rows.windows(2) {
            let a = w[0][0].as_float().unwrap();
            let b = w[1][0].as_float().unwrap();
            assert!(a >= b, "descending order violated: {a} < {b}");
        }
    }
}
