//! Crash-injection sweep for the durability layer.
//!
//! The property: for ANY interleaving of DML / compact / checkpoint and a
//! simulated kill at ANY durable I/O site (WAL flush, segment flush,
//! manifest flush, either side of the manifest rename, between segment
//! writes and the manifest), re-opening the directory recovers exactly the
//! committed prefix — TP scan ≡ AP scan ≡ an in-memory oracle that applied
//! only the acknowledged statements (or, when the kill landed after the
//! failing statement's bytes reached disk, the acknowledged statements
//! plus that one). Rows AND work counters must match: recovery rebuilds
//! the same physical layout (base/delta split, encodings, zone maps), not
//! just the same logical contents.
//!
//! Deterministic companions cover torn WAL tails, recovery idempotence
//! (re-running recovery is a no-op, including after a second unclean kill
//! mid-recovery), clean close/reopen byte-identity, group-commit batching
//! under concurrency, and background-compaction equivalence.

use proptest::prelude::*;
use qpe_htap::engine::{BackgroundCompaction, DurabilityOptions, HtapSystem};
use qpe_htap::exec::{Row, WorkCounters};
use qpe_htap::storage::{FailPoints, SyncPolicy};
use qpe_htap::tpch::TpchConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Unique temp directory, removed on drop.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "qpe_crash_{tag}_{}_{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TmpDir(path)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> TpchConfig {
    TpchConfig::with_scale(0.0005)
}

fn opts(fp: FailPoints) -> DurabilityOptions {
    DurabilityOptions {
        sync: SyncPolicy::GroupCommit { interval: Duration::ZERO },
        failpoints: fp,
        ..DurabilityOptions::default()
    }
}

/// One randomized operation against the durable system (and the oracle).
#[derive(Debug, Clone, Copy, PartialEq)]
enum SimOp {
    Insert,
    Update,
    Delete,
    Compact,
    Checkpoint,
}

fn decode(code: u8) -> SimOp {
    match code % 8 {
        0..=2 => SimOp::Insert,
        3 | 4 => SimOp::Update,
        5 => SimOp::Delete,
        6 => SimOp::Compact,
        _ => SimOp::Checkpoint,
    }
}

/// Applies one op. Statement errors (duplicate keys, crashed storage) are
/// legal outcomes — determinism makes the oracle fail identically, and the
/// crash case is what the sweep is for. `Checkpoint` on the in-memory
/// oracle is a no-op (it has nothing to checkpoint).
fn apply(sys: &HtapSystem, op: SimOp, seed: u64, i: usize) {
    let salt = seed.wrapping_mul(31).wrapping_add(i as u64);
    match op {
        SimOp::Insert => {
            let key = 1_000_000 + salt % 100_000;
            let seg = ["machinery", "building", "household"][(salt % 3) as usize];
            let _ = sys.execute_statement(&format!(
                "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                 c_mktsegment) VALUES ({key}, 'customer#{key}', {}, '20-000-000-0000', \
                 {}.25, '{seg}')",
                salt % 25,
                salt % 5000
            ));
        }
        SimOp::Update => {
            let lo = 1 + salt % 70;
            let _ = sys.execute_statement(&format!(
                "UPDATE customer SET c_acctbal = c_acctbal + {}, c_mktsegment = 'machinery' \
                 WHERE c_custkey BETWEEN {lo} AND {}",
                salt % 100,
                lo + 5
            ));
        }
        SimOp::Delete => {
            let lo = 1 + salt % 70;
            let _ = sys.execute_statement(&format!(
                "DELETE FROM customer WHERE c_custkey BETWEEN {lo} AND {}",
                lo + 2
            ));
        }
        SimOp::Compact => {
            let _ = sys.compact("customer");
        }
        SimOp::Checkpoint => {
            let _ = sys.checkpoint();
        }
    }
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// Full `customer` scan through the dual-engine pipeline (which itself
/// asserts TP ≡ AP), returning sorted rows plus both engines' counters.
fn state(sys: &HtapSystem) -> (Vec<Row>, WorkCounters, WorkCounters) {
    let out = sys.run_sql("SELECT * FROM customer").expect("scan recovered/oracle state");
    (sorted(out.tp.rows.clone()), out.tp.counters, out.ap.counters)
}

fn assert_states_equal(
    label: &str,
    got: &(Vec<Row>, WorkCounters, WorkCounters),
    want: &(Vec<Row>, WorkCounters, WorkCounters),
) {
    assert_eq!(got.0, want.0, "{label}: rows diverge");
    assert_eq!(got.1, want.1, "{label}: TP work counters diverge");
    assert_eq!(got.2, want.2, "{label}: AP work counters diverge");
}

/// Every site a crash can land on. Flush sites ("wal"/"seg"/"manifest")
/// honor the keep-fraction (torn writes); control sites fire whole.
const SITES: [&str; 6] = [
    "wal",
    "seg",
    "manifest",
    "manifest:pre_rename",
    "manifest:post_rename",
    "ckpt:after_segments",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The main sweep: random op tape × random crash site/countdown/tear
    /// fraction. Kill, reopen, compare against the committed-prefix oracle.
    #[test]
    fn recovery_restores_the_committed_prefix(
        codes in prop::collection::vec(any::<u8>(), 1..20usize),
        seed in any::<u64>(),
        site_idx in 0usize..6,
        countdown in 1u32..6,
        keep_idx in 0usize..3,
    ) {
        let site = SITES[site_idx];
        let keep = [0.0, 0.5, 1.0][keep_idx];
        let dir = TmpDir::new("sweep");
        let fp = FailPoints::default();
        fp.arm_partial(site, countdown, keep);

        let cfg = config();
        let mut acked = 0usize;
        let mut failing: Option<usize> = None;
        match HtapSystem::open_with(&dir.0, &cfg, opts(fp.clone())) {
            Err(_) => {
                // The kill landed inside the initial checkpoint; nothing
                // was ever acknowledged.
                prop_assert!(fp.crashed(), "open failed without a simulated crash");
            }
            Ok(sys) => {
                for (i, &code) in codes.iter().enumerate() {
                    apply(&sys, decode(code), seed, i);
                    if fp.crashed() {
                        failing = Some(i);
                        break;
                    }
                    acked = i + 1;
                }
                drop(sys); // unclean: no close(), no final checkpoint
            }
        }

        // Recovery must succeed on whatever the kill left behind — torn
        // tails and half-written files are detected and discarded, never
        // panicked on.
        let recovered = HtapSystem::open(&dir.0, &cfg).expect("recovery never fails");
        let got = state(&recovered);

        // Oracle: same generated data, same acknowledged statements.
        let oracle = HtapSystem::new(&cfg);
        for (i, &code) in codes[..acked].iter().enumerate() {
            apply(&oracle, decode(code), seed, i);
        }
        let want_acked = state(&oracle);
        if got == want_acked {
            return Ok(());
        }
        // The failing statement's bytes may have reached disk before the
        // kill (keep fraction 1.0, or a crash after the fsync): the other
        // legal outcome is acked + that one statement.
        let failing = failing.expect("no failing op, but state diverged from the acked oracle");
        apply(&oracle, decode(codes[failing]), seed, failing);
        let want_plus = state(&oracle);
        assert_states_equal(
            "recovered state matches neither acked nor acked+failing oracle",
            &got,
            &want_plus,
        );
    }
}

/// A torn WAL tail (partial flush of a committed-in-flight statement) is
/// detected by checksum, physically truncated, and recovery lands on the
/// acknowledged prefix.
#[test]
fn torn_wal_tail_is_truncated_and_prefix_recovered() {
    let dir = TmpDir::new("torn");
    let cfg = config();
    let fp = FailPoints::default();
    let sys = HtapSystem::open_with(&dir.0, &cfg, opts(fp.clone())).expect("open");
    for i in 0..5 {
        apply(&sys, SimOp::Insert, 7, i);
    }
    // The 6th statement's flush tears mid-record.
    fp.arm_partial("wal", 1, 0.3);
    apply(&sys, SimOp::Insert, 7, 5);
    assert!(fp.crashed());
    drop(sys);

    let recovered = HtapSystem::open(&dir.0, &cfg).expect("recover");
    let report = recovered.recovery_report().expect("durable open has a report").clone();
    assert!(!report.created);
    assert!(report.torn_bytes_discarded > 0, "the torn tail was measured");
    assert_eq!(report.wal_records_replayed, 5);

    let oracle = HtapSystem::new(&cfg);
    for i in 0..5 {
        apply(&oracle, SimOp::Insert, 7, i);
    }
    assert_states_equal("torn-tail recovery", &state(&recovered), &state(&oracle));
}

/// Re-running recovery is a no-op: same manifest version, same rows, same
/// counters — even when the first recovery itself dies uncleanly (the
/// double-crash case: its only disk effect, truncating torn tails, is
/// idempotent).
#[test]
fn recovery_is_idempotent_across_repeated_and_interrupted_runs() {
    let dir = TmpDir::new("idem");
    let cfg = config();
    let fp = FailPoints::default();
    let sys = HtapSystem::open_with(&dir.0, &cfg, opts(fp.clone())).expect("open");
    for i in 0..8 {
        apply(&sys, decode(i as u8), 13, i);
    }
    sys.checkpoint().expect("checkpoint");
    for i in 8..12 {
        apply(&sys, decode(i as u8), 13, i);
    }
    fp.arm_partial("wal", 1, 0.5);
    apply(&sys, SimOp::Insert, 13, 12);
    assert!(fp.crashed());
    drop(sys);

    // First recovery: truncates the torn tail, replays, then dies without
    // a clean close (simulating a second kill right after recovery).
    let first = HtapSystem::open(&dir.0, &cfg).expect("first recovery");
    let report1 = first.recovery_report().unwrap().clone();
    let state1 = state(&first);
    drop(first);

    // Second recovery over the already-recovered directory.
    let second = HtapSystem::open(&dir.0, &cfg).expect("second recovery");
    let report2 = second.recovery_report().unwrap().clone();
    assert_eq!(report1.manifest_version, report2.manifest_version);
    assert_eq!(report1.wal_records_replayed, report2.wal_records_replayed);
    assert_eq!(report2.torn_bytes_discarded, 0, "first recovery already truncated the tail");
    assert_states_equal("second recovery", &state(&second), &state1);

    // And writes still work on the twice-recovered system (the re-opened
    // WAL generation appends after the last good record).
    apply(&second, SimOp::Insert, 99, 0);
    drop(second);
    let third = HtapSystem::open(&dir.0, &cfg).expect("third open");
    assert_eq!(state(&third).0.len(), state1.0.len() + 1);
}

/// Clean close publishes a final checkpoint: the next open loads segments
/// only (zero WAL replay) and the state is identical — including the
/// physical layout the counters measure, at 1 AND 2 AP threads.
#[test]
fn clean_close_reopens_byte_identical_with_no_replay() {
    let dir = TmpDir::new("clean");
    let cfg = config();
    let sys = HtapSystem::open(&dir.0, &cfg).expect("open");
    for i in 0..10 {
        apply(&sys, decode((i * 3) as u8), 29, i);
    }
    let before = state(&sys);
    let freshness_before = sys.freshness("customer").unwrap();
    sys.close().expect("close");

    let mut reopened = HtapSystem::open(&dir.0, &cfg).expect("reopen");
    let report = reopened.recovery_report().unwrap();
    assert_eq!(report.wal_records_replayed, 0, "clean close leaves nothing to replay");
    assert_states_equal("clean reopen", &state(&reopened), &before);
    let freshness_after = reopened.freshness("customer").unwrap();
    assert_eq!(freshness_before.delta_rows, freshness_after.delta_rows);
    assert_eq!(freshness_before.base_rows, freshness_after.base_rows);

    // Parallel AP execution over recovered storage: identical rows and
    // counters (morsels straddle the recovered base/delta split).
    reopened.set_ap_threads(2);
    assert_states_equal("recovered state at 2 AP threads", &state(&reopened), &before);
}

/// Group commit under concurrency: every acknowledged statement survives
/// the crash-free reopen, and the fsync count stays well below the record
/// count (the batching win the policy exists for).
#[test]
fn group_commit_batches_fsyncs_and_loses_nothing() {
    let dir = TmpDir::new("group");
    let cfg = config();
    let sys = std::sync::Arc::new(
        HtapSystem::open_with(
            &dir.0,
            &cfg,
            DurabilityOptions {
                sync: SyncPolicy::GroupCommit { interval: Duration::from_millis(2) },
                ..DurabilityOptions::default()
            },
        )
        .expect("open"),
    );
    let threads = 6;
    let per_thread = 20;
    let mut handles = Vec::new();
    for t in 0..threads {
        let sys = std::sync::Arc::clone(&sys);
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let key = 2_000_000 + t * 10_000 + i;
                sys.execute_statement(&format!(
                    "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, \
                     c_acctbal, c_mktsegment) VALUES ({key}, 'c#{key}', 1, \
                     '20-000-000-0000', 10.25, 'machinery')"
                ))
                .expect("insert commits");
            }
        }));
    }
    for h in handles {
        h.join().expect("writer thread");
    }
    let stats = sys.wal_stats().expect("durable system");
    assert_eq!(stats.records, (threads * per_thread) as u64);
    assert!(
        stats.fsyncs < stats.records,
        "group commit should batch: {} fsyncs for {} records",
        stats.fsyncs,
        stats.records
    );
    let before = state(&sys);
    drop(sys); // unclean

    let recovered = HtapSystem::open(&dir.0, &cfg).expect("recover");
    assert_states_equal("all acked concurrent inserts recovered", &state(&recovered), &before);
}

/// Background compaction (durable): equivalent to a synchronous compact —
/// live state, recovered state and the oracle all agree, and writes that
/// land *during* the build are preserved and correctly rid-translated in
/// the WAL.
#[test]
fn background_compaction_is_equivalent_and_recoverable() {
    let dir = TmpDir::new("bg");
    let cfg = config();
    let sys = HtapSystem::open(&dir.0, &cfg).expect("open");
    let oracle = HtapSystem::new(&cfg);
    for i in 0..8 {
        apply(&sys, decode((i * 5 + 1) as u8), 41, i);
        apply(&oracle, decode((i * 5 + 1) as u8), 41, i);
    }
    assert!(sys.background_compact_all().expect("bg compact") >= 1);
    oracle.compact("customer");
    // More writes after the swap, then crash.
    for i in 8..12 {
        apply(&sys, decode((i * 5 + 1) as u8), 41, i);
        apply(&oracle, decode((i * 5 + 1) as u8), 41, i);
    }
    let want = state(&oracle);
    assert_states_equal("live bg-compacted state", &state(&sys), &want);
    drop(sys); // unclean: replay must redo Compact + translated ops

    let recovered = HtapSystem::open(&dir.0, &cfg).expect("recover");
    assert_states_equal("recovered bg-compacted state", &state(&recovered), &want);
}

/// Sealed segments carry their physical encoding: a base compacted under a
/// forced FOR policy checkpoints as `ForInt` columns, and recovery replays
/// them identically — same representation (column discriminants), same rows,
/// same work counters, and the same bloom/zone pruning behaviour (blooms and
/// zone maps are recomputed deterministically from the recovered
/// representation, so a bloom-pruned point query charges identical counters
/// before and after the crash).
#[test]
fn forced_for_segments_and_bloom_pruning_replay_identically() {
    use qpe_htap::storage::col_store::{ColumnData, EncodingPolicy};

    let dir = TmpDir::new("forenc");
    let cfg = config();
    let fp = FailPoints::default();
    let mut sys = HtapSystem::open_with(&dir.0, &cfg, opts(fp.clone())).expect("open");
    assert!(sys.database_mut().set_encoding_policy("customer", EncodingPolicy::For));
    assert!(sys.database_mut().set_bloom_filters("customer", true));
    for i in 0..12 {
        apply(&sys, SimOp::Insert, 61, i);
    }
    sys.compact("customer");
    sys.checkpoint().expect("checkpoint seals the FOR base");
    // Post-checkpoint writes live in the WAL + delta only.
    for i in 12..16 {
        apply(&sys, SimOp::Insert, 61, i);
    }

    let for_columns = |sys: &HtapSystem| {
        let db = sys.database();
        let cols = &db.stored_table("customer").expect("customer exists").cols;
        [0, 2].map(|ci| matches!(cols.column(ci), ColumnData::ForInt(_)))
    };
    assert_eq!(for_columns(&sys), [true, true], "forced FOR base before the crash");
    let before = state(&sys);
    // A bloom-prunable point query over the sealed FOR base (key 12 landed
    // in the base segment; most blocks lack it and their blooms say so).
    let probe = "SELECT c_name FROM customer WHERE c_custkey = 1001891";
    let probe_before = sys.run_sql(probe).expect("probe");

    // Tear the 17th insert's WAL flush mid-record and kill the process.
    fp.arm_partial("wal", 1, 0.3);
    apply(&sys, SimOp::Insert, 61, 16);
    assert!(fp.crashed());
    drop(sys);

    let recovered = HtapSystem::open(&dir.0, &cfg).expect("recover");
    let report = recovered.recovery_report().expect("durable open has a report").clone();
    assert_eq!(report.wal_records_replayed, 4, "only the post-checkpoint inserts replay");
    assert!(report.torn_bytes_discarded > 0, "the torn 17th insert was measured");
    assert_eq!(
        for_columns(&recovered),
        [true, true],
        "sealed segments replay with their FOR representation intact"
    );
    assert_states_equal("forced-FOR recovery", &state(&recovered), &before);
    let probe_after = recovered.run_sql(probe).expect("probe recovered");
    assert_eq!(probe_after.tp.rows, probe_before.tp.rows, "probe rows diverge");
    assert_eq!(
        probe_after.ap.counters, probe_before.ap.counters,
        "recomputed blooms/zones must prune exactly as before the crash"
    );
}

/// The compactor thread keeps the table compacted while writers stay live:
/// with a tiny trigger threshold, sustained DML ends with bounded delta
/// debt and zero lost statements.
#[test]
fn compactor_thread_keeps_writers_live() {
    let dir = TmpDir::new("thread");
    let cfg = config();
    let sys = HtapSystem::open_with(
        &dir.0,
        &cfg,
        DurabilityOptions {
            background: Some(BackgroundCompaction {
                min_delta_rows: 8,
                poll: Duration::from_millis(1),
            }),
            ..DurabilityOptions::default()
        },
    )
    .expect("open");
    let oracle = HtapSystem::new(&cfg);
    for i in 0..60 {
        let op = match i % 3 {
            0 | 1 => SimOp::Insert,
            _ => SimOp::Delete,
        };
        apply(&sys, op, 53, i);
        apply(&oracle, op, 53, i);
        if i % 10 == 9 {
            // Give the compactor a chance to interleave mid-stream.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Rows never diverge from the oracle no matter where compactions
    // landed (the oracle is compaction-invariant on rows; counters differ
    // by layout, so compare rows only here).
    let got = state(&sys).0;
    let want = state(&oracle).0;
    assert_eq!(got, want, "compactor thread must not lose or duplicate rows");
    sys.close().expect("close");

    let recovered = HtapSystem::open(&dir.0, &cfg).expect("reopen");
    assert_eq!(state(&recovered).0, want);
}
