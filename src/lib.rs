//! Workspace façade crate.
//!
//! Hosts the cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`); re-exports the member crates for convenience.

pub use qpe_core as core;
pub use qpe_htap as htap;
pub use qpe_llm as llm;
pub use qpe_sql as sql;
pub use qpe_treecnn as treecnn;
