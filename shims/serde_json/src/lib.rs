//! Offline stand-in for `serde_json`: a JSON [`Value`] tree, the `json!`
//! macro, and `to_string` / `to_string_pretty` / `to_vec` / `from_str` over
//! the serde shim's [`Content`](serde::Content) data model.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// JSON number — integer and float representations are kept distinct so
/// round-trips preserve the original shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer above `i64::MAX`.
    U(u64),
    /// Float.
    F(f64),
}

impl Number {
    /// The value widened to f64.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::I(v) => *v as f64,
            Number::U(v) => *v as f64,
            Number::F(v) => *v,
        }
    }
}

/// Insertion-ordered string-keyed map (mirrors serde_json's `preserve_order`
/// flavor, which matches how EXPLAIN output is asserted field-by-field).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Inserts, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map<String, Value>),
}

impl Value {
    /// Object field or `None` for non-objects / missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Borrows the string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Widened numeric payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Integer payload when the number is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v),
            _ => None,
        }
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for numbers.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I(v)) => Content::I64(*v),
            Value::Number(Number::U(v)) => Content::U64(*v),
            Value::Number(Number::F(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Value::to_content).collect()),
            Value::Object(m) => Content::Map(
                m.entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }

    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::I(*v)),
            Content::U64(v) => Value::Number(Number::U(*v)),
            Content::F64(v) => Value::Number(Number::F(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => Value::Object(Map {
                entries: entries
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_content(v)))
                    .collect(),
            }),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Content {
        self.to_content()
    }
}

impl Deserialize for Value {
    fn deserialize(c: &Content) -> std::result::Result<Self, DeError> {
        Ok(Value::from_content(c))
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Number(Number::I(v as i64))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::I(v))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(Number::I(v as i64))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        if v <= i64::MAX as u64 {
            Value::Number(Number::I(v as i64))
        } else {
            Value::Number(Number::U(v))
        }
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        matches!(self, Value::Number(Number::I(v)) if *v == *other as i64)
    }
}
impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        matches!(self, Value::Number(Number::I(v)) if v == other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Number(Number::I(v)) if *v >= 0 && *v as u64 == *other)
            || matches!(self, Value::Number(Number::U(v)) if v == other)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Builds a [`Value`] from JSON-ish syntax; supports the literal / object /
/// array shapes this workspace writes.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:literal : $val:tt ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes any [`Serialize`] value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any [`DeserializeOwned`](serde::de::DeserializeOwned) type.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let content = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::deserialize(&content).map_err(Error::from)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps a trailing `.0` so floats survive round-trips.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_content(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(&mut self) -> Result<Content> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing input at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Content::U64(v))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = json!({
            "Node Type": "Table Scan",
            "Total Cost": 2.75,
            "Plan Rows": 25,
            "Plans": [{"Node Type": "Filter"}]
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["Node Type"], "Table Scan");
        assert_eq!(back["Total Cost"], 2.75);
        assert_eq!(back["Plan Rows"], 25);
        assert_eq!(back["Plans"][0]["Node Type"], "Filter");
    }

    #[test]
    fn float_shape_survives() {
        let text = to_string(&json!(1.0f64)).unwrap();
        assert_eq!(text, "1.0");
        let back: Value = from_str(&text).unwrap();
        assert!(back.is_number());
        assert_eq!(back, 1.0);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\u{1}".into());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_indented() {
        let text = to_string_pretty(&json!({"a": [1, 2]})).unwrap();
        assert!(text.contains("\n  \"a\""));
    }

    #[test]
    fn index_misses_return_null() {
        let v = json!({"a": 1});
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["a"][3], Value::Null);
    }
}
