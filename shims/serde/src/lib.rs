//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]`, trait bounds
//! (`Serialize`, `de::DeserializeOwned`), and round-tripping through
//! `serde_json`. The container registry is unreachable in this environment,
//! so serialization flows through a self-describing [`Content`] tree instead
//! of serde's visitor machinery — behaviourally equivalent for the JSON
//! round-trips the workspace performs, at a fraction of the surface area.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Self-describing serialized form — the shim's entire data model.
///
/// Enum values use serde's externally-tagged representation: a unit variant
/// is a plain string, a data-carrying variant is a single-entry map from the
/// variant name to its payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (Vec, tuple, tuple-variant payload).
    Seq(Vec<Content>),
    /// Key-ordered map (struct fields, map entries, enum variant wrapper).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrows the map entries when this content is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements when this content is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string when this content is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Content) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into self-describing content.
    fn serialize(&self) -> Content;
}

/// Deserialization from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from self-describing content.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

/// Looks up a struct field in a serialized map (derive-generated code).
pub fn map_get<'a>(map: &'a [(String, Content)], key: &str) -> Result<&'a Content, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

/// Mirror of `serde::de` for the `DeserializeOwned` bound.
pub mod de {
    /// Owned deserialization marker — blanket-implemented for every
    /// [`crate::Deserialize`] type, matching serde's semantics for the
    /// owned-data use cases in this workspace.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) if *v >= 0 => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as $t),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

ser_uint!(u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(DeError::expected("float", other)),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let items = c.as_seq().ok_or_else(|| DeError::expected("sequence", c))?;
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b]) => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            _ => Err(DeError::expected("2-tuple", c)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![self.0.serialize(), self.1.serialize(), self.2.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b, cc]) => Ok((A::deserialize(a)?, B::deserialize(b)?, C::deserialize(cc)?)),
            _ => Err(DeError::expected("3-tuple", c)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let map = c.as_map().ok_or_else(|| DeError::expected("map", c))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let map = c.as_map().ok_or_else(|| DeError::expected("map", c))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(i64::deserialize(&42i64.serialize()).unwrap(), 42);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(String::deserialize(&"x".to_string().serialize()).unwrap(), "x");
        assert_eq!(Option::<i64>::deserialize(&Content::Null).unwrap(), None);
        assert_eq!(Vec::<u32>::deserialize(&vec![1u32, 2].serialize()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn tuple_and_array_round_trips() {
        let t = (1i64, "a".to_string());
        assert_eq!(<(i64, String)>::deserialize(&t.serialize()).unwrap(), t);
        let a = [0.5f64, 0.25];
        assert_eq!(<[f64; 2]>::deserialize(&a.serialize()).unwrap(), a);
    }

    #[test]
    fn missing_field_reports_name() {
        let err = map_get(&[], "foo").unwrap_err();
        assert!(err.to_string().contains("foo"));
    }
}
