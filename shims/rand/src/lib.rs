//! Offline stand-in for `rand`, covering the subset this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over integer
//! and float ranges, and `SliceRandom::shuffle`. Deterministic per seed
//! (xoshiro256** seeded through SplitMix64), which is all the workspace
//! requires — every caller seeds explicitly.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range (the `gen_range` argument bound).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one sample from the standard distribution.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

/// Per-type uniform sampling primitive. One generic [`SampleRange`] bridge
/// impl sits on top so type inference flows from the range's element type
/// exactly as it does in real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                let draw = ((rng.next_u64() as u128) % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let _ = inclusive;
                assert!(lo < hi || (inclusive && lo <= hi), "gen_range: empty range");
                let unit = f64::sample_standard(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing RNG trait.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Standard-distribution draw (`f64` in `[0,1)`, uniform `bool`, ...).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
