//! Derive macros for the offline `serde` shim.
//!
//! Parses the derive input with nothing but `proc_macro` (no `syn`/`quote`
//! — unreachable in this environment) and emits impls against the shim's
//! [`Content`] data model. Supports exactly the shapes this workspace
//! derives: non-generic and simply-generic structs (named, tuple, unit) and
//! enums whose variants are unit, tuple, or struct-like.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named-field struct: field names in declaration order.
    StructNamed(Vec<String>),
    /// Tuple struct with arity.
    StructTuple(usize),
    /// Unit struct.
    StructUnit,
    /// Enum: (variant name, variant shape).
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Skips one `#[...]` attribute if the cursor is on `#`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts depth-0 comma-separated items in a type list (tracks `<`/`>`).
fn count_type_list(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1usize;
    let mut saw_any = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    items += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_any = true;
    }
    if !saw_any {
        0
    } else {
        items
    }
}

/// Parses named fields out of a brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        fields.push(name.to_string());
        i += 1;
        // Expect ':', then skip the type until a depth-0 comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Parses enum variants out of a brace group's tokens.
fn parse_variants(tokens: &[TokenTree]) -> Vec<(String, VariantShape)> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Tuple(count_type_list(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Named(parse_named_fields(&inner))
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        // Skip to the next depth-0 comma (covers `= discr` too).
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    i = skip_attrs(&tokens, i);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    // Optional simple generics `<A, B>` (plain type params only).
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1i32;
            while i < tokens.len() && depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Ident(id) if depth == 1 => generics.push(id.to_string()),
                    _ => {}
                }
                i += 1;
            }
        }
    }
    let shape = if kind == "enum" {
        let Some(TokenTree::Group(g)) = tokens.get(i) else {
            panic!("serde shim derive: enum body not found")
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        Shape::Enum(parse_variants(&inner))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::StructNamed(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::StructTuple(count_type_list(&inner))
            }
            _ => Shape::StructUnit,
        }
    };
    Input { name, generics, shape }
}

/// `impl<V: ::serde::Serialize> ::serde::Serialize for Name<V>` header parts.
fn impl_header(input: &Input, trait_name: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), input.name.clone())
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("{}<{}>", input.name, input.generics.join(", ")),
        )
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (params, ty) = impl_header(&input, "Serialize");
    let body = match &input.shape {
        Shape::StructNamed(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "m.push((String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            format!("let mut m = Vec::new();\n{pushes}::serde::Content::Map(m)")
        }
        Shape::StructTuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::StructUnit => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &input.name;
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Content::Str(String::from(\"{v}\")),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Content::Map(vec![(String::from(\"{v}\"), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "fm.push((String::from(\"{f}\"), ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => {{ let mut fm = Vec::new();\n{pushes}::serde::Content::Map(vec![(String::from(\"{v}\"), ::serde::Content::Map(fm))]) }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{params} ::serde::Serialize for {ty} {{\n\
         fn serialize(&self) -> ::serde::Content {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (params, ty) = impl_header(&input, "Deserialize");
    let name = &input.name;
    let body = match &input.shape {
        Shape::StructNamed(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(::serde::map_get(m, \"{f}\")?)?,\n"
                ));
            }
            format!(
                "let m = c.as_map().ok_or_else(|| ::serde::DeError::expected(\"struct map\", c))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::StructTuple(arity) => {
            let gets: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                .collect();
            format!(
                "let s = c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"tuple seq\", c))?;\n\
                 if s.len() != {arity} {{ return Err(::serde::DeError::expected(\"tuple of {arity}\", c)); }}\n\
                 Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::StructUnit => format!("let _ = c; Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
                    }
                    VariantShape::Tuple(arity) if *arity == 1 => {
                        data_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize(payload)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(arity) => {
                        let gets: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let s = payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"variant seq\", payload))?;\n\
                             if s.len() != {arity} {{ return Err(::serde::DeError::expected(\"variant tuple of {arity}\", payload)); }}\n\
                             Ok({name}::{v}({}))\n}},\n",
                            gets.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize(::serde::map_get(fm, \"{f}\")?)?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let fm = payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"variant map\", payload))?;\n\
                             Ok({name}::{v} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = &m[0];\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 other => Err(::serde::DeError::expected(\"enum\", other)),\n}}"
            )
        }
    };
    format!(
        "impl{params} ::serde::Deserialize for {ty} {{\n\
         fn deserialize(c: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl parses")
}
