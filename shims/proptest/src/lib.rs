//! Offline stand-in for `proptest`, covering the subset this workspace uses:
//! the `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros, range and regex-literal strategies, tuples, `Just`,
//! `any::<bool>()`, `prop::collection::vec`, `prop_map`, `prop_recursive`,
//! and `BoxedStrategy`. Sampling is deterministic (seeded per test name and
//! case index); failing cases report their inputs but are not shrunk.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run configuration: number of cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to sample per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn new(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator. Unlike real proptest there is no shrinking, so a
/// strategy is just a cloneable sampling function.
pub trait Strategy: Clone + 'static {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone + 'static,
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng| this.gen_value(rng)))
    }

    /// Recursive strategy: applies `recurse` up to `depth` times, choosing
    /// between the current level and one more level of nesting at each step.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            strat = OneOf { arms: vec![strat, deeper] }.boxed();
        }
        strat
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone + 'static,
    O: 'static,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Constant strategy.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms (`prop_oneof!`).
pub struct OneOf<V> {
    /// The alternative strategies.
    pub arms: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf { arms: self.arms.clone() }
    }
}

impl<V> OneOf<V> {
    /// Builds from boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V: 'static> Strategy for OneOf<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].gen_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// Regex-literal string strategy over the subset this workspace writes:
/// literal chars, `.`, character classes `[a-z0-9 ]` (ranges + singles), and
/// `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    #[derive(Debug)]
    enum Atom {
        Lit(char),
        Any,
        Class(Vec<(char, char)>),
    }
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ]
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().unwrap_or('\\');
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional {m,n} / {n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .expect("unclosed {} in regex strategy");
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("regex {m,n}"),
                    hi.trim().parse::<usize>().expect("regex {m,n}"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("regex {n}");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    let mut out = String::new();
    for (atom, min, max) in atoms {
        let reps = if min == max { min } else { rng.gen_range(min..=max) };
        for _ in 0..reps {
            match &atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Any => out.push(rng.gen_range(0x20u32..0x7f) as u8 as char),
                Atom::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                        .sum();
                    let mut pick = rng.gen_range(0..total);
                    for &(lo, hi) in ranges {
                        let span = hi as u32 - lo as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick).unwrap_or(lo));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.gen_value(rng), self.1.gen_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.gen_value(rng),
            self.1.gen_value(rng),
            self.2.gen_value(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.gen_value(rng),
            self.1.gen_value(rng),
            self.2.gen_value(rng),
            self.3.gen_value(rng),
        )
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized + 'static {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy over all values of an [`Arbitrary`] type.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — strategy over the whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.saturating_sub(1) }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Vec-of-elements strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Seeds the per-case RNG: deterministic in (test path, case index).
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Property assertion: fails the current case without panicking the harness
/// machinery (the case loop reports it as a test failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::new(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    }};
}

/// The `proptest!` block: expands each property into a deterministic
/// multi-case `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_matching_shapes() {
        let mut rng = super::case_rng("regex", 0);
        for _ in 0..50 {
            let s = Strategy::gen_value(&"[a-z]_[a-z]{3,10}", &mut rng);
            assert!(s.len() >= 5 && s.len() <= 12, "{s:?}");
            assert_eq!(s.as_bytes()[1], b'_');
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 0i64..10, (a, b) in (0u64..5, 0.0f64..1.0)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b), "b = {}", b);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1i64), Just(2), (5i64..8).prop_map(|x| x)]) {
            prop_assert!(v == 1 || v == 2 || (5..8).contains(&v));
        }

        #[test]
        fn vec_sizes(vs in prop::collection::vec(0i64..3, 2..=4)) {
            prop_assert!(vs.len() >= 2 && vs.len() <= 4);
            prop_assert_eq!(vs.iter().filter(|&&x| x > 2).count(), 0);
        }
    }
}
