//! Offline stand-in for `criterion`: same macro/builder surface as the
//! subset the bench targets use, measuring with `std::time::Instant` and
//! reporting the per-iteration median. No statistics engine, no HTML
//! reports — enough to compare hot paths across commits.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench-run configuration and registry.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        let mut b = Bencher::new(
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
        );
        f(&mut b, input);
        b.report(&full);
        self
    }

    /// Finishes the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Measures closures handed to `iter`.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Self {
        Bencher { sample_size, warm_up, measurement, median_ns: None }
    }

    /// Times the closure: warm-up, then `sample_size` timed samples; the
    /// per-iteration median is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(f());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / iters_done as f64;
        // Aim each sample at measurement_time / sample_size.
        let sample_budget_ns =
            self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((sample_budget_ns / per_iter.max(1.0)) as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    fn report(&self, name: &str) {
        match self.median_ns {
            Some(ns) => println!("{name:<40} median {}", format_ns(ns)),
            None => println!("{name:<40} (no measurement)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.0} ns/iter")
    }
}

/// Declares a benchmark group, mirroring criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2e9).contains("s/iter"));
    }
}
